//! A tour of the simulated DOTA hardware (paper §4, Table 2).
//!
//! Prints the Table 2 module inventory, replays the paper's two scheduler
//! worked examples (Figures 8–10), demonstrates RMMU precision
//! reconfiguration, and closes with the paper-scale speedup/energy
//! comparison rows.
//!
//! Run with: `cargo run --release --example accelerator_tour`

use dota_accel::{energy, lane, render, sched};
use dota_core::presets::OperatingPoint;
use dota_core::DotaSystem;
use dota_quant::rmmu::RmmuConfig;
use dota_quant::Precision;
use dota_workloads::Benchmark;

fn main() {
    println!("=== Table 2: module inventory (22nm, 1 GHz) ===");
    println!(
        "{:<18} {:<32} {:>10} {:>10}",
        "module", "configuration", "power mW", "area mm2"
    );
    for m in energy::table2() {
        println!(
            "{:<18} {:<32} {:>10.2} {:>10.3}",
            m.name, m.configuration, m.power_mw, m.area_mm2
        );
    }
    println!(
        "total: {:.2} W, {:.3} mm2\n",
        energy::total_power_w(),
        energy::total_area_mm2()
    );

    println!("=== Scheduler worked examples (Figures 8-10) ===");
    // Fig. 8: unbalanced 4x5 mask.
    let fig8 = vec![vec![1u32, 2], vec![0, 1, 4], vec![1, 2], vec![0, 2, 4]];
    println!(
        "Fig. 8 mask: row-by-row {} loads, token-parallel {} loads",
        sched::row_by_row_loads(&fig8),
        sched::in_order_schedule(&fig8).total_loads()
    );
    // Fig. 9: balanced 4x6 mask.
    let fig9 = vec![
        vec![0u32, 1, 2],
        vec![1, 2, 3],
        vec![1, 4, 5],
        vec![2, 3, 4],
    ];
    println!(
        "Fig. 9 mask: in-order {} loads, out-of-order (Algorithm 1) {} loads",
        sched::in_order_schedule(&fig9).total_loads(),
        sched::locality_aware_schedule(&fig9).total_loads()
    );
    let schedule = sched::locality_aware_schedule(&fig9);
    print!("{}", render::render_schedule(&schedule));

    println!("\n=== RMMU precision reconfiguration (Fig. 7) ===");
    for p in Precision::ALL {
        let cfg = RmmuConfig::uniform(p);
        println!(
            "  {:>4}: {:>6} MACs/cycle per lane ({}x FX16 throughput, {} INT2 blocks per multiply)",
            p.to_string(),
            cfg.macs_per_cycle(p),
            p.throughput_multiplier(),
            p.int2_blocks()
        );
    }

    println!("\n=== Lane pipeline (double-buffered weight prefetch) ===");
    let tiles = lane::encoder_tiles(4, 60, 100, 12, 70, 18, 25, 110);
    let rep = lane::schedule(&tiles);
    print!("{}", render::render_gantt(&tiles, &rep, 64));

    println!("\n=== Paper-scale comparison (Figures 12-13) ===");
    let system = DotaSystem::paper_default();
    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>10} {:>12}",
        "benchmark", "variant", "attn vs GPU", "attn vs ELSA", "e2e GPU", "energy GPU"
    );
    for b in Benchmark::ALL {
        for point in [OperatingPoint::Conservative, OperatingPoint::Aggressive] {
            let s = system.speedup_row(b, point);
            let e = system.energy_row(b, point);
            println!(
                "{:>10} {:>8} {:>11.1}x {:>11.1}x {:>9.1}x {:>11.0}x",
                s.benchmark,
                s.variant,
                s.attention_vs_gpu,
                s.attention_vs_elsa,
                s.end_to_end_vs_gpu,
                e.vs_gpu
            );
        }
    }
}
