//! Anatomy of the DOTA detector: how well does the low-rank, low-precision
//! estimate rank the true attention connections, and what do σ (rank) and
//! quantization precision each cost?
//!
//! Trains a model, pretrains the detector against it, and reports detection
//! recall (overlap with the oracle top-k) across ranks and precisions,
//! alongside the ELSA and A3 training-free baselines at the same retention.
//!
//! Run with: `cargo run --release --example detector_anatomy`

use dota_core::experiments::{self, TrainOptions};
use dota_detector::metrics::detection_quality;
use dota_detector::{a3::A3Hook, elsa::ElsaHook, oracle::RandomHook};
use dota_detector::{DetectorConfig, DotaHook};
use dota_quant::Precision;
use dota_workloads::{Benchmark, TaskSpec};

fn main() {
    let spec = TaskSpec::tiny(Benchmark::Text, 24, 13);
    let (train, test) = spec.generate_split(200, 10);
    let (model, mut params) = experiments::build_model(&spec, 13);
    println!("Training Text model (seq 24)...");
    experiments::train_dense(
        &model,
        &mut params,
        &train,
        &TrainOptions {
            epochs: 12,
            ..Default::default()
        },
    );

    let retention = 0.25;
    let k = DetectorConfig::new(retention).keys_per_row(24);
    let eval_ids: Vec<Vec<usize>> = test.iter().take(3).map(|s| s.ids.clone()).collect();
    let recall = |hook: &dyn dota_transformer::InferenceHook, p: &dota_autograd::ParamSet| {
        eval_ids
            .iter()
            .map(|ids| detection_quality(&model, p, ids, hook, k).recall)
            .sum::<f64>()
            / eval_ids.len() as f64
    };

    println!(
        "\nDetection recall vs oracle top-{k} (retention {:.0}%):\n",
        retention * 100.0
    );
    println!("{:<34} {:>8}", "method", "recall");

    // DOTA across ranks (trained per rank).
    for sigma in [0.25, 0.5, 1.0] {
        let mut p = params.clone();
        let mut hook = DotaHook::init(
            DetectorConfig::new(retention).with_sigma(sigma),
            model.config(),
            &mut p,
        );
        experiments::train_joint(
            &model,
            &mut p,
            &mut hook,
            &train,
            &TrainOptions {
                epochs: 8,
                warmup_epochs: 8, // estimation pretraining only
                lr: 0.01,
                ..Default::default()
            },
        )
        .expect("training failed");
        let rank = hook.config().rank_for_head_dim(model.config().head_dim());
        let r_f32 = recall(&hook.inference_f32(&p), &p);
        println!(
            "{:<34} {:>8.3}",
            format!("DOTA sigma={sigma} (rank {rank}), FP32"),
            r_f32
        );
        // Quantized variants of the same trained detector.
        for prec in [Precision::Int8, Precision::Int4, Precision::Int2] {
            let quant_hook = hook.clone().with_config(
                DetectorConfig::new(retention)
                    .with_sigma(sigma)
                    .with_precision(prec),
            );
            let r = recall(&quant_hook.inference(&p), &p);
            println!("{:<34} {:>8.3}", format!("  └ quantized {prec}"), r);
        }
    }

    // Training-free baselines on the same model.
    let elsa = ElsaHook::from_model(&model, &params, 32, retention, 7);
    println!(
        "{:<34} {:>8.3}",
        "ELSA (32-bit sign hashes)",
        recall(&elsa, &params)
    );
    let a3 = A3Hook::from_model(&model, &params, 4, retention);
    println!("{:<34} {:>8.3}", "A3 (4 of 16 dims)", recall(&a3, &params));
    let random = RandomHook::new(retention, 3);
    println!("{:<34} {:>8.3}", "random", recall(&random, &params));
    println!("\nHigher rank buys recall; quantization below INT4 starts to cost it —");
    println!("the trade-offs behind Fig. 14's design-space exploration.");
}
