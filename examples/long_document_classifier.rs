//! Long-document retrieval scenario (the paper's AAN-style benchmark):
//! two documents must be matched across a separator — the classic
//! long-range dependency that dense attention pays quadratically for.
//!
//! This example sweeps retention ratios, comparing the jointly-trained DOTA
//! detector against the post-hoc oracle and the training-free ELSA/A3
//! approximations, then reports the memory-access savings the token-parallel
//! scheduler achieves on the real detected masks.
//!
//! Run with: `cargo run --release --example long_document_classifier`

use dota_accel::{AccelConfig, Accelerator};
use dota_core::experiments::{BenchmarkRun, Method, TrainOptions};
use dota_detector::DetectorConfig;
use dota_workloads::Benchmark;

fn main() {
    let seq_len = 24;
    let retentions = [0.5, 0.25];
    println!("Retrieval benchmark, seq {seq_len}: accuracy vs retention\n");
    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "retention", "dense", "DOTA", "oracle", "ELSA", "A3"
    );

    for &r in &retentions {
        let run = BenchmarkRun::train(
            Benchmark::Retrieval,
            seq_len,
            300,
            100,
            DetectorConfig::new(r).with_sigma(0.5),
            &TrainOptions {
                epochs: 30,
                warmup_epochs: 4,
                lr_warmup_steps: 600,
                early_stop_loss: 0.0,
                ..Default::default()
            },
            5,
        )
        .expect("training failed");
        let dense = run.evaluate(Method::Dense, 1.0, 0).accuracy;
        let dota = run.evaluate(Method::Dota, r, 0).accuracy;
        let oracle = run.evaluate(Method::Oracle, r, 0).accuracy;
        let elsa = run.evaluate(Method::Elsa, r, 0).accuracy;
        let a3 = run.evaluate(Method::A3, r, 0).accuracy;
        println!(
            "{:>9.1}% {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            r * 100.0,
            dense,
            dota,
            oracle,
            elsa,
            a3
        );
    }

    // Replay the detected masks through the accelerator simulator to show
    // the dataflow savings on this exact workload.
    let r = 0.25;
    let run = BenchmarkRun::train(
        Benchmark::Retrieval,
        seq_len,
        300,
        10,
        DetectorConfig::new(r).with_sigma(0.5),
        &TrainOptions {
            epochs: 30,
            warmup_epochs: 4,
            lr_warmup_steps: 600,
            early_stop_loss: 0.0,
            ..Default::default()
        },
        5,
    )
    .expect("training failed");
    let sample = &run.test.samples()[0];
    let trace = run.model.infer(
        &run.dota_params,
        &sample.ids,
        &run.hook.inference(&run.dota_params),
    );
    let accel = Accelerator::new(AccelConfig::default());
    let rep = accel.simulate_trace(run.model.config(), &trace);
    println!(
        "\nScheduler on the detected masks (retention {:.1}%):",
        rep.retention * 100.0
    );
    println!(
        "  K/V loads, token-parallel out-of-order: {}",
        rep.key_loads
    );
    println!(
        "  K/V loads, row-by-row dataflow:         {}",
        rep.key_loads_row_by_row
    );
    println!(
        "  memory-access reduction:                {:.2}x",
        rep.key_loads_row_by_row as f64 / rep.key_loads.max(1) as f64
    );
}
