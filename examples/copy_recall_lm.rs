//! Causal language modeling with a planted long-range copy dependency
//! (the paper's WikiText-style LM benchmark, scaled down).
//!
//! The predictable token sits a third of the sequence away from its source:
//! exactly one attention edge carries the signal, so aggressive omission
//! must keep it. The example trains a causal model densely, adapts it
//! jointly with the detector, and compares perplexity and copy-recall
//! accuracy.
//!
//! Run with: `cargo run --release --example copy_recall_lm`

use dota_core::experiments::{BenchmarkRun, Method, TrainOptions};
use dota_detector::DetectorConfig;
use dota_workloads::Benchmark;

fn main() {
    let retention = 0.25;
    println!(
        "Causal copy-recall LM, seq 32, retention {:.0}%\n",
        retention * 100.0
    );
    // Streaming regime: many samples, few passes — random filler tokens
    // would otherwise be memorized instead of the planted retrieval edge.
    let run = BenchmarkRun::train(
        Benchmark::Lm,
        32,
        500,
        30,
        DetectorConfig::new(retention),
        &TrainOptions {
            epochs: 16,
            warmup_epochs: 2,
            ..Default::default()
        },
        19,
    )
    .expect("training failed");

    println!("{:>8} {:>12} {:>14}", "method", "perplexity", "recall-acc");
    for (name, method, r) in [
        ("dense", Method::Dense, 1.0),
        ("DOTA", Method::Dota, retention),
        ("oracle", Method::Oracle, retention),
        ("random", Method::Random, retention),
    ] {
        let p = run.evaluate(method, r, 0);
        println!(
            "{:>8} {:>12.2} {:>14.3}",
            name,
            p.perplexity.unwrap_or(f64::NAN),
            p.accuracy
        );
    }
    println!("\nLower perplexity is better; recall-acc isolates the planted long-range edge.");
}
