//! Quickstart: train a tiny Transformer with the DOTA detector, compare
//! dense vs detect-and-omit accuracy, and simulate the hardware speedup.
//!
//! Run with: `cargo run --release --example quickstart`

use dota_core::experiments::{BenchmarkRun, Method, TrainOptions};
use dota_core::presets::OperatingPoint;
use dota_core::DotaSystem;
use dota_detector::DetectorConfig;
use dota_workloads::Benchmark;

fn main() {
    // --- Algorithm side: joint training on a synthetic Text task. ---
    let retention = 0.25;
    println!(
        "Training Text benchmark (seq 32) with DOTA detector at {:.0}% retention...",
        retention * 100.0
    );
    let run = BenchmarkRun::train(
        Benchmark::Text,
        32,
        80,
        40,
        DetectorConfig::new(retention),
        &TrainOptions::default(),
        42,
    )
    .expect("training failed");

    let dense = run.evaluate(Method::Dense, 1.0, 0);
    let dota = run.evaluate(Method::Dota, retention, 0);
    let random = run.evaluate(Method::Random, retention, 0);
    println!("  dense attention accuracy:       {:.3}", dense.accuracy);
    println!(
        "  DOTA @ {:>4.0}% retention:        {:.3}",
        retention * 100.0,
        dota.accuracy
    );
    println!("  random @ same retention:        {:.3}", random.accuracy);

    // --- Hardware side: simulated paper-scale speedup. ---
    let system = DotaSystem::paper_default();
    println!("\nSimulated paper-scale performance (Text, 2K tokens):");
    for point in OperatingPoint::ALL {
        let row = system.speedup_row(Benchmark::Text, point);
        println!(
            "  {:7}  retention {:>5.1}%  attention {:>7.1}x vs GPU, {:>5.1}x vs ELSA; end-to-end {:>5.1}x",
            row.variant,
            row.retention * 100.0,
            row.attention_vs_gpu,
            row.attention_vs_elsa,
            row.end_to_end_vs_gpu,
        );
    }
}
