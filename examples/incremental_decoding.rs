//! Incremental (KV-cache) decoding with sparse attention (paper §4.4).
//!
//! Trains the copy-recall LM, then generates tokens two ways — batch
//! re-inference and incremental KV-cache decoding — verifying they agree,
//! and shows how a sparse decode selector cuts the attended cache
//! connections. Closes with the decoder-mode hardware analysis at paper
//! scale.
//!
//! Run with: `cargo run --release --example incremental_decoding`

use dota_accel::decode::simulate_decode;
use dota_accel::AccelConfig;
use dota_core::experiments::{self, TrainOptions};
use dota_tensor::Matrix;
use dota_transformer::{DecodeSelector, DenseDecode, TransformerConfig};
use dota_workloads::{Benchmark, TaskSpec};

/// Keep only the `budget` most recent cache positions plus position 0 — a
/// simple static sparse decode policy for demonstration (DOTA's learned
/// detector would rank by estimated score instead).
struct RecentWindow {
    budget: usize,
}

impl DecodeSelector for RecentWindow {
    fn select(&self, _l: usize, _h: usize, _x: &Matrix, len: usize) -> Option<Vec<u32>> {
        let mut keep: Vec<u32> = (len.saturating_sub(self.budget)..len)
            .map(|i| i as u32)
            .collect();
        if !keep.contains(&0) {
            keep.insert(0, 0);
        }
        Some(keep)
    }
}

fn main() {
    // --- Train a small causal model. ---
    let spec = TaskSpec::tiny(Benchmark::Lm, 32, 77);
    let (train, _) = spec.generate_split(400, 10);
    let (model, mut params) = experiments::build_model(&spec, 77);
    println!("Training copy-recall LM (seq 32)...");
    experiments::train_dense(
        &model,
        &mut params,
        &train,
        &TrainOptions {
            epochs: 8,
            ..Default::default()
        },
    );

    // --- Batch vs incremental agreement. ---
    let prompt: Vec<usize> = train.samples()[0].ids[..16].to_vec();
    let gen_dense = model.generate(&params, &prompt, 8, &DenseDecode);
    println!("\ngenerated (dense cache): {:?}", gen_dense.tokens);
    let total_attended: u64 = gen_dense.attended_per_token.iter().sum();
    println!("cache connections attended: {total_attended}");

    let gen_sparse = model.generate(&params, &prompt, 8, &RecentWindow { budget: 6 });
    println!("generated (window-6 cache): {:?}", gen_sparse.tokens);
    let sparse_attended: u64 = gen_sparse.attended_per_token.iter().sum();
    println!(
        "cache connections attended: {sparse_attended} ({:.1}% of dense)",
        100.0 * sparse_attended as f64 / total_attended as f64
    );

    // --- Paper-scale decoder analysis. ---
    println!("\nPaper-scale decoder analysis (GPT-2, 4K context, 32 tokens):");
    let cfg = AccelConfig::default();
    let gpt2 = TransformerConfig::gpt2(8192);
    let dense = simulate_decode(&cfg, &gpt2, 4096, 32, 1.0, 0.0);
    let dota = simulate_decode(&cfg, &gpt2, 4096, 32, 0.1, 0.2);
    println!(
        "  dense:  {:.0} us/token ({:.0}% of traffic is K/V cache)",
        dense.us_per_token(32),
        100.0 * dense.kv_stream_cycles as f64 / dense.cycles as f64
    );
    println!(
        "  DOTA @ 10% retention: {:.0} us/token — {:.2}x faster",
        dota.us_per_token(32),
        dense.seconds() / dota.seconds()
    );
}
