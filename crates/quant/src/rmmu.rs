//! Functional and throughput model of the Reconfigurable Matrix
//! Multiplication Unit (paper §4.2, Fig. 7a).
//!
//! The RMMU is a 32×16 grid of multi-precision PEs. Each *row* of the array
//! can be independently configured to FX16, INT8, INT4 or INT2; a row at a
//! narrower precision performs quadratically more MACs per cycle on the same
//! INT2 blocks. DOTA uses this to rebalance throughput between attention
//! *detection* (low precision) and attention *computation* (FX16) per
//! benchmark.
//!
//! The model here answers the two questions the cycle-level simulator asks:
//! *how many MACs per cycle does a configuration sustain at each precision*,
//! and *how many cycles does a given GEMM take*.

use crate::Precision;

/// Default PE-array height (rows) from Table 2.
pub const DEFAULT_ROWS: usize = 32;
/// Default PE-array width (columns) from Table 2.
pub const DEFAULT_COLS: usize = 16;

/// A row-wise precision configuration of the RMMU PE array.
///
/// # Example
///
/// ```
/// use dota_quant::rmmu::RmmuConfig;
/// use dota_quant::Precision;
///
/// // 28 FX16 rows for attention math, 4 INT4 rows for the detector.
/// let cfg = RmmuConfig::split(28, Precision::Fx16, 4, Precision::Int4);
/// assert_eq!(cfg.macs_per_cycle(Precision::Fx16), 28 * 16);
/// assert_eq!(cfg.macs_per_cycle(Precision::Int4), 4 * 16 * 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RmmuConfig {
    cols: usize,
    row_precision: Vec<Precision>,
}

impl RmmuConfig {
    /// A uniform configuration: every row at `precision`.
    pub fn uniform(precision: Precision) -> Self {
        Self::with_shape(DEFAULT_ROWS, DEFAULT_COLS, precision)
    }

    /// A uniform configuration with explicit array shape.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn with_shape(rows: usize, cols: usize, precision: Precision) -> Self {
        assert!(rows > 0 && cols > 0, "PE array must be non-empty");
        Self {
            cols,
            row_precision: vec![precision; rows],
        }
    }

    /// A two-way split: `rows_a` rows at `prec_a` followed by `rows_b` rows
    /// at `prec_b`, with the default column width.
    ///
    /// # Panics
    ///
    /// Panics if `rows_a + rows_b == 0`.
    pub fn split(rows_a: usize, prec_a: Precision, rows_b: usize, prec_b: Precision) -> Self {
        assert!(rows_a + rows_b > 0, "PE array must be non-empty");
        let mut row_precision = vec![prec_a; rows_a];
        row_precision.extend(std::iter::repeat_n(prec_b, rows_b));
        Self {
            cols: DEFAULT_COLS,
            row_precision,
        }
    }

    /// Number of PE rows.
    pub fn rows(&self) -> usize {
        self.row_precision.len()
    }

    /// Number of PE columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The precision of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> Precision {
        self.row_precision[r]
    }

    /// Reconfigures row `r` to `precision`. Reconfiguration is how the Lane
    /// rebalances detection vs computation throughput between stages.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn set_row(&mut self, r: usize, precision: Precision) {
        self.row_precision[r] = precision;
    }

    /// Number of rows currently configured at `precision`.
    pub fn rows_at(&self, precision: Precision) -> usize {
        self.row_precision
            .iter()
            .filter(|&&p| p == precision)
            .count()
    }

    /// Sustained MACs per cycle available to work at `precision`.
    ///
    /// Only rows configured at that precision contribute; each contributes
    /// `cols * throughput_multiplier` MACs per cycle.
    pub fn macs_per_cycle(&self, precision: Precision) -> u64 {
        self.rows_at(precision) as u64 * self.cols as u64 * precision.throughput_multiplier() as u64
    }

    /// Peak FX16-equivalent MACs per cycle of the whole array (each row
    /// counted at its configured precision's throughput).
    pub fn total_macs_per_cycle(&self) -> u64 {
        Precision::ALL.iter().map(|&p| self.macs_per_cycle(p)).sum()
    }

    /// Cycles to execute an `m x k x n` GEMM at `precision`, assuming ideal
    /// utilization of the rows configured at that precision.
    ///
    /// Returns `None` if no row is configured at that precision.
    pub fn gemm_cycles(&self, precision: Precision, m: usize, k: usize, n: usize) -> Option<u64> {
        let rate = self.macs_per_cycle(precision);
        if rate == 0 {
            return None;
        }
        let macs = m as u64 * k as u64 * n as u64;
        Some(macs.div_ceil(rate))
    }

    /// Cycles to execute a sparse attention aggregation that keeps
    /// `kept_connections` query–key pairs with head dimension `hd`, at
    /// `precision`. Two GEMV-like passes per connection: score (`hd` MACs)
    /// and aggregation (`hd` MACs).
    ///
    /// Returns `None` if no row is configured at that precision.
    pub fn sparse_attention_cycles(
        &self,
        precision: Precision,
        kept_connections: u64,
        hd: usize,
    ) -> Option<u64> {
        let rate = self.macs_per_cycle(precision);
        if rate == 0 {
            return None;
        }
        Some((2 * kept_connections * hd as u64).div_ceil(rate))
    }
}

impl Default for RmmuConfig {
    fn default() -> Self {
        Self::uniform(Precision::Fx16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_throughput_matches_table2() {
        // Table 2: 32*16 FX-16 PEs at 1 GHz ≈ 0.5 TMAC/s = 1 TOPS/Lane,
        // 4 lanes ≈ 2 TOPS accelerator at 2 ops/MAC... the model just needs
        // 512 MACs/cycle at FX16.
        let cfg = RmmuConfig::uniform(Precision::Fx16);
        assert_eq!(cfg.macs_per_cycle(Precision::Fx16), 512);
        assert_eq!(cfg.macs_per_cycle(Precision::Int4), 0);
    }

    #[test]
    fn split_rebalances_throughput() {
        let cfg = RmmuConfig::split(30, Precision::Fx16, 2, Precision::Int2);
        assert_eq!(cfg.macs_per_cycle(Precision::Fx16), 30 * 16);
        assert_eq!(cfg.macs_per_cycle(Precision::Int2), 2 * 16 * 64);
        assert_eq!(cfg.rows(), 32);
    }

    #[test]
    fn narrow_rows_quadratically_faster() {
        let wide = RmmuConfig::with_shape(1, 16, Precision::Fx16);
        let narrow = RmmuConfig::with_shape(1, 16, Precision::Int4);
        let c_wide = wide.gemm_cycles(Precision::Fx16, 64, 64, 64).unwrap();
        let c_narrow = narrow.gemm_cycles(Precision::Int4, 64, 64, 64).unwrap();
        assert_eq!(c_wide, 16 * c_narrow);
    }

    #[test]
    fn gemm_cycles_rounds_up() {
        let cfg = RmmuConfig::with_shape(1, 16, Precision::Fx16);
        // 17 MACs at 16/cycle -> 2 cycles.
        assert_eq!(cfg.gemm_cycles(Precision::Fx16, 1, 17, 1), Some(2));
        assert_eq!(cfg.gemm_cycles(Precision::Int8, 1, 1, 1), None);
    }

    #[test]
    fn set_row_reconfigures() {
        let mut cfg = RmmuConfig::uniform(Precision::Fx16);
        cfg.set_row(0, Precision::Int4);
        assert_eq!(cfg.rows_at(Precision::Int4), 1);
        assert_eq!(cfg.rows_at(Precision::Fx16), 31);
        assert_eq!(cfg.row(0), Precision::Int4);
    }

    #[test]
    fn sparse_cycles_scale_with_retention() {
        let cfg = RmmuConfig::uniform(Precision::Fx16);
        let n = 1024u64;
        let full = cfg
            .sparse_attention_cycles(Precision::Fx16, n * n, 64)
            .unwrap();
        let tenth = cfg
            .sparse_attention_cycles(Precision::Fx16, n * n / 10, 64)
            .unwrap();
        let ratio = full as f64 / tenth as f64;
        assert!((ratio - 10.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn total_macs_sums_rows() {
        let cfg = RmmuConfig::split(16, Precision::Fx16, 16, Precision::Int8);
        assert_eq!(cfg.total_macs_per_cycle(), 16 * 16 + 16 * 16 * 4);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_array_rejected() {
        let _ = RmmuConfig::with_shape(0, 16, Precision::Fx16);
    }
}

/// A functional executor for the PE array: performs a quantized
/// `A * B^T` on the modeled hardware, multiplying through the bit-fusion
/// [`FusedMultiplier`](crate::bitfusion::FusedMultiplier) blocks and
/// accounting cycles against the configured throughput.
///
/// This is the consistency bridge between the three RMMU views: the
/// *functional* result must equal [`crate::QuantizedMatrix::matmul_nt_dequant`]
/// exactly, and the *cycle* count must equal [`RmmuConfig::gemm_cycles`].
#[derive(Debug, Clone)]
pub struct RmmuArray {
    config: RmmuConfig,
    int2_ops: u64,
    cycles: u64,
}

impl RmmuArray {
    /// Creates an executor over a configuration.
    pub fn new(config: RmmuConfig) -> Self {
        Self {
            config,
            int2_ops: 0,
            cycles: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RmmuConfig {
        &self.config
    }

    /// Total INT2 block operations issued so far.
    pub fn int2_ops(&self) -> u64 {
        self.int2_ops
    }

    /// Total cycles accumulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Executes `a * b^T` on quantized operands at `precision`, returning
    /// the dequantized result. Every scalar multiply goes through the fused
    /// INT2-block construction; cycles accrue at the configured rate.
    ///
    /// # Errors
    ///
    /// Returns a [`dota_tensor::ShapeError`] when inner dimensions
    /// disagree.
    ///
    /// # Panics
    ///
    /// Panics if no row of the array is configured at `precision`, or an
    /// operand's codes do not fit the precision.
    pub fn matmul_nt(
        &mut self,
        precision: Precision,
        a: &crate::QuantizedMatrix,
        b: &crate::QuantizedMatrix,
    ) -> Result<dota_tensor::Matrix, dota_tensor::ShapeError> {
        if a.cols() != b.cols() {
            return Err(dota_tensor::ShapeError::new(
                "rmmu_matmul_nt",
                (a.rows(), a.cols()),
                (b.rows(), b.cols()),
            ));
        }
        let rate = self.config.macs_per_cycle(precision);
        assert!(rate > 0, "no PE row configured at {precision}");
        let mut mul = crate::bitfusion::FusedMultiplier::new(precision);
        let scale = a.scale() * b.scale();
        let mut out = dota_tensor::Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            let arow = a.code_row(i);
            for j in 0..b.rows() {
                let brow = b.code_row(j);
                let acc = mul.dot(arow, brow);
                out[(i, j)] = acc as f32 * scale;
            }
        }
        self.int2_ops += mul.int2_ops();
        let macs = (a.rows() * a.cols() * b.rows()) as u64;
        let cycles = macs.div_ceil(rate);
        self.cycles += cycles;
        if dota_trace::enabled() {
            dota_trace::count(&format!("rmmu.exec.macs.{precision}"), macs);
            dota_trace::count("rmmu.exec.int2_ops", mul.int2_ops());
            dota_trace::count("rmmu.exec.cycles", cycles);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod array_tests {
    use super::*;
    use crate::Quantizer;
    use dota_tensor::rng::SeededRng;

    #[test]
    fn functional_result_matches_quantized_matmul() {
        let mut rng = SeededRng::new(11);
        let a = rng.normal_matrix(6, 8, 1.0);
        let b = rng.normal_matrix(5, 8, 1.0);
        for p in [Precision::Int4, Precision::Int8] {
            let qa = Quantizer::symmetric(p).quantize(&a);
            let qb = Quantizer::symmetric(p).quantize(&b);
            let reference = qa.matmul_nt_dequant(&qb).unwrap();
            let mut array = RmmuArray::new(RmmuConfig::uniform(p));
            let got = array.matmul_nt(p, &qa, &qb).unwrap();
            assert!(got.approx_eq(&reference, 1e-6), "{p}: functional mismatch");
        }
    }

    #[test]
    fn cycles_match_timing_model() {
        let mut rng = SeededRng::new(12);
        let a = rng.normal_matrix(16, 32, 1.0);
        let b = rng.normal_matrix(16, 32, 1.0);
        let p = Precision::Int4;
        let qa = Quantizer::symmetric(p).quantize(&a);
        let qb = Quantizer::symmetric(p).quantize(&b);
        let cfg = RmmuConfig::uniform(p);
        let expect = cfg.gemm_cycles(p, 16, 32, 16).unwrap();
        let mut array = RmmuArray::new(cfg);
        let _ = array.matmul_nt(p, &qa, &qb).unwrap();
        assert_eq!(array.cycles(), expect);
    }

    #[test]
    fn int2_block_count_scales_with_precision() {
        let mut rng = SeededRng::new(13);
        let a = rng.normal_matrix(4, 4, 1.0);
        let b = rng.normal_matrix(4, 4, 1.0);
        let count_for = |p: Precision| {
            let qa = Quantizer::symmetric(p).quantize(&a);
            let qb = Quantizer::symmetric(p).quantize(&b);
            let mut array = RmmuArray::new(RmmuConfig::uniform(p));
            let _ = array.matmul_nt(p, &qa, &qb).unwrap();
            array.int2_ops()
        };
        let macs = 4 * 4 * 4;
        assert_eq!(count_for(Precision::Int2), macs);
        assert_eq!(count_for(Precision::Int4), macs * 4);
        assert_eq!(count_for(Precision::Int8), macs * 16);
    }

    #[test]
    #[should_panic(expected = "no PE row configured")]
    fn unconfigured_precision_rejected() {
        let mut array = RmmuArray::new(RmmuConfig::uniform(Precision::Fx16));
        let q = Quantizer::symmetric(Precision::Int4).quantize(&dota_tensor::Matrix::zeros(2, 2));
        let _ = array.matmul_nt(Precision::Int4, &q, &q);
    }
}
