use crate::Precision;
use dota_tensor::{Matrix, ShapeError};

/// Symmetric linear quantizer for a chosen [`Precision`].
///
/// The detector quantizes `X`, `W̃Q` and `W̃K` before the low-rank
/// transformations (paper §3.1, §5.5): scores only need to *rank*
/// connections, so INT4 — and on some benchmarks INT2 — suffices. The
/// quantizer is symmetric (zero-point 0) with a per-matrix scale
/// `s = abs_max / qmax`, matching what the Multi-Function Unit's Quantizer
/// block computes.
///
/// # Example
///
/// ```
/// use dota_quant::{Precision, Quantizer};
/// use dota_tensor::Matrix;
///
/// let m = Matrix::from_fn(4, 4, |r, c| (r as f32 - c as f32) / 4.0);
/// let q = Quantizer::symmetric(Precision::Int4).quantize(&m);
/// assert_eq!(q.precision(), Precision::Int4);
/// assert!(q.dequantize().approx_eq(&m, q.scale()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantizer {
    precision: Precision,
}

impl Quantizer {
    /// Creates a symmetric quantizer at the given precision.
    pub fn symmetric(precision: Precision) -> Self {
        Self { precision }
    }

    /// The target precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Quantizes a matrix, choosing the scale from its absolute maximum.
    ///
    /// An all-zero matrix quantizes with scale 1 so dequantization is exact.
    pub fn quantize(&self, m: &Matrix) -> QuantizedMatrix {
        let qmax = self.precision.qmax() as f32;
        let abs_max = m.abs_max();
        let scale = if abs_max > 0.0 { abs_max / qmax } else { 1.0 };
        self.quantize_with_scale(m, scale)
    }

    /// Quantizes with an explicit scale (e.g. a calibrated activation scale
    /// held in the global SRAM buffer, §4.1). Values are clamped to the
    /// representable range.
    pub fn quantize_with_scale(&self, m: &Matrix, scale: f32) -> QuantizedMatrix {
        assert!(scale > 0.0, "scale must be positive");
        let qmin = self.precision.qmin();
        let qmax = self.precision.qmax();
        let data = m
            .iter()
            .map(|&x| ((x / scale).round() as i32).clamp(qmin, qmax))
            .collect();
        QuantizedMatrix {
            rows: m.rows(),
            cols: m.cols(),
            data,
            scale,
            precision: self.precision,
        }
    }
}

/// A quantized matrix: integer codes plus a scale factor.
///
/// Codes are stored as `i32` for simplicity; each value is guaranteed to lie
/// within the configured precision's representable range, which the
/// bit-fusion multiplier asserts when multiplying.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i32>,
    scale: f32,
    precision: Precision,
}

impl QuantizedMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantization scale (real value per integer step).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The precision the codes fit in.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Integer code at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn code(&self, r: usize, c: usize) -> i32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Row `r` of integer codes.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn code_row(&self, r: usize) -> &[i32] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reconstructs the real-valued matrix (`code * scale`).
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&q| q as f32 * self.scale).collect(),
        )
        .expect("dimensions are consistent by construction")
    }

    /// Integer matrix product with transposed right operand:
    /// `self * other^T`, accumulated in `i64` and returned as a real-valued
    /// matrix scaled by both operands' scales.
    ///
    /// This is the detector's estimated-score kernel `S̃ = Q̃ K̃^T`
    /// executed on low-precision PE rows of the RMMU.
    ///
    /// When both operands fit `i8` codes and the depth is within the
    /// `i32`-safe bound, this routes through the SIMD-capable kernel in
    /// [`crate::qgemm`]; the result is bitwise identical (integer sums
    /// have one value, and the scaling expression is the same), so callers
    /// see only the speed.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when inner dimensions disagree.
    pub fn matmul_nt_dequant(&self, other: &QuantizedMatrix) -> Result<Matrix, ShapeError> {
        if self.cols != other.cols {
            return Err(ShapeError::new(
                "qmatmul_nt",
                (self.rows, self.cols),
                (other.rows, other.cols),
            ));
        }
        if self.precision.bits() <= 8
            && other.precision.bits() <= 8
            && self.cols < crate::qgemm::I32_SAFE_K
        {
            return crate::qgemm::Int8Matrix::from_quantized(self)
                .matmul_nt_dequant(&crate::qgemm::Int8Matrix::from_quantized(other));
        }
        let out_scale = self.scale * other.scale;
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a = self.code_row(i);
            let row = out.row_mut(i);
            for j in 0..other.rows {
                let b = other.code_row(j);
                let acc: i64 = a.iter().zip(b).map(|(&x, &y)| x as i64 * y as i64).sum();
                row[j] = acc as f32 * out_scale;
            }
        }
        Ok(out)
    }

    /// Quantization signal-to-noise ratio in dB against a reference matrix.
    ///
    /// Useful for validating precision choices in design-space exploration
    /// (Fig. 14b).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sqnr_db(&self, reference: &Matrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            reference.shape(),
            "sqnr shape mismatch"
        );
        let deq = self.dequantize();
        let mut signal = 0.0f64;
        let mut noise = 0.0f64;
        for (x, y) in reference.iter().zip(deq.iter()) {
            signal += (*x as f64) * (*x as f64);
            noise += ((*x - *y) as f64) * ((*x - *y) as f64);
        }
        if noise == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (signal / noise).log10()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dota_tensor::rng::SeededRng;

    #[test]
    fn round_trip_error_bounded_by_half_scale() {
        let mut rng = SeededRng::new(1);
        let m = rng.normal_matrix(16, 16, 1.0);
        for p in Precision::ALL {
            let q = Quantizer::symmetric(p).quantize(&m);
            let back = q.dequantize();
            let max_err = m.sub(&back).unwrap().abs_max();
            assert!(max_err <= q.scale() / 2.0 + 1e-6, "{p}: err {max_err}");
        }
    }

    #[test]
    fn zero_matrix_quantizes_exactly() {
        let z = Matrix::zeros(3, 3);
        let q = Quantizer::symmetric(Precision::Int4).quantize(&z);
        assert_eq!(q.dequantize(), z);
        assert_eq!(q.scale(), 1.0);
    }

    #[test]
    fn codes_within_range() {
        let mut rng = SeededRng::new(2);
        let m = rng.normal_matrix(8, 8, 3.0);
        for p in Precision::ALL {
            let q = Quantizer::symmetric(p).quantize(&m);
            for r in 0..8 {
                for &c in q.code_row(r) {
                    assert!(c >= p.qmin() && c <= p.qmax(), "{p}: code {c}");
                }
            }
        }
    }

    #[test]
    fn explicit_scale_clamps() {
        let m = Matrix::from_rows(&[&[100.0, -100.0, 0.5]]).unwrap();
        let q = Quantizer::symmetric(Precision::Int8).quantize_with_scale(&m, 0.1);
        assert_eq!(q.code(0, 0), 127);
        assert_eq!(q.code(0, 1), -128);
        assert_eq!(q.code(0, 2), 5);
    }

    #[test]
    fn quantized_matmul_close_to_f32() {
        let mut rng = SeededRng::new(3);
        let q = rng.normal_matrix(8, 12, 1.0);
        let k = rng.normal_matrix(10, 12, 1.0);
        let exact = q.matmul_nt(&k).unwrap();
        let qq = Quantizer::symmetric(Precision::Int8).quantize(&q);
        let qk = Quantizer::symmetric(Precision::Int8).quantize(&k);
        let approx = qq.matmul_nt_dequant(&qk).unwrap();
        let err = exact.sub(&approx).unwrap().abs_max();
        assert!(err < 0.5, "int8 matmul err {err}");
    }

    #[test]
    fn matmul_shape_error() {
        let a = Quantizer::symmetric(Precision::Int4).quantize(&Matrix::zeros(2, 3));
        let b = Quantizer::symmetric(Precision::Int4).quantize(&Matrix::zeros(2, 4));
        assert!(a.matmul_nt_dequant(&b).is_err());
    }

    #[test]
    fn sqnr_improves_with_precision() {
        let mut rng = SeededRng::new(4);
        let m = rng.normal_matrix(32, 32, 1.0);
        let mut prev = f64::NEG_INFINITY;
        for p in Precision::ALL {
            let q = Quantizer::symmetric(p).quantize(&m);
            let sqnr = q.sqnr_db(&m);
            assert!(sqnr > prev, "{p}: {sqnr} <= {prev}");
            prev = sqnr;
        }
        // INT8 should already exceed ~30 dB on Gaussian data.
        let q8 = Quantizer::symmetric(Precision::Int8).quantize(&m);
        assert!(q8.sqnr_db(&m) > 25.0);
    }

    #[test]
    fn ranking_preserved_under_int4() {
        // The detector only needs relative importance: top-k of the
        // quantized scores should largely agree with the exact top-k.
        let mut rng = SeededRng::new(5);
        let q = rng.normal_matrix(16, 32, 1.0);
        let k = rng.normal_matrix(64, 32, 1.0);
        let exact = q.matmul_nt(&k).unwrap();
        let qq = Quantizer::symmetric(Precision::Int4).quantize(&q);
        let qk = Quantizer::symmetric(Precision::Int4).quantize(&k);
        let approx = qq.matmul_nt_dequant(&qk).unwrap();
        let sel_exact = dota_tensor::topk::top_k_rows(&exact, 8);
        let sel_approx = dota_tensor::topk::top_k_rows(&approx, 8);
        let recall = dota_tensor::topk::selection_recall(&sel_exact, &sel_approx);
        assert!(recall > 0.75, "int4 ranking recall {recall}");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn dequantized_error_within_half_step(
                vals in proptest::collection::vec(-10.0f32..10.0, 1..64)
            ) {
                let n = vals.len();
                let m = Matrix::from_vec(1, n, vals).unwrap();
                let q = Quantizer::symmetric(Precision::Int8).quantize(&m);
                let back = q.dequantize();
                for (a, b) in m.iter().zip(back.iter()) {
                    prop_assert!((a - b).abs() <= q.scale() / 2.0 + 1e-5);
                }
            }
        }
    }
}
