//! Quantized host GEMM kernels mirroring the RMMU precision modes.
//!
//! The RMMU model (`rmmu`) prices low-precision products in *cycles*; this
//! module makes the same precision modes a real execution path on the
//! host, so `bench_report` can put measured fp32-vs-int8 throughput next
//! to the cycle model in `BENCH_kernels.json`:
//!
//! * [`Int8Matrix`] — codes narrowed to `i8` (any [`Precision`] of ≤ 8
//!   bits fits), with an i32-accumulating `A·Bᵀ` kernel that runs AVX2
//!   `madd` lanes when the host has them.
//! * [`Int4Packed`] — two INT4 codes per byte (the storage the RMMU's
//!   bit-fusion blocks assume), unpacked strip-wise into the `i8` kernel.
//!
//! Integer addition is associative, so the SIMD and scalar paths are
//! bitwise identical by construction — no kernel-family knob is needed
//! here, only availability. Scale handling is exactly
//! [`QuantizedMatrix`]'s: symmetric, zero-point 0, output scaled by the
//! product of the operand scales.
//!
//! [`QuantizedMatrix::matmul_nt_dequant`] routes through the `i8` kernel
//! automatically whenever its operands fit, so the detector's estimated
//! scores (the `S̃ = Q̃·K̃ᵀ` path) get the fast kernel without callers
//! changing.

use crate::{Precision, QuantizedMatrix, Quantizer};
use dota_tensor::{Matrix, ShapeError};

/// Largest inner dimension the i32-accumulating kernel accepts: every
/// partial product is at most `2^14` in magnitude (`(-128)²`), so `k`
/// summands stay well inside `i32` for any `k < 2^16` with headroom to
/// spare. Bigger products fall back to the `i64` scalar path.
pub const I32_SAFE_K: usize = 1 << 16;

/// A quantized matrix with codes narrowed to `i8`.
///
/// Any precision of 8 bits or fewer fits; the value range is whatever the
/// source [`Precision`] allows, the storage is always one byte per code —
/// a quarter of [`QuantizedMatrix`]'s `i32` codes, which is the point: the
/// kernel is memory-bound on the operand streams.
#[derive(Debug, Clone, PartialEq)]
pub struct Int8Matrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scale: f32,
    precision: Precision,
}

impl Int8Matrix {
    /// Narrows a [`QuantizedMatrix`] to `i8` codes.
    ///
    /// # Panics
    ///
    /// Panics if the source precision is wider than 8 bits (`Fx16` codes
    /// do not fit a byte).
    pub fn from_quantized(q: &QuantizedMatrix) -> Self {
        assert!(
            q.precision().bits() <= 8,
            "{} codes do not fit i8",
            q.precision()
        );
        let mut data = Vec::with_capacity(q.rows() * q.cols());
        for r in 0..q.rows() {
            data.extend(q.code_row(r).iter().map(|&c| c as i8));
        }
        Self {
            rows: q.rows(),
            cols: q.cols(),
            data,
            scale: q.scale(),
            precision: q.precision(),
        }
    }

    /// Quantizes a real matrix at `precision` (≤ 8 bits) and narrows it.
    ///
    /// # Panics
    ///
    /// Panics if `precision` is wider than 8 bits.
    pub fn quantize(m: &Matrix, precision: Precision) -> Self {
        Self::from_quantized(&Quantizer::symmetric(precision).quantize(m))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantization scale (real value per integer step).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The precision the codes fit in.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Row `r` of `i8` codes.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn code_row(&self, r: usize) -> &[i8] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Integer matrix product with transposed right operand,
    /// `self · otherᵀ`, dequantized by both scales — the low-precision
    /// score kernel, on host lanes.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the inner dimensions disagree.
    pub fn matmul_nt_dequant(&self, other: &Int8Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != other.cols {
            return Err(ShapeError::new(
                "qmatmul_nt_i8",
                (self.rows, self.cols),
                (other.rows, other.cols),
            ));
        }
        let _prof = dota_prof::span("gemm.qmatmul_nt_i8");
        let out_scale = self.scale * other.scale;
        let mut out = Matrix::zeros(self.rows, other.rows);
        if self.cols >= I32_SAFE_K {
            // i64 fallback for pathological depths; never hit by the
            // paper's sequence lengths.
            for i in 0..self.rows {
                let a = self.code_row(i);
                let row = out.row_mut(i);
                for (j, o) in row.iter_mut().enumerate() {
                    let b = other.code_row(j);
                    let acc: i64 = a.iter().zip(b).map(|(&x, &y)| x as i64 * y as i64).sum();
                    *o = acc as f32 * out_scale;
                }
            }
            return Ok(out);
        }
        for i in 0..self.rows {
            let a = self.code_row(i);
            let row = out.row_mut(i);
            for (j, o) in row.iter_mut().enumerate() {
                *o = dot_i8(a, other.code_row(j)) as f32 * out_scale;
            }
        }
        Ok(out)
    }
}

/// `i8` dot product with `i32` accumulation — AVX2 `madd` lanes when the
/// host has them, the scalar loop otherwise; both paths produce identical
/// bits (integer addition is associative).
///
/// Caller guarantees `a.len() == b.len() < `[`I32_SAFE_K`].
fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(a.len() < I32_SAFE_K);
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 verified; equal lengths asserted.
        return unsafe { dot_i8_avx2(a, b) };
    }
    a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
}

/// # Safety
///
/// Requires AVX2; slices must be equal length with `i32`-safe depth.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 16 <= n {
        // 16 i8 → 16 i16 lanes, then madd pairs into 8 i32 partial sums.
        let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i) as *const __m128i));
        let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i) as *const __m128i));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
        i += 16;
    }
    let mut lanes = [0i32; 8];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let mut total: i32 = lanes.iter().sum();
    while i < n {
        total += a[i] as i32 * b[i] as i32;
        i += 1;
    }
    total
}

/// An INT4 (or INT2) matrix packed two codes per byte, the density the
/// RMMU's bit-fusion multiplier blocks assume: column `2c` in the low
/// nibble, `2c+1` in the high nibble, rows padded to a whole byte.
#[derive(Debug, Clone, PartialEq)]
pub struct Int4Packed {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
    scale: f32,
    precision: Precision,
}

impl Int4Packed {
    /// Packs a [`QuantizedMatrix`] of ≤ 4-bit codes, two per byte.
    ///
    /// # Panics
    ///
    /// Panics if the source precision is wider than 4 bits.
    pub fn from_quantized(q: &QuantizedMatrix) -> Self {
        assert!(
            q.precision().bits() <= 4,
            "{} codes do not fit a nibble",
            q.precision()
        );
        let bytes_per_row = q.cols().div_ceil(2);
        let mut data = Vec::with_capacity(q.rows() * bytes_per_row);
        for r in 0..q.rows() {
            let row = q.code_row(r);
            for pair in row.chunks(2) {
                let lo = (pair[0] as u8) & 0x0f;
                let hi = pair.get(1).map_or(0, |&c| (c as u8) & 0x0f);
                data.push(lo | (hi << 4));
            }
        }
        Self {
            rows: q.rows(),
            cols: q.cols(),
            data,
            scale: q.scale(),
            precision: q.precision(),
        }
    }

    /// Quantizes a real matrix at `precision` (≤ 4 bits) and packs it.
    ///
    /// # Panics
    ///
    /// Panics if `precision` is wider than 4 bits.
    pub fn quantize(m: &Matrix, precision: Precision) -> Self {
        Self::from_quantized(&Quantizer::symmetric(precision).quantize(m))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (codes, not bytes).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantization scale (real value per integer step).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The precision the codes fit in.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Packed bytes behind the matrix (half a byte per code).
    pub fn packed_bytes(&self) -> usize {
        self.data.len()
    }

    /// Sign-extends row `r` into `buf` (length ≥ `cols`) as `i8` codes.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `buf` is too short.
    pub fn unpack_row(&self, r: usize, buf: &mut [i8]) {
        assert!(r < self.rows, "row out of bounds");
        let bytes_per_row = self.cols.div_ceil(2);
        let row = &self.data[r * bytes_per_row..(r + 1) * bytes_per_row];
        for c in 0..self.cols {
            let byte = row[c / 2];
            let nibble = if c % 2 == 0 { byte & 0x0f } else { byte >> 4 };
            // Shift to the top of the byte and back: arithmetic shift
            // right sign-extends the nibble.
            buf[c] = ((nibble << 4) as i8) >> 4;
        }
    }

    /// Integer matrix product with transposed right operand,
    /// `self · otherᵀ`, dequantized by both scales. Rows unpack into
    /// per-call `i8` strips that then run the same kernel as
    /// [`Int8Matrix::matmul_nt_dequant`] — unpacking is O((m+n)·k)
    /// against O(m·n·k) arithmetic.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the inner dimensions disagree.
    pub fn matmul_nt_dequant(&self, other: &Int4Packed) -> Result<Matrix, ShapeError> {
        if self.cols != other.cols {
            return Err(ShapeError::new(
                "qmatmul_nt_i4",
                (self.rows, self.cols),
                (other.rows, other.cols),
            ));
        }
        let _prof = dota_prof::span("gemm.qmatmul_nt_i4");
        let out_scale = self.scale * other.scale;
        let mut out = Matrix::zeros(self.rows, other.rows);
        // Unpack all of `other` once (it is re-read per output row), and
        // one row of `self` at a time.
        let mut b_codes = vec![0i8; other.rows * other.cols];
        for j in 0..other.rows {
            other.unpack_row(j, &mut b_codes[j * other.cols..(j + 1) * other.cols]);
        }
        let mut a_row = vec![0i8; self.cols];
        for i in 0..self.rows {
            self.unpack_row(i, &mut a_row);
            let row = out.row_mut(i);
            for (j, o) in row.iter_mut().enumerate() {
                let b = &b_codes[j * other.cols..(j + 1) * other.cols];
                *o = dot_i8(&a_row, b) as f32 * out_scale;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dota_tensor::rng::SeededRng;

    #[test]
    fn i8_matmul_matches_i32_reference_bitwise() {
        let mut rng = SeededRng::new(11);
        for p in [Precision::Int2, Precision::Int4, Precision::Int8] {
            let a = rng.normal_matrix(9, 37, 1.0);
            let b = rng.normal_matrix(13, 37, 1.0);
            let qa = Quantizer::symmetric(p).quantize(&a);
            let qb = Quantizer::symmetric(p).quantize(&b);
            let want = qa.matmul_nt_dequant(&qb).unwrap();
            let got = Int8Matrix::from_quantized(&qa)
                .matmul_nt_dequant(&Int8Matrix::from_quantized(&qb))
                .unwrap();
            // Integer accumulation has one possible answer; the f32
            // conversion and scaling are identical expressions — so the
            // fast path must agree bit-for-bit, not just approximately.
            let want_bits: Vec<u32> = want.iter().map(|x| x.to_bits()).collect();
            let got_bits: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
            assert_eq!(want_bits, got_bits, "{p}");
        }
    }

    #[test]
    fn int4_pack_round_trips() {
        let mut rng = SeededRng::new(12);
        for p in [Precision::Int2, Precision::Int4] {
            // Odd column count exercises the padded last nibble.
            let m = rng.normal_matrix(5, 7, 1.0);
            let q = Quantizer::symmetric(p).quantize(&m);
            let packed = Int4Packed::from_quantized(&q);
            assert_eq!(packed.packed_bytes(), 5 * 4); // ceil(7/2) bytes per row
            let mut buf = vec![0i8; 7];
            for r in 0..5 {
                packed.unpack_row(r, &mut buf);
                let want: Vec<i8> = q.code_row(r).iter().map(|&c| c as i8).collect();
                assert_eq!(buf, want, "{p} row {r}");
            }
        }
    }

    #[test]
    fn int4_matmul_matches_i32_reference_bitwise() {
        let mut rng = SeededRng::new(13);
        let a = rng.normal_matrix(6, 21, 1.0);
        let b = rng.normal_matrix(8, 21, 1.0);
        let qa = Quantizer::symmetric(Precision::Int4).quantize(&a);
        let qb = Quantizer::symmetric(Precision::Int4).quantize(&b);
        let want = qa.matmul_nt_dequant(&qb).unwrap();
        let got = Int4Packed::from_quantized(&qa)
            .matmul_nt_dequant(&Int4Packed::from_quantized(&qb))
            .unwrap();
        let want_bits: Vec<u32> = want.iter().map(|x| x.to_bits()).collect();
        let got_bits: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
        assert_eq!(want_bits, got_bits);
    }

    #[test]
    fn shape_errors() {
        let a = Int8Matrix::quantize(&Matrix::zeros(2, 3), Precision::Int8);
        let b = Int8Matrix::quantize(&Matrix::zeros(2, 4), Precision::Int8);
        assert!(a.matmul_nt_dequant(&b).is_err());
        let pa = Int4Packed::quantize(&Matrix::zeros(2, 3), Precision::Int4);
        let pb = Int4Packed::quantize(&Matrix::zeros(2, 4), Precision::Int4);
        assert!(pa.matmul_nt_dequant(&pb).is_err());
    }

    #[test]
    #[should_panic(expected = "do not fit i8")]
    fn fx16_rejected_by_i8() {
        let q = Quantizer::symmetric(Precision::Fx16).quantize(&Matrix::zeros(2, 2));
        let _ = Int8Matrix::from_quantized(&q);
    }

    #[test]
    #[should_panic(expected = "do not fit a nibble")]
    fn int8_rejected_by_nibble_packing() {
        let q = Quantizer::symmetric(Precision::Int8).quantize(&Matrix::zeros(2, 2));
        let _ = Int4Packed::from_quantized(&q);
    }
}
