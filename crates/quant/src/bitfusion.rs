//! Bit-fusion multiplier composition (paper §4.2, Fig. 7).
//!
//! DOTA's RMMU does not instantiate separate INT2/INT4/INT8/FX16 multipliers.
//! Instead, each PE contains a pool of INT2 multipliers that can either run
//! 64 independent INT2 multiplies per cycle or be *fused* — four INT2 blocks
//! make an INT4 multiplier, four INT4 make an INT8, four INT8 make an FX16 —
//! following the construction of Sharma et al.'s Bit Fusion, which the paper
//! cites as its building block.
//!
//! [`FusedMultiplier`] reproduces that construction in software: an n-bit
//! signed multiply is decomposed into radix-4 fragments (the top fragment
//! signed, the rest unsigned), all pairwise 2-bit products are formed by a
//! modeled INT2 multiplier, and the partial products are shifted and
//! accumulated exactly as the adder network in Fig. 7(c) would. Property
//! tests assert the composition is *bit-exact* against native wide
//! multiplication for every supported precision.

use crate::Precision;

/// One radix-4 (2-bit) fragment of an operand, with its signedness.
///
/// In the hardware, unsigned fragments feed unsigned×unsigned INT2
/// multipliers and the most-significant fragment feeds the signed port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fragment {
    /// Fragment value: `0..=3` when unsigned, `-2..=1` when signed.
    pub value: i8,
    /// Whether this fragment carries the operand's sign.
    pub signed: bool,
}

/// Decomposes an n-bit signed integer into `n/2` radix-4 fragments,
/// least-significant first. All fragments are unsigned except the last.
///
/// # Panics
///
/// Panics if `value` does not fit in `bits`, or `bits` is not a positive
/// multiple of 2.
pub fn decompose(value: i32, bits: u32) -> Vec<Fragment> {
    assert!(
        bits >= 2 && bits.is_multiple_of(2),
        "bits must be a positive multiple of 2"
    );
    let min = -(1i32 << (bits - 1));
    let max = (1i32 << (bits - 1)) - 1;
    assert!(
        (min..=max).contains(&value),
        "{value} does not fit in {bits} signed bits"
    );
    let unsigned = (value as u32) & ((1u64 << bits) - 1) as u32;
    let n_frag = (bits / 2) as usize;
    (0..n_frag)
        .map(|i| {
            let raw = ((unsigned >> (2 * i)) & 0b11) as i8;
            if i == n_frag - 1 {
                // Sign-extend the top fragment from 2 bits.
                let signed_val = if raw >= 2 { raw - 4 } else { raw };
                Fragment {
                    value: signed_val,
                    signed: true,
                }
            } else {
                Fragment {
                    value: raw,
                    signed: false,
                }
            }
        })
        .collect()
}

/// Reassembles fragments produced by [`decompose`] back into the integer.
pub fn recompose(fragments: &[Fragment]) -> i32 {
    fragments
        .iter()
        .enumerate()
        .map(|(i, f)| (f.value as i32) << (2 * i))
        .sum()
}

/// A multi-precision multiplier built from INT2 blocks.
///
/// Tracks how many INT2 sub-multiplications have been issued, so callers
/// (the RMMU timing model) can account for energy and throughput.
///
/// # Example
///
/// ```
/// use dota_quant::bitfusion::FusedMultiplier;
/// use dota_quant::Precision;
///
/// let mut m = FusedMultiplier::new(Precision::Int4);
/// assert_eq!(m.mul(-7, 5), -35);
/// assert_eq!(m.int2_ops(), 4); // one INT4 multiply = four INT2 blocks
/// ```
#[derive(Debug, Clone)]
pub struct FusedMultiplier {
    precision: Precision,
    int2_ops: u64,
}

impl FusedMultiplier {
    /// Creates a multiplier configured for `precision`.
    pub fn new(precision: Precision) -> Self {
        Self {
            precision,
            int2_ops: 0,
        }
    }

    /// The configured precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Total INT2 block multiplications issued so far.
    pub fn int2_ops(&self) -> u64 {
        self.int2_ops
    }

    /// Resets the INT2 operation counter.
    pub fn reset_counter(&mut self) {
        self.int2_ops = 0;
    }

    /// Multiplies two signed operands of the configured precision by
    /// composing INT2 block products, exactly as the fused hardware would.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in the configured bit width.
    pub fn mul(&mut self, a: i32, b: i32) -> i64 {
        let bits = self.precision.bits();
        let fa = decompose(a, bits);
        let fb = decompose(b, bits);
        let mut acc: i64 = 0;
        for (i, x) in fa.iter().enumerate() {
            for (j, y) in fb.iter().enumerate() {
                let partial = self.int2_block_mul(*x, *y);
                // Shift-and-accumulate network: partial product of fragments
                // i and j lands at bit position 2*(i+j).
                acc += (partial as i64) << (2 * (i + j));
            }
        }
        acc
    }

    /// Dot product of two equal-length operand slices with a wide
    /// accumulator, the PE's MAC loop.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or an element is out of range.
    pub fn dot(&mut self, a: &[i32], b: &[i32]) -> i64 {
        assert_eq!(a.len(), b.len(), "dot of unequal lengths");
        a.iter().zip(b).map(|(&x, &y)| self.mul(x, y)).sum()
    }

    /// One INT2 block: multiplies two 2-bit fragments (signed or unsigned
    /// ports) and produces a 4-bit partial sum, as in Fig. 7(c).
    fn int2_block_mul(&mut self, a: Fragment, b: Fragment) -> i32 {
        self.int2_ops += 1;
        debug_assert!(if a.signed {
            (-2..=1).contains(&a.value)
        } else {
            (0..=3).contains(&a.value)
        });
        debug_assert!(if b.signed {
            (-2..=1).contains(&b.value)
        } else {
            (0..=3).contains(&b.value)
        });
        a.value as i32 * b.value as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompose_recompose_round_trip() {
        for bits in [2u32, 4, 8, 16] {
            let min = -(1i32 << (bits - 1));
            let max = (1i32 << (bits - 1)) - 1;
            let samples = [min, min + 1, -1, 0, 1, max - 1, max];
            for &v in &samples {
                let frags = decompose(v, bits);
                assert_eq!(frags.len(), (bits / 2) as usize);
                assert_eq!(recompose(&frags), v, "bits={bits} v={v}");
                // Exactly one signed fragment, and it is the last one.
                assert!(frags.last().unwrap().signed);
                assert!(frags[..frags.len() - 1].iter().all(|f| !f.signed));
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn decompose_rejects_out_of_range() {
        let _ = decompose(8, 4);
    }

    #[test]
    fn int4_exhaustive_matches_native() {
        let mut m = FusedMultiplier::new(Precision::Int4);
        for a in -8..=7 {
            for b in -8..=7 {
                assert_eq!(m.mul(a, b), (a * b) as i64, "{a}*{b}");
            }
        }
    }

    #[test]
    fn int2_exhaustive_matches_native() {
        let mut m = FusedMultiplier::new(Precision::Int2);
        for a in -2..=1 {
            for b in -2..=1 {
                assert_eq!(m.mul(a, b), (a * b) as i64);
            }
        }
        // One INT2 multiply uses exactly one block.
        m.reset_counter();
        m.mul(1, -2);
        assert_eq!(m.int2_ops(), 1);
    }

    #[test]
    fn block_counts_match_fig7() {
        for (p, blocks) in [
            (Precision::Int2, 1u64),
            (Precision::Int4, 4),
            (Precision::Int8, 16),
            (Precision::Fx16, 64),
        ] {
            let mut m = FusedMultiplier::new(p);
            m.mul(1, 1);
            assert_eq!(m.int2_ops(), blocks, "{p}");
            assert_eq!(p.int2_blocks() as u64, blocks);
        }
    }

    #[test]
    fn fx16_extremes_match_native() {
        let mut m = FusedMultiplier::new(Precision::Fx16);
        for &a in &[i16::MIN as i32, -1, 0, 1, i16::MAX as i32, 12345, -9876] {
            for &b in &[i16::MIN as i32, -1, 0, 1, i16::MAX as i32, -321] {
                assert_eq!(m.mul(a, b), a as i64 * b as i64, "{a}*{b}");
            }
        }
    }

    #[test]
    fn dot_accumulates() {
        let mut m = FusedMultiplier::new(Precision::Int8);
        let a = [1, -2, 3, 100];
        let b = [4, 5, -6, -100];
        let expect: i64 = a.iter().zip(&b).map(|(&x, &y)| (x * y) as i64).sum();
        assert_eq!(m.dot(&a, &b), expect);
        assert_eq!(m.int2_ops(), 4 * 16);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn int8_composition_bit_exact(a in -128i32..=127, b in -128i32..=127) {
                let mut m = FusedMultiplier::new(Precision::Int8);
                prop_assert_eq!(m.mul(a, b), a as i64 * b as i64);
            }

            #[test]
            fn fx16_composition_bit_exact(a in i16::MIN as i32..=i16::MAX as i32,
                                          b in i16::MIN as i32..=i16::MAX as i32) {
                let mut m = FusedMultiplier::new(Precision::Fx16);
                prop_assert_eq!(m.mul(a, b), a as i64 * b as i64);
            }

            #[test]
            fn decompose_round_trip_prop(v in i16::MIN as i32..=i16::MAX as i32) {
                prop_assert_eq!(recompose(&decompose(v, 16)), v);
            }
        }
    }
}
