//! The accelerator's fixed-point attention datapath (paper §4.1).
//!
//! On DOTA hardware the important-attention computation runs in FX16:
//!
//! 1. `Q`, `K`, `V` are FX16 tensors in SRAM;
//! 2. `Q·Kᵀ` accumulates in a wide PSUM register (no intermediate
//!    rounding — Fig. 7b) and is **dequantized to floating point before
//!    softmax** "to avoid overflow during the computation", with scaling
//!    factors held in the global SRAM buffer;
//! 3. exponent and division run in the MFU's floating-point units;
//! 4. the softmax result is **quantized again** so the `A·V` product stays
//!    in fixed point.
//!
//! [`fx16_sparse_attention`] reproduces that pipeline bit-by-bit over a
//! detected selection, so the numeric drift of the hardware path relative
//! to the f32 reference can be measured (the tests bound it).

use crate::{Fx16, Precision, Quantizer};
use dota_tensor::{ops, Matrix};

/// A matrix of FX16 values plus the scale used to produce them (real value
/// = `fx.to_f32() * scale`), mirroring an SRAM-resident activation tile.
#[derive(Debug, Clone)]
pub struct Fx16Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Fx16>,
    scale: f32,
}

impl Fx16Matrix {
    /// Quantizes a real-valued matrix into FX16 with a per-matrix scale
    /// chosen so the largest magnitude maps near the top of the Q6.10
    /// range (the MFU Quantizer's policy).
    pub fn quantize(m: &Matrix) -> Self {
        let abs_max = m.abs_max();
        // Target 30.0 of the ~32 representable magnitude for headroom.
        let scale = if abs_max > 0.0 { abs_max / 30.0 } else { 1.0 };
        let data = m.iter().map(|&x| Fx16::from_f32(x / scale)).collect();
        Self {
            rows: m.rows(),
            cols: m.cols(),
            data,
            scale,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The dequantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Row `r` as a slice of FX16 values.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[Fx16] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reconstructs the real-valued matrix.
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data
                .iter()
                .map(|fx| fx.to_f32() * self.scale)
                .collect(),
        )
        .expect("consistent dims")
    }

    /// Wide-accumulator dot product of row `r` with another matrix's row
    /// (the PE MAC loop of Fig. 7b), returned as a real value.
    ///
    /// # Panics
    ///
    /// Panics if widths differ or indices are out of bounds.
    pub fn dot_rows(&self, r: usize, other: &Fx16Matrix, o: usize) -> f32 {
        assert_eq!(self.cols, other.cols, "width mismatch");
        let mut acc: i64 = 0;
        for (a, b) in self.row(r).iter().zip(other.row(o)) {
            acc = a.mac(*b, acc);
        }
        // acc holds the product in 2*FRAC fractional bits; undo both
        // quantization scales.
        let raw = acc as f32 / (1u64 << (2 * crate::fixed::FX16_FRAC_BITS)) as f32;
        raw * self.scale * other.scale
    }
}

/// Sparse attention over a detected selection, executed on the modeled
/// FX16 datapath: FX16 `q·k` scores with wide accumulation, f32 softmax
/// (the MFU), re-quantized weights, FX16 aggregation of `V`.
///
/// # Panics
///
/// Panics if shapes disagree or a selected index is out of bounds.
pub fn fx16_sparse_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    selected: &[Vec<u32>],
    scale: f32,
) -> Matrix {
    assert_eq!(q.cols(), k.cols(), "q/k width mismatch");
    assert_eq!(k.rows(), v.rows(), "k/v length mismatch");
    assert_eq!(selected.len(), q.rows(), "one selection per query");
    let qf = Fx16Matrix::quantize(q);
    let kf = Fx16Matrix::quantize(k);
    let vf = Fx16Matrix::quantize(v);
    // The MFU re-quantizes softmax outputs (probabilities in [0,1]) at a
    // fixed scale so A·V stays in fixed point.
    let prob_quant = Quantizer::symmetric(Precision::Fx16);

    let mut out = Matrix::zeros(q.rows(), v.cols());
    for (i, sel) in selected.iter().enumerate() {
        if sel.is_empty() {
            continue;
        }
        // 1-2: FX16 scores, dequantized (already f32 after dot_rows).
        let mut weights: Vec<f32> = sel
            .iter()
            .map(|&j| {
                assert!((j as usize) < k.rows(), "key index {j} out of bounds");
                qf.dot_rows(i, &kf, j as usize) * scale
            })
            .collect();
        // 3: f32 softmax in the MFU.
        ops::softmax_slice(&mut weights);
        // 4: quantize probabilities back to fixed point.
        let w_mat = Matrix::from_vec(1, weights.len(), weights.clone()).expect("row");
        let w_q = prob_quant.quantize_with_scale(&w_mat, 1.0 / 32767.0);
        // FX16 aggregation with a wide accumulator per output element:
        // acc = Σ code_w · raw_v, where code_w carries 1/32767 probability
        // per unit and raw_v carries vf.scale()/2^FRAC real value per unit.
        let orow = out.row_mut(i);
        let out_scale = vf.scale() / (32767.0 * (1u32 << crate::fixed::FX16_FRAC_BITS) as f32);
        for c in 0..v.cols() {
            let mut acc: i64 = 0;
            for (slot, &j) in sel.iter().enumerate() {
                let w_fx = Fx16::from_raw(w_q.code(0, slot) as i16);
                let v_fx = vf.row(j as usize)[c];
                acc = w_fx.mac(v_fx, acc);
            }
            orow[c] = acc as f32 * out_scale;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dota_tensor::rng::SeededRng;
    use dota_tensor::topk;

    fn setup(n: usize, hd: usize, k: usize) -> (Matrix, Matrix, Matrix, Vec<Vec<u32>>, f32) {
        let mut rng = SeededRng::new(21);
        let q = rng.normal_matrix(n, hd, 1.0);
        let kk = rng.normal_matrix(n, hd, 1.0);
        let v = rng.normal_matrix(n, hd, 1.0);
        let scale = 1.0 / (hd as f32).sqrt();
        let scores = q.matmul_nt(&kk).unwrap().scale(scale);
        let sel: Vec<Vec<u32>> = topk::top_k_rows(&scores, k)
            .into_iter()
            .map(|r| r.into_iter().map(|i| i as u32).collect())
            .collect();
        (q, kk, v, sel, scale)
    }

    #[test]
    fn fx16_matrix_round_trip() {
        let mut rng = SeededRng::new(1);
        let m = rng.normal_matrix(8, 8, 2.0);
        let fx = Fx16Matrix::quantize(&m);
        let back = fx.dequantize();
        let tol = fx.scale() * crate::Fx16::epsilon() * 1.5 + 1e-6;
        assert!(m.sub(&back).unwrap().abs_max() <= tol.max(0.01));
    }

    #[test]
    fn wide_dot_close_to_f32() {
        let mut rng = SeededRng::new(2);
        let a = rng.normal_matrix(4, 64, 1.0);
        let b = rng.normal_matrix(4, 64, 1.0);
        let fa = Fx16Matrix::quantize(&a);
        let fb = Fx16Matrix::quantize(&b);
        for i in 0..4 {
            for j in 0..4 {
                let exact = Matrix::dot(a.row(i), b.row(j));
                let fx = fa.dot_rows(i, &fb, j);
                assert!((exact - fx).abs() < 0.15, "({i},{j}): {exact} vs {fx}");
            }
        }
    }

    #[test]
    fn fx16_attention_tracks_f32_reference() {
        let (q, k, v, sel, scale) = setup(16, 32, 4);
        let reference = dota_tensor::ops::sparse_attention(&q, &k, &v, &sel, scale);
        let fx = fx16_sparse_attention(&q, &k, &v, &sel, scale);
        let err = reference.sub(&fx).unwrap().abs_max();
        // The paper's FX16 path is accuracy-neutral; drift stays well under
        // the activation scale.
        assert!(err < 0.05, "fx16 drift {err}");
    }

    #[test]
    fn fx16_attention_empty_rows_zero() {
        let (q, k, v, mut sel, scale) = setup(4, 8, 2);
        sel[2].clear();
        let fx = fx16_sparse_attention(&q, &k, &v, &sel, scale);
        assert!(fx.row(2).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn drift_small_relative_to_pruning_effect() {
        // Quantization error must be far below the signal the detector
        // preserves: compare fx16-vs-f32 drift against sparse-vs-dense
        // difference.
        let (q, k, v, sel, scale) = setup(16, 32, 2);
        let dense_sel: Vec<Vec<u32>> = (0..16).map(|_| (0..16u32).collect()).collect();
        let dense = dota_tensor::ops::sparse_attention(&q, &k, &v, &dense_sel, scale);
        let sparse = dota_tensor::ops::sparse_attention(&q, &k, &v, &sel, scale);
        let fx = fx16_sparse_attention(&q, &k, &v, &sel, scale);
        let prune_effect = dense.sub(&sparse).unwrap().frobenius_norm();
        let quant_drift = sparse.sub(&fx).unwrap().frobenius_norm();
        assert!(
            quant_drift < prune_effect / 5.0,
            "quant drift {quant_drift} vs prune effect {prune_effect}"
        );
    }
}
