use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Number of fractional bits in the Q-format used for FX16 values.
///
/// Q6.10 comfortably covers post-layer-norm activations and softmax
/// probabilities (magnitude ≤ ~32) with ~1e-3 resolution.
pub const FX16_FRAC_BITS: u32 = 10;

/// A 16-bit fixed-point number in Q6.10 format.
///
/// This is the datatype of DOTA's important-attention computation (paper
/// §4.1): `Q*K^T` products are accumulated in 32-bit and requantized, and
/// softmax is performed in floating point by the Multi-Function Unit before
/// results are quantized back to `Fx16` for the `A*V` product.
///
/// Arithmetic saturates instead of wrapping, matching hardware behaviour.
///
/// # Example
///
/// ```
/// use dota_quant::Fx16;
///
/// let a = Fx16::from_f32(1.5);
/// let b = Fx16::from_f32(-0.25);
/// assert!((f32::from(a * b) + 0.375).abs() < 1e-2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fx16(i16);

impl Fx16 {
    /// The zero value.
    pub const ZERO: Fx16 = Fx16(0);
    /// The largest representable value.
    pub const MAX: Fx16 = Fx16(i16::MAX);
    /// The smallest representable value.
    pub const MIN: Fx16 = Fx16(i16::MIN);

    /// Converts from `f32`, rounding to nearest and saturating at the
    /// representable range.
    pub fn from_f32(x: f32) -> Self {
        let scaled = (x * (1 << FX16_FRAC_BITS) as f32).round();
        Fx16(scaled.clamp(i16::MIN as f32, i16::MAX as f32) as i16)
    }

    /// Constructs from the raw underlying bits.
    pub fn from_raw(raw: i16) -> Self {
        Fx16(raw)
    }

    /// The raw underlying bits.
    pub fn raw(self) -> i16 {
        self.0
    }

    /// Converts to `f32`.
    pub fn to_f32(self) -> f32 {
        self.0 as f32 / (1 << FX16_FRAC_BITS) as f32
    }

    /// The quantization step (smallest positive increment).
    pub fn epsilon() -> f32 {
        1.0 / (1 << FX16_FRAC_BITS) as f32
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Fx16) -> Fx16 {
        Fx16(self.0.saturating_add(rhs.0))
    }

    /// Saturating multiplication via a 32-bit intermediate product, as a
    /// hardware fixed-point multiplier would compute it.
    pub fn saturating_mul(self, rhs: Fx16) -> Fx16 {
        let wide = (self.0 as i32 * rhs.0 as i32) >> FX16_FRAC_BITS;
        Fx16(wide.clamp(i16::MIN as i32, i16::MAX as i32) as i16)
    }

    /// Multiply-accumulate into a 32-bit accumulator *without* intermediate
    /// rounding: returns `acc + self*rhs` where the product keeps all
    /// `2*FX16_FRAC_BITS` fractional bits. This models the PE's wide PSUM
    /// register (Fig. 7(b)).
    pub fn mac(self, rhs: Fx16, acc: i64) -> i64 {
        acc + self.0 as i64 * rhs.0 as i64
    }

    /// Converts a wide accumulator produced by [`mac`](Fx16::mac) back into
    /// an `Fx16`, with rounding and saturation.
    pub fn from_accumulator(acc: i64) -> Fx16 {
        let rounded = (acc + (1 << (FX16_FRAC_BITS - 1))) >> FX16_FRAC_BITS;
        Fx16(rounded.clamp(i16::MIN as i64, i16::MAX as i64) as i16)
    }
}

impl From<Fx16> for f32 {
    fn from(x: Fx16) -> f32 {
        x.to_f32()
    }
}

impl Add for Fx16 {
    type Output = Fx16;
    fn add(self, rhs: Fx16) -> Fx16 {
        self.saturating_add(rhs)
    }
}

impl Sub for Fx16 {
    type Output = Fx16;
    fn sub(self, rhs: Fx16) -> Fx16 {
        Fx16(self.0.saturating_sub(rhs.0))
    }
}

impl Mul for Fx16 {
    type Output = Fx16;
    fn mul(self, rhs: Fx16) -> Fx16 {
        self.saturating_mul(rhs)
    }
}

impl Neg for Fx16 {
    type Output = Fx16;
    fn neg(self) -> Fx16 {
        Fx16(self.0.saturating_neg())
    }
}

impl fmt::Display for Fx16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_within_epsilon() {
        for &x in &[0.0, 1.0, -1.0, 0.123, -3.719, 15.5, -20.0] {
            let fx = Fx16::from_f32(x);
            assert!(
                (fx.to_f32() - x).abs() <= Fx16::epsilon() / 2.0 + 1e-6,
                "{x}"
            );
        }
    }

    #[test]
    fn saturates_out_of_range() {
        assert_eq!(Fx16::from_f32(1e9), Fx16::MAX);
        assert_eq!(Fx16::from_f32(-1e9), Fx16::MIN);
        assert_eq!(Fx16::MAX + Fx16::MAX, Fx16::MAX);
        assert_eq!(Fx16::MIN + Fx16::MIN, Fx16::MIN);
    }

    #[test]
    fn multiplication_approximates_f32() {
        let cases = [(1.5, 2.0), (-0.75, 0.5), (3.25, -3.0), (0.1, 0.1)];
        for (a, b) in cases {
            let got = (Fx16::from_f32(a) * Fx16::from_f32(b)).to_f32();
            assert!((got - a * b).abs() < 0.01, "{a}*{b} = {got}");
        }
    }

    #[test]
    fn mul_saturates() {
        let big = Fx16::from_f32(30.0);
        assert_eq!(big * big, Fx16::MAX);
        assert_eq!(big * -big, Fx16::MIN);
    }

    #[test]
    fn wide_mac_no_intermediate_rounding() {
        // Sum of many small products: wide accumulation must be more
        // accurate than rounding each product to Fx16 first.
        let vals: Vec<f32> = (0..100).map(|i| 0.011 * (i % 7) as f32).collect();
        let mut acc = 0i64;
        let mut narrow = Fx16::ZERO;
        let mut exact = 0.0f32;
        for &v in &vals {
            let a = Fx16::from_f32(v);
            let b = Fx16::from_f32(0.013);
            acc = a.mac(b, acc);
            narrow = narrow + a * b;
            exact += a.to_f32() * b.to_f32();
        }
        let wide = Fx16::from_accumulator(acc).to_f32();
        assert!((wide - exact).abs() <= (narrow.to_f32() - exact).abs() + 1e-6);
        assert!((wide - exact).abs() < 0.002);
    }

    #[test]
    fn neg_and_sub() {
        let a = Fx16::from_f32(2.0);
        assert_eq!((-a).to_f32(), -2.0);
        assert_eq!((a - a).to_f32(), 0.0);
    }

    #[test]
    fn ordering_matches_value() {
        assert!(Fx16::from_f32(1.0) < Fx16::from_f32(2.0));
        assert!(Fx16::from_f32(-1.0) < Fx16::ZERO);
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(Fx16::from_f32(0.5).to_string(), "0.5");
    }
}
