use std::fmt;

/// A computation precision supported by the RMMU (paper §4.2).
///
/// FX16 is used for the important-attention computation; INT8/INT4/INT2 are
/// used by the attention detector. Because the RMMU builds wide multipliers
/// out of INT2 blocks, narrower precisions run quadratically more multiplies
/// per cycle on the same silicon — captured by
/// [`throughput_multiplier`](Precision::throughput_multiplier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// 2-bit signed integer (detector, most aggressive).
    Int2,
    /// 4-bit signed integer (the paper's "safe" detector precision, §5.5).
    Int4,
    /// 8-bit signed integer (needed when X, W̃Q, W̃K are INT4 so that
    /// Q̃ and K̃ are INT8, §5.5).
    Int8,
    /// 16-bit fixed point, the precision of important attention computation.
    Fx16,
}

impl Precision {
    /// All precisions, narrowest first.
    pub const ALL: [Precision; 4] = [
        Precision::Int2,
        Precision::Int4,
        Precision::Int8,
        Precision::Fx16,
    ];

    /// Bit width of one operand.
    pub fn bits(self) -> u32 {
        match self {
            Precision::Int2 => 2,
            Precision::Int4 => 4,
            Precision::Int8 => 8,
            Precision::Fx16 => 16,
        }
    }

    /// Number of representable signed levels (`2^bits`).
    pub fn levels(self) -> i32 {
        1 << self.bits()
    }

    /// Largest representable magnitude for symmetric quantization
    /// (`2^(bits-1) - 1`).
    pub fn qmax(self) -> i32 {
        (1 << (self.bits() - 1)) - 1
    }

    /// Smallest representable value (`-2^(bits-1)`).
    pub fn qmin(self) -> i32 {
        -(1 << (self.bits() - 1))
    }

    /// MAC throughput of one PE at this precision, relative to FX16.
    ///
    /// An FX16 multiplier decomposes into 8×8 = 64 INT2 sub-multipliers
    /// (Fig. 7 shows the FX4/INT2 case: one FX4 multiplier = 4 INT2
    /// multipliers). Reconfiguring to half the width quadruples throughput:
    /// FX16 → 1, INT8 → 4, INT4 → 16, INT2 → 64.
    pub fn throughput_multiplier(self) -> u32 {
        let ratio = 16 / self.bits();
        ratio * ratio
    }

    /// Number of INT2 building-block multipliers consumed by one multiply at
    /// this precision.
    pub fn int2_blocks(self) -> u32 {
        let frags = self.bits() / 2;
        frags * frags
    }

    /// Relative dynamic energy of one MAC at this precision, normalized to
    /// FX16 = 1.0.
    ///
    /// Multiplier energy scales roughly quadratically with operand width;
    /// we use the INT2-block count as the proxy, which also matches the
    /// bit-fusion construction (active sub-multipliers).
    pub fn mac_energy_rel(self) -> f64 {
        self.int2_blocks() as f64 / Precision::Fx16.int2_blocks() as f64
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Precision::Int2 => "INT2",
            Precision::Int4 => "INT4",
            Precision::Int8 => "INT8",
            Precision::Fx16 => "FX16",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_widths() {
        assert_eq!(Precision::Int2.bits(), 2);
        assert_eq!(Precision::Int4.bits(), 4);
        assert_eq!(Precision::Int8.bits(), 8);
        assert_eq!(Precision::Fx16.bits(), 16);
    }

    #[test]
    fn quant_ranges_symmetric() {
        assert_eq!(Precision::Int2.qmin(), -2);
        assert_eq!(Precision::Int2.qmax(), 1);
        assert_eq!(Precision::Int4.qmin(), -8);
        assert_eq!(Precision::Int4.qmax(), 7);
        assert_eq!(Precision::Int8.qmax(), 127);
        assert_eq!(Precision::Fx16.qmax(), 32767);
    }

    #[test]
    fn throughput_quadratic_in_width_ratio() {
        assert_eq!(Precision::Fx16.throughput_multiplier(), 1);
        assert_eq!(Precision::Int8.throughput_multiplier(), 4);
        assert_eq!(Precision::Int4.throughput_multiplier(), 16);
        assert_eq!(Precision::Int2.throughput_multiplier(), 64);
    }

    #[test]
    fn int2_blocks_match_fig7_example() {
        // Fig. 7(c): an FX4 multiplier is built from four INT2 multipliers.
        assert_eq!(Precision::Int4.int2_blocks(), 4);
        assert_eq!(Precision::Int2.int2_blocks(), 1);
        assert_eq!(Precision::Fx16.int2_blocks(), 64);
    }

    #[test]
    fn energy_monotone_in_precision() {
        let mut prev = 0.0;
        for p in Precision::ALL {
            assert!(p.mac_energy_rel() > prev);
            prev = p.mac_energy_rel();
        }
        assert_eq!(Precision::Fx16.mac_energy_rel(), 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Precision::Int4.to_string(), "INT4");
        assert_eq!(Precision::Fx16.to_string(), "FX16");
    }

    #[test]
    fn ordering_narrowest_first() {
        assert!(Precision::Int2 < Precision::Int4);
        assert!(Precision::Int8 < Precision::Fx16);
    }
}
