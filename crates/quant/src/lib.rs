//! Fixed-point arithmetic, quantization and the multi-precision multiplier
//! model behind DOTA's Reconfigurable Matrix Multiplication Unit (RMMU).
//!
//! The paper's accelerator (§4.2) computes important attention values in
//! FX16 fixed point and runs the attention *detector* in INT8/INT4/INT2.
//! Rather than implementing separate arithmetic units, the RMMU builds its
//! FX16 multipliers out of INT2 blocks (bit-fusion style, Fig. 7), so that a
//! PE row reconfigured to a lower precision gains quadratically more
//! multiplies per cycle.
//!
//! This crate provides:
//!
//! * [`Precision`] — the four supported precisions and their throughput
//!   multipliers;
//! * [`Fx16`] — a Q-format fixed-point scalar used for attention values;
//! * [`bitfusion`] — the INT2-block multiplier composition, verified by
//!   property tests to match wide multiplication exactly;
//! * [`Quantizer`] / [`QuantizedMatrix`] — symmetric per-matrix quantization
//!   and integer GEMM, the numeric path of the detector;
//! * [`rmmu`] — the functional/throughput model of the 32×16 PE array.
//!
//! # Example
//!
//! ```
//! use dota_quant::{Precision, Quantizer};
//! use dota_tensor::Matrix;
//!
//! # fn main() -> Result<(), dota_tensor::ShapeError> {
//! let m = Matrix::from_rows(&[&[0.5, -1.0], &[0.25, 1.0]])?;
//! let q = Quantizer::symmetric(Precision::Int8).quantize(&m);
//! let back = q.dequantize();
//! assert!(back.approx_eq(&m, 0.02));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
// Indexed loops are the clearest formulation of the matrix kernels here.
#![allow(clippy::needless_range_loop)]

pub mod attention;
pub mod bitfusion;
mod fixed;
mod precision;
pub mod qgemm;
mod quantizer;
pub mod rmmu;

pub use fixed::Fx16;
pub use precision::Precision;
pub use qgemm::{Int4Packed, Int8Matrix};
pub use quantizer::{QuantizedMatrix, Quantizer};
