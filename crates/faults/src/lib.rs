//! Deterministic fault injection for the DOTA reproduction.
//!
//! DOTA is an *approximate* system: the Detector omits attention
//! connections it predicts are weak, and the accelerator that executes the
//! pruned schedule is itself a physical machine with SRAMs, DRAM channels
//! and parallel lanes that can misbehave. This crate answers "what happens
//! when the approximation — or the hardware underneath it — goes wrong?"
//! by injecting faults at named sites, deterministically, so that a fault
//! campaign is a reproducible experiment rather than a flaky one.
//!
//! The design mirrors `dota-trace`/`dota-metrics`: a process-global,
//! session-gated plan that costs one relaxed atomic load per call site when
//! no session is active. A [`session`] installs a [`FaultPlan`] (seed +
//! per-site rates); instrumented code asks [`should_inject`] whether a
//! fault fires at a given site for given coordinates.
//!
//! **Determinism.** Whether a fault fires is a pure hash of
//! `(seed, site, coordinates)` — a splitmix64-style mix mapped to a uniform
//! value in `[0, 1)` and compared against the site's rate. No global RNG is
//! consumed, so the decision is independent of thread count, scheduling
//! order and call order: the same seed yields byte-identical campaign
//! reports across `DOTA_THREADS` ∈ {1, 8} and serial vs `parallel` builds.
//! Callers must pass coordinates that are stable across runs (layer/head
//! indices, tile ids, epoch numbers — never pointers or wall-clock values).
//!
//! ```
//! use dota_faults::{FaultPlan, FaultSite};
//!
//! let plan = FaultPlan::new(42).with_rate(FaultSite::SramBitFlip, 1.0);
//! let guard = dota_faults::session(plan);
//! assert!(dota_faults::should_inject(FaultSite::SramBitFlip, &[0, 7]));
//! assert!(!dota_faults::should_inject(FaultSite::DramRead, &[0]));
//! dota_faults::record("faults.sram.bitflips", 1);
//! assert_eq!(guard.counter("faults.sram.bitflips"), 1);
//! drop(guard); // injection off again
//! assert!(!dota_faults::should_inject(FaultSite::SramBitFlip, &[0, 7]));
//! ```
//!
//! Sessions are exclusive: [`session`] blocks until any other live
//! [`FaultGuard`] drops (nesting on one thread deadlocks by design). Every
//! injected fault must either be **absorbed** by the instrumented layer
//! (retry, dense fallback — visible in the `faults.*` counters) or surface
//! as a **typed error**; fault paths never panic.

#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// A named place in the system where a fault can be injected.
///
/// Sites are coarse fault *classes*; the coordinates passed to
/// [`should_inject`] pick out the individual event (which access, which
/// lane, which layer/head, which epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// A bit flips in a banked SRAM read; the access is detected by ECC
    /// and re-read (absorbed: extra cycles + `faults.sram.bitflips`).
    SramBitFlip,
    /// A DRAM burst read fails transiently; the port retries a bounded
    /// number of times, then surfaces a typed error.
    DramRead,
    /// A compute lane is stuck at power-on; the scheduler routes around it
    /// (absorbed: reduced throughput). All lanes stuck is a typed error.
    LaneStuck,
    /// The detector's score path is corrupted (garbage selection indices);
    /// the transformer falls back to dense attention for that head.
    DetectorCorrupt,
    /// The detector's threshold comparator saturates and selects nothing;
    /// the transformer falls back to dense attention for that head.
    DetectorSaturate,
    /// An attention input tile goes non-finite (NaN/Inf); unabsorbable —
    /// inference surfaces a typed error instead of propagating garbage.
    AttnInput,
    /// A training epoch diverges (non-finite loss); the watchdog rolls
    /// back to the last good state with lr backoff, bounded retries, then
    /// a typed error.
    TrainLoss,
    /// A serving batch slot dies mid-decode; the request's in-flight state
    /// is lost, the lane is quarantined until deterministic probe steps
    /// pass, and the request retries with exponential cycle backoff
    /// (absorbed) or fails typed once its retry cap is exhausted.
    SlotFail,
    /// A K/V-cache read comes back corrupted (detected by the serving
    /// engine's integrity check); the cached state is untrustworthy, so
    /// the request restarts from scratch via the retry path.
    KvCorrupt,
    /// One slot's decode step overruns its cycle budget; the step's output
    /// is discarded and the position repeats next step (absorbed), with
    /// repeated consecutive overruns escalating to a slot-level retry.
    DecodeTimeout,
}

impl FaultSite {
    /// Every site, in a stable order (used by sweeps and `--sites all`).
    /// New sites append so earlier sites keep their hash stream.
    pub const ALL: [FaultSite; 10] = [
        FaultSite::SramBitFlip,
        FaultSite::DramRead,
        FaultSite::LaneStuck,
        FaultSite::DetectorCorrupt,
        FaultSite::DetectorSaturate,
        FaultSite::AttnInput,
        FaultSite::TrainLoss,
        FaultSite::SlotFail,
        FaultSite::KvCorrupt,
        FaultSite::DecodeTimeout,
    ];

    /// Sites exercised by the model/accelerator inference probe (the
    /// `dota faults` campaign). The serve-layer sites below only fire
    /// inside the serving engine and are swept by `dota serve --chaos`.
    pub const MODEL: [FaultSite; 7] = [
        FaultSite::SramBitFlip,
        FaultSite::DramRead,
        FaultSite::LaneStuck,
        FaultSite::DetectorCorrupt,
        FaultSite::DetectorSaturate,
        FaultSite::AttnInput,
        FaultSite::TrainLoss,
    ];

    /// Sites that fire inside the serving engine (`dota serve --chaos`).
    pub const SERVE: [FaultSite; 3] = [
        FaultSite::SlotFail,
        FaultSite::KvCorrupt,
        FaultSite::DecodeTimeout,
    ];

    /// The site's stable string name (used in CLI specs, counters and
    /// campaign reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::SramBitFlip => "sram.bitflip",
            FaultSite::DramRead => "dram.read",
            FaultSite::LaneStuck => "lane.stuck",
            FaultSite::DetectorCorrupt => "detector.corrupt",
            FaultSite::DetectorSaturate => "detector.saturate",
            FaultSite::AttnInput => "attn.input",
            FaultSite::TrainLoss => "train.loss",
            FaultSite::SlotFail => "slot.fail",
            FaultSite::KvCorrupt => "kv.corrupt",
            FaultSite::DecodeTimeout => "decode.timeout",
        }
    }

    /// Parses a site from its [`name`](FaultSite::name).
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names if `s` is not one.
    pub fn parse(s: &str) -> Result<FaultSite, String> {
        FaultSite::ALL
            .iter()
            .copied()
            .find(|site| site.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = FaultSite::ALL.iter().map(|s| s.name()).collect();
                format!(
                    "unknown fault site `{s}` (expected one of: {})",
                    names.join(", ")
                )
            })
    }

    fn index(self) -> usize {
        FaultSite::ALL
            .iter()
            .position(|&s| s == self)
            .expect("site listed in ALL")
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A seeded fault plan: which sites fire, and how often.
///
/// Rates are probabilities in `[0, 1]` evaluated independently per
/// `(site, coordinates)` event; `1.0` fires on every event at the site and
/// `0.0` (the default) never fires.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: [f64; FaultSite::ALL.len()],
}

impl FaultPlan {
    /// A plan with the given seed and every rate zero.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rates: [0.0; FaultSite::ALL.len()],
        }
    }

    /// Builder: sets `site`'s rate (clamped to `[0, 1]`; NaN becomes 0).
    #[must_use]
    pub fn with_rate(mut self, site: FaultSite, rate: f64) -> Self {
        self.rates[site.index()] = if rate.is_nan() {
            0.0
        } else {
            rate.clamp(0.0, 1.0)
        };
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `site`'s injection rate.
    pub fn rate(&self, site: FaultSite) -> f64 {
        self.rates[site.index()]
    }

    /// Parses a comma-separated `site=rate` spec, e.g.
    /// `"dram.read=0.5,attn.input=1"`.
    ///
    /// # Errors
    ///
    /// Returns a one-line message on an unknown site, a malformed pair or
    /// a rate outside `[0, 1]`.
    pub fn parse_spec(seed: u64, spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(seed);
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (name, rate) = part
                .split_once('=')
                .ok_or_else(|| format!("malformed fault spec `{part}` (expected site=rate)"))?;
            let site = FaultSite::parse(name.trim())?;
            let rate: f64 = rate
                .trim()
                .parse()
                .map_err(|_| format!("invalid fault rate `{}` for site `{}`", rate.trim(), site))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!(
                    "fault rate {rate} for site `{site}` outside [0, 1]"
                ));
            }
            plan = plan.with_rate(site, rate);
        }
        Ok(plan)
    }
}

struct State {
    plan: FaultPlan,
    counters: BTreeMap<String, u64>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SESSION_GATE: Mutex<()> = Mutex::new(());
static STATE: Mutex<Option<State>> = Mutex::new(None);

fn lock_state() -> MutexGuard<'static, Option<State>> {
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether a fault session is currently active. One relaxed atomic load —
/// instrumented hot paths check this before preparing coordinates.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// splitmix64 finalizer: a full-avalanche 64-bit mix.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes `(seed, site, coords)` to a uniform value in `[0, 1)`.
fn uniform(seed: u64, site: FaultSite, coords: &[u64]) -> f64 {
    let mut h = mix(seed ^ 0xd0a7_a0fa_u64.wrapping_mul(site.index() as u64 + 1));
    for (i, &c) in coords.iter().enumerate() {
        h = mix(h ^ c.wrapping_add((i as u64 + 1) << 56));
    }
    // Top 53 bits -> [0, 1) with full double precision.
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Decides whether a fault fires at `site` for the event identified by
/// `coords`. Pure in `(plan.seed, site, coords)`: independent of thread
/// interleaving and call order. Always `false` outside a session or when
/// the site's rate is zero. A firing decision bumps the internal
/// `faults.<site>.injected` counter.
pub fn should_inject(site: FaultSite, coords: &[u64]) -> bool {
    if !enabled() {
        return false;
    }
    let mut st = lock_state();
    let Some(st) = st.as_mut() else { return false };
    let rate = st.plan.rate(site);
    if rate <= 0.0 {
        return false;
    }
    let fire = rate >= 1.0 || uniform(st.plan.seed, site, coords) < rate;
    if fire {
        let key = format!("faults.{}.injected", site.name());
        *st.counters.entry(key).or_insert(0) += 1;
    }
    fire
}

/// Adds `delta` to a session-scoped fault counter (e.g.
/// `faults.fallback_dense`, `faults.dram.retries`). A no-op (one atomic
/// load) outside a session. Sums are order-independent, so totals are
/// identical across thread counts.
#[inline]
pub fn record(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut st = lock_state();
    if let Some(st) = st.as_mut() {
        *st.counters.entry(name.to_owned()).or_insert(0) += delta;
    }
}

/// The active plan's seed, if a session is live. Instrumented code may use
/// this to derive deterministic payloads (e.g. which bit to flip).
pub fn active_seed() -> Option<u64> {
    if !enabled() {
        return None;
    }
    lock_state().as_ref().map(|st| st.plan.seed())
}

/// Begins an exclusive fault session with `plan`. Blocks until any other
/// live session ends; do not nest sessions on one thread (deadlocks by
/// design). Injection stops when the returned guard drops.
pub fn session(plan: FaultPlan) -> FaultGuard {
    let gate = SESSION_GATE.lock().unwrap_or_else(PoisonError::into_inner);
    *lock_state() = Some(State {
        plan,
        counters: BTreeMap::new(),
    });
    ENABLED.store(true, Ordering::SeqCst);
    FaultGuard { _gate: gate }
}

/// Exclusive handle on the active fault session (see [`session`]).
#[derive(Debug)]
pub struct FaultGuard {
    _gate: MutexGuard<'static, ()>,
}

impl FaultGuard {
    /// Value of one fault counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        lock_state()
            .as_ref()
            .and_then(|st| st.counters.get(name).copied())
            .unwrap_or(0)
    }

    /// Snapshot of every fault counter recorded in this session.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        lock_state()
            .as_ref()
            .map(|st| st.counters.clone())
            .unwrap_or_default()
    }

    /// Sum of `faults.<site>.injected` across all sites: how many faults
    /// actually fired so far in this session.
    pub fn injected_total(&self) -> u64 {
        self.counters()
            .iter()
            .filter(|(k, _)| k.ends_with(".injected"))
            .map(|(_, v)| v)
            .sum()
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        *lock_state() = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        assert!(!enabled());
        assert!(!should_inject(FaultSite::SramBitFlip, &[1, 2]));
        record("faults.noop", 3); // dropped outside a session
        let g = session(FaultPlan::new(1));
        assert_eq!(g.counter("faults.noop"), 0);
    }

    #[test]
    fn rate_one_always_fires_rate_zero_never() {
        let g = session(FaultPlan::new(7).with_rate(FaultSite::DramRead, 1.0));
        for i in 0..32 {
            assert!(should_inject(FaultSite::DramRead, &[i]));
            assert!(!should_inject(FaultSite::SramBitFlip, &[i]));
        }
        assert_eq!(g.counter("faults.dram.read.injected"), 32);
        assert_eq!(g.injected_total(), 32);
    }

    #[test]
    fn decisions_are_pure_functions_of_coords() {
        let plan = FaultPlan::new(99).with_rate(FaultSite::LaneStuck, 0.5);
        let first: Vec<bool> = {
            let _g = session(plan.clone());
            (0..256)
                .map(|i| should_inject(FaultSite::LaneStuck, &[i]))
                .collect()
        };
        // Same seed, different call order: identical decisions.
        let second: Vec<bool> = {
            let _g = session(plan);
            let mut out = vec![false; 256];
            for i in (0..256).rev() {
                out[i as usize] = should_inject(FaultSite::LaneStuck, &[i]);
            }
            out
        };
        assert_eq!(first, second);
        let fired = first.iter().filter(|&&b| b).count();
        assert!((64..192).contains(&fired), "rate 0.5 fired {fired}/256");
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<bool> = {
            let _g = session(FaultPlan::new(1).with_rate(FaultSite::DetectorCorrupt, 0.5));
            (0..64)
                .map(|i| should_inject(FaultSite::DetectorCorrupt, &[i]))
                .collect()
        };
        let b: Vec<bool> = {
            let _g = session(FaultPlan::new(2).with_rate(FaultSite::DetectorCorrupt, 0.5));
            (0..64)
                .map(|i| should_inject(FaultSite::DetectorCorrupt, &[i]))
                .collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn sites_are_independent_streams() {
        let _g = session(
            FaultPlan::new(5)
                .with_rate(FaultSite::SramBitFlip, 0.5)
                .with_rate(FaultSite::DramRead, 0.5),
        );
        let a: Vec<bool> = (0..64)
            .map(|i| should_inject(FaultSite::SramBitFlip, &[i]))
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|i| should_inject(FaultSite::DramRead, &[i]))
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn counters_accumulate_and_reset_across_sessions() {
        {
            let g = session(FaultPlan::new(3));
            record("faults.fallback_dense", 2);
            record("faults.fallback_dense", 1);
            assert_eq!(g.counter("faults.fallback_dense"), 3);
        }
        let g = session(FaultPlan::new(3));
        assert_eq!(g.counter("faults.fallback_dense"), 0, "counter leaked");
    }

    #[test]
    fn concurrent_decisions_are_order_independent() {
        let plan = FaultPlan::new(11).with_rate(FaultSite::SramBitFlip, 0.3);
        let serial: Vec<bool> = {
            let _g = session(plan.clone());
            (0..400)
                .map(|i| should_inject(FaultSite::SramBitFlip, &[i]))
                .collect()
        };
        let g = session(plan);
        let threaded: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    s.spawn(move || {
                        (0..100)
                            .map(|i| {
                                let c = t * 100 + i;
                                (c, should_inject(FaultSite::SramBitFlip, &[c]))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut all: Vec<(u64, bool)> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            all.into_iter().map(|(_, b)| b).collect()
        });
        assert_eq!(serial, threaded);
        let expected = serial.iter().filter(|&&b| b).count() as u64;
        assert_eq!(g.counter("faults.sram.bitflip.injected"), expected);
    }

    #[test]
    fn spec_parsing() {
        let plan = FaultPlan::parse_spec(9, "dram.read=0.5, attn.input=1").unwrap();
        assert_eq!(plan.rate(FaultSite::DramRead), 0.5);
        assert_eq!(plan.rate(FaultSite::AttnInput), 1.0);
        assert_eq!(plan.rate(FaultSite::SramBitFlip), 0.0);
        assert!(FaultPlan::parse_spec(9, "bogus=1").is_err());
        assert!(FaultPlan::parse_spec(9, "dram.read").is_err());
        assert!(FaultPlan::parse_spec(9, "dram.read=2.0").is_err());
        assert!(FaultPlan::parse_spec(9, "dram.read=abc").is_err());
    }

    #[test]
    fn site_name_round_trip() {
        for site in FaultSite::ALL {
            assert_eq!(FaultSite::parse(site.name()).unwrap(), site);
        }
        assert!(FaultSite::parse("nope").is_err());
    }

    #[test]
    fn serve_sites_append_after_model_sites() {
        // The hash stream keys on the position in ALL, so the model-layer
        // sites must keep indices 0..MODEL.len() forever; serve sites
        // append after them. MODEL and SERVE partition ALL.
        assert_eq!(&FaultSite::ALL[..FaultSite::MODEL.len()], &FaultSite::MODEL);
        assert_eq!(&FaultSite::ALL[FaultSite::MODEL.len()..], &FaultSite::SERVE);
    }
}
