//! Criterion benches of the accelerator simulator itself: analytic shape
//! simulation per benchmark, and the comparison pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dota_accel::synth::SelectionProfile;
use dota_accel::{AccelConfig, Accelerator};
use dota_core::presets::{self, OperatingPoint};
use dota_core::DotaSystem;
use dota_workloads::Benchmark;

fn simulate_shape(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_shape");
    let acc = Accelerator::new(AccelConfig::default());
    let profile = SelectionProfile::default();
    for b in [Benchmark::Qa, Benchmark::Text] {
        let model = presets::paper_model(b);
        let n = b.paper_seq_len();
        let r = presets::retention(b, OperatingPoint::Conservative);
        group.bench_function(BenchmarkId::from_parameter(b.name()), |bch| {
            bch.iter(|| acc.simulate_shape(&model, n, r, presets::SIGMA, &profile))
        });
    }
    group.finish();
}

fn full_comparison(c: &mut Criterion) {
    let system = DotaSystem::paper_default();
    c.bench_function("speedup_row_text_conservative", |b| {
        b.iter(|| system.speedup_row(Benchmark::Text, OperatingPoint::Conservative))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = simulate_shape, full_comparison
}
criterion_main!(benches);
