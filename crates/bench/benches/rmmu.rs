//! Criterion benches of the bit-fusion multiplier composition (Fig. 7):
//! fused multiply throughput at each precision, and the quantizer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dota_quant::bitfusion::FusedMultiplier;
use dota_quant::{Precision, Quantizer};
use dota_tensor::rng::SeededRng;

fn fused_multiplier(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_multiplier_dot");
    let len = 4096;
    for precision in Precision::ALL {
        let qmax = precision.qmax();
        let a: Vec<i32> = (0..len)
            .map(|i| (i % (2 * qmax as usize + 1)) as i32 - qmax)
            .collect();
        let b: Vec<i32> = (0..len)
            .map(|i| ((i * 7) % (2 * qmax as usize + 1)) as i32 - qmax)
            .collect();
        group.bench_function(BenchmarkId::from_parameter(precision.to_string()), |bch| {
            bch.iter(|| {
                let mut m = FusedMultiplier::new(precision);
                m.dot(&a, &b)
            })
        });
    }
    group.finish();
}

fn quantize_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantize");
    let mut rng = SeededRng::new(9);
    let m = rng.normal_matrix(512, 64, 1.0);
    for precision in [Precision::Int8, Precision::Int4, Precision::Int2] {
        group.bench_function(BenchmarkId::from_parameter(precision.to_string()), |b| {
            b.iter(|| Quantizer::symmetric(precision).quantize(&m))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fused_multiplier, quantize_roundtrip
}
criterion_main!(benches);
