//! Criterion benches of the hot numeric kernels: dense vs sparse attention
//! forward, the detector's estimated-score path (float and quantized), and
//! integer GEMM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dota_autograd::ParamSet;
use dota_detector::{DetectorConfig, LowRankDetector};
use dota_quant::{Precision, Quantizer};
use dota_tensor::rng::SeededRng;
use dota_tensor::{ops, topk, Matrix};

fn attention_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention_forward");
    let hd = 64;
    for &n in &[128usize, 256, 512] {
        let mut rng = SeededRng::new(1);
        let q = rng.normal_matrix(n, hd, 1.0);
        let k = rng.normal_matrix(n, hd, 1.0);
        let v = rng.normal_matrix(n, hd, 1.0);

        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            b.iter(|| {
                let s = q.matmul_nt(&k).unwrap();
                let a = ops::softmax_rows(&s);
                a.matmul(&v).unwrap()
            })
        });

        // Sparse at 10% retention with precomputed masks (the accelerator's
        // regime: detection already happened).
        let kpr = n / 10;
        let s_full = q.matmul_nt(&k).unwrap();
        let sel = topk::top_k_rows(&s_full, kpr);
        let mask = topk::indices_to_mask(&sel, n);
        group.bench_with_input(BenchmarkId::new("sparse10", n), &n, |b, _| {
            b.iter(|| {
                // Score only the kept pairs, masked softmax, aggregate.
                let mut s = Matrix::zeros(n, n);
                for (i, row) in sel.iter().enumerate() {
                    for &j in row {
                        s[(i, j)] = Matrix::dot(q.row(i), k.row(j));
                    }
                }
                let a = ops::masked_softmax_rows(&s, &mask);
                a.matmul(&v).unwrap()
            })
        });
    }
    group.finish();
}

fn detector_estimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("detector_estimate");
    let d = 128;
    let hd = 64;
    for &n in &[256usize, 512] {
        let cfg = DetectorConfig::new(0.1).with_sigma(0.2);
        let mut params = ParamSet::new();
        let det = LowRankDetector::init(&cfg, d, hd, &mut params, "bench", 3);
        let mut rng = SeededRng::new(2);
        let x = rng.normal_matrix(n, d, 1.0);

        group.bench_with_input(BenchmarkId::new("f32", n), &n, |b, _| {
            b.iter(|| det.estimated_scores_f32(&params, &x))
        });
        group.bench_with_input(BenchmarkId::new("int4", n), &n, |b, _| {
            b.iter(|| det.estimated_scores_quantized(&cfg, &params, &x))
        });
        // The full-rank scores it replaces.
        let wq = rng.xavier(d, hd);
        let wk = rng.xavier(d, hd);
        group.bench_with_input(BenchmarkId::new("exact_scores", n), &n, |b, _| {
            b.iter(|| {
                let q = x.matmul(&wq).unwrap();
                let k = x.matmul(&wk).unwrap();
                q.matmul_nt(&k).unwrap()
            })
        });
    }
    group.finish();
}

fn quantized_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantized_gemm");
    let mut rng = SeededRng::new(3);
    let a = rng.normal_matrix(256, 64, 1.0);
    let b_mat = rng.normal_matrix(256, 64, 1.0);
    for precision in [Precision::Int8, Precision::Int4] {
        let qa = Quantizer::symmetric(precision).quantize(&a);
        let qb = Quantizer::symmetric(precision).quantize(&b_mat);
        group.bench_function(
            BenchmarkId::new("matmul_nt", precision.to_string()),
            |bch| bch.iter(|| qa.matmul_nt_dequant(&qb).unwrap()),
        );
    }
    group.bench_function("f32_reference", |bch| {
        bch.iter(|| a.matmul_nt(&b_mat).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = attention_forward, detector_estimate, quantized_gemm
}
criterion_main!(benches);
