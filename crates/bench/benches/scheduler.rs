//! Criterion benches of the locality-aware Scheduler (Algorithm 1) against
//! the in-order dataflow, across selection sizes and localities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dota_accel::sched;
use dota_accel::synth::{sample_selection, SelectionProfile};
use dota_tensor::rng::SeededRng;

fn schedule_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    for &(n, k) in &[(256usize, 26usize), (1024, 102)] {
        let mut rng = SeededRng::new(7);
        let sel = sample_selection(n, k, &SelectionProfile::default(), &mut rng);
        group.bench_with_input(
            BenchmarkId::new("out_of_order", format!("{n}x{k}")),
            &sel,
            |b, sel| b.iter(|| sched::schedule_matrix(sel, 4, true).total_loads()),
        );
        group.bench_with_input(
            BenchmarkId::new("in_order", format!("{n}x{k}")),
            &sel,
            |b, sel| b.iter(|| sched::schedule_matrix(sel, 4, false).total_loads()),
        );
    }
    group.finish();
}

fn parallelism_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_parallelism");
    let mut rng = SeededRng::new(8);
    let sel = sample_selection(512, 51, &SelectionProfile::default(), &mut rng);
    for t in [2usize, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| sched::schedule_matrix(&sel, t, true).total_loads())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = schedule_benchmarks, parallelism_scaling
}
criterion_main!(benches);
