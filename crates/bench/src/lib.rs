//! Shared helpers for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the index). Results print as aligned text tables
//! and are also written as JSON under `results/` so `EXPERIMENTS.md` can
//! reference exact numbers.

#![deny(missing_docs)]

use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Writes `value` as pretty JSON to `results/<name>.json` (relative to the
/// workspace root), creating the directory if needed. Prints the path.
///
/// # Panics
///
/// Panics if serialization or the write fails — the bench binaries treat
/// result persistence as essential.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize results");
    std::fs::write(&path, json).expect("write results file");
    println!("\n[results written to {}]", path.display());
}

/// The `results/` directory at the workspace root.
fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

/// Runs `f` over every sweep point, fanning independent points out across
/// the thread pool, and collects the results **in input order** — the
/// output is byte-for-byte the same as a serial `points.iter().map(f)`
/// loop, regardless of thread count (cap the pool with `DOTA_THREADS`).
///
/// The figure binaries sweep grids of independent (configuration,
/// sequence-length) points; each point is pure compute, so they
/// parallelize trivially. Per-point results must not depend on shared
/// mutable state or on the order points complete in.
pub fn run_sweep<T, R, F>(points: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    dota_parallel::par_map(points, |_, p| f(p))
}

/// Observability binding for a figure binary: honours `--trace <path>` /
/// `--counters <path>` / `--hists <path>` / `--profile <dir>` CLI flags
/// (or the `DOTA_TRACE` / `DOTA_COUNTERS` / `DOTA_HISTS` / `DOTA_PROF`
/// environment variables), opening an exclusive [`dota_trace`] session
/// (and, for `--hists`, a [`dota_metrics`] histogram session; for
/// `--profile`, a [`dota_prof`] session) when requested and writing the
/// files when dropped.
///
/// Hold the returned value for the whole `main`; when neither flag nor
/// variable is set this is a no-op and tracing stays disabled. Binaries
/// that open their own internal `dota_trace` sessions (e.g. the counter
/// scenarios) must **not** also hold a trace-session `Observability` —
/// sessions are exclusive and the inner `session()` call would deadlock.
/// Profiling sessions live on an independent gate, so those binaries can
/// still use [`Observability::profile_only`].
pub struct Observability {
    guard: Option<dota_trace::TraceGuard>,
    hist_guard: Option<dota_metrics::HistGuard>,
    prof_guard: Option<dota_prof::ProfGuard>,
    trace: Option<PathBuf>,
    counters: Option<PathBuf>,
    hists: Option<PathBuf>,
    profile: Option<PathBuf>,
}

/// The `--profile` flag or `DOTA_PROF` variable, if set. Public for
/// binaries that manage their own [`dota_prof`] session (e.g.
/// `bench_report`, which profiles unconditionally for its allocation
/// columns) and only need to know where to write the files.
pub fn profile_request() -> Option<PathBuf> {
    env_or_flag("--profile", "DOTA_PROF")
}

/// A CLI `--flag value` pair, falling back to an environment variable.
fn env_or_flag(flag_name: &str, var: &str) -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag_name)
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var(var).ok())
        .map(PathBuf::from)
}

impl Observability {
    /// Reads the flags/environment and, if observability was requested,
    /// starts a trace session labelled `label`.
    pub fn from_env(label: &str) -> Self {
        let trace = env_or_flag("--trace", "DOTA_TRACE");
        let counters = env_or_flag("--counters", "DOTA_COUNTERS");
        let hists = env_or_flag("--hists", "DOTA_HISTS");
        let profile = profile_request();
        let guard = (trace.is_some() || counters.is_some()).then(|| dota_trace::session(label));
        let hist_guard = hists.is_some().then(|| dota_metrics::hist_session(label));
        let prof_guard = profile.is_some().then(|| dota_prof::session(label));
        Self {
            guard,
            hist_guard,
            prof_guard,
            trace,
            counters,
            hists,
            profile,
        }
    }

    /// Profiling-only binding for binaries that run their own exclusive
    /// trace sessions internally ([`counter_scenarios`]) and therefore
    /// must not hold a trace-session `Observability`. Honours only
    /// `--profile` / `DOTA_PROF` — the profiling gate is independent of
    /// the trace gate, so the internal sessions still open fine.
    pub fn profile_only(label: &str) -> Self {
        let profile = profile_request();
        let prof_guard = profile.is_some().then(|| dota_prof::session(label));
        Self {
            guard: None,
            hist_guard: None,
            prof_guard,
            trace: None,
            counters: None,
            hists: None,
            profile,
        }
    }
}

impl Drop for Observability {
    fn drop(&mut self) {
        if let (Some(guard), Some(dir)) = (self.prof_guard.take(), &self.profile) {
            let write = std::fs::create_dir_all(dir)
                .and_then(|()| guard.write_folded(&dir.join("profile.folded")))
                .and_then(|()| guard.write_profile(&dir.join("profile.json")));
            match write {
                Ok(()) => eprintln!("[profile written to {}]", dir.display()),
                Err(e) => eprintln!("[profile write to {} failed: {e}]", dir.display()),
            }
        }
        if let (Some(guard), Some(p)) = (self.hist_guard.take(), &self.hists) {
            match guard.write_summary(p) {
                Ok(()) => eprintln!("[histograms written to {}]", p.display()),
                Err(e) => eprintln!("[histogram write to {} failed: {e}]", p.display()),
            }
        }
        let Some(guard) = self.guard.take() else {
            return;
        };
        if let Some(p) = &self.trace {
            match guard.write_trace(p) {
                Ok(()) => eprintln!("[trace written to {}]", p.display()),
                Err(e) => eprintln!("[trace write to {} failed: {e}]", p.display()),
            }
        }
        if let Some(p) = &self.counters {
            match guard.write_counters(p) {
                Ok(()) => eprintln!("[counters written to {}]", p.display()),
                Err(e) => eprintln!("[counters write to {} failed: {e}]", p.display()),
            }
        }
    }
}

/// Combined observability + provenance initialization for a figure binary:
/// one call replaces the copy-pasted
/// `Observability::from_env` + `run_manifest` pair. Hold the returned
/// value for the whole `main`:
///
/// ```no_run
/// let mut obs = dota_bench::obs_init("fig03_flops");
/// obs.seed(7);
/// // ... the run ...
/// ```
///
/// Binaries that open internal trace sessions must keep using
/// [`run_manifest`] (plus [`Observability::profile_only`]) instead.
pub struct ObsInit {
    // Field order is load-bearing: fields drop in declaration order, so
    // the manifest finalizes first — capturing the counter snapshot while
    // the trace session is still live — and the Observability writes its
    // files after.
    manifest: ManifestGuard,
    _obs: Observability,
}

/// Starts sessions (from flags/environment) and the provenance manifest
/// for one bench binary — see [`ObsInit`].
pub fn obs_init(label: &str) -> ObsInit {
    let obs = Observability::from_env(label);
    ObsInit {
        manifest: run_manifest(label),
        _obs: obs,
    }
}

impl ObsInit {
    /// Records the run's top-level RNG seed in the manifest.
    pub fn seed(&mut self, seed: u64) {
        self.manifest.seed(seed);
    }

    /// Records one manifest configuration knob.
    pub fn config(&mut self, key: &str, value: impl ToString) {
        self.manifest.config(key, value);
    }
}

/// Provenance manifest for a bench/figure run, finalized and written to
/// `results/<label>.manifest.json` when dropped.
///
/// Declare it in `main` **after** any [`Observability`] binding: guards
/// drop in reverse declaration order, so the manifest finalizes (and
/// captures the live counter snapshot) while the trace session is still
/// recording. The `parallel` feature flag, `DOTA_THREADS` budget, git sha,
/// host and wall clock are collected automatically; seed and config knobs
/// are recorded via [`ManifestGuard::seed`] / [`ManifestGuard::config`].
pub struct ManifestGuard {
    manifest: dota_metrics::Manifest,
    started: std::time::Instant,
}

/// Starts the provenance record for one bench binary — see
/// [`ManifestGuard`].
pub fn run_manifest(label: &str) -> ManifestGuard {
    let mut manifest = dota_metrics::Manifest::collect(label);
    if cfg!(feature = "parallel") {
        manifest = manifest.with_feature("parallel");
    }
    ManifestGuard {
        manifest,
        started: std::time::Instant::now(),
    }
}

impl ManifestGuard {
    /// Records the run's top-level RNG seed.
    pub fn seed(&mut self, seed: u64) {
        self.manifest.seed = Some(seed);
    }

    /// Records one configuration knob (retention grid, sequence lengths,
    /// sample counts, …).
    pub fn config(&mut self, key: &str, value: impl ToString) {
        self.manifest
            .config
            .insert(key.to_owned(), value.to_string());
    }
}

impl Drop for ManifestGuard {
    fn drop(&mut self) {
        if dota_trace::enabled() {
            self.manifest.counters = dota_trace::counters_snapshot();
        }
        self.manifest.wall_clock_secs = self.started.elapsed().as_secs_f64();
        let dir = results_dir();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("[manifest dir {} failed: {e}]", dir.display());
            return;
        }
        let path = dir.join(format!("{}.manifest.json", self.manifest.label));
        match self.manifest.write(&path) {
            Ok(()) => eprintln!("[manifest written to {}]", path.display()),
            Err(e) => eprintln!("[manifest write to {} failed: {e}]", path.display()),
        }
    }
}

/// The deterministic counter scenarios shared by `bench_report` (counter
/// summary section) and `counters_baseline` (regression check against the
/// committed baseline).
///
/// Each scenario runs inside its own exclusive [`dota_trace`] session and
/// returns its full counter snapshot. Every input is seeded and every
/// counter is a `u64` sum, so the snapshots are bit-identical across runs,
/// `DOTA_THREADS` values, and the `parallel` feature.
pub fn counter_scenarios() -> Vec<(String, BTreeMap<String, u64>)> {
    use dota_accel::{sched, synth, AccelConfig, Accelerator};
    use dota_transformer::TransformerConfig;

    let mut out = Vec::new();

    // 1. The paper's Fig. 8 working example: row-by-row (10 loads) vs
    //    in-order token-parallel scheduling (5 loads).
    {
        let guard = dota_trace::session("sched_fig8");
        let fig8: Vec<Vec<u32>> = vec![vec![1, 2], vec![0, 1, 4], vec![1, 2], vec![0, 2, 4]];
        let _ = sched::row_by_row_loads(&fig8);
        let _ = sched::in_order_schedule(&fig8);
        out.push(("sched_fig8".to_owned(), guard.counters()));
    }

    // 2. The paper's Fig. 9/10 working example: in-order (11 loads) vs
    //    out-of-order scheduling (7 loads) of the same detected pattern.
    {
        let guard = dota_trace::session("sched_fig9");
        let fig9: Vec<Vec<u32>> = vec![vec![0, 1, 2], vec![1, 2, 3], vec![1, 4, 5], vec![2, 3, 4]];
        let _ = sched::row_by_row_loads(&fig9);
        let _ = sched::in_order_schedule(&fig9);
        let _ = sched::locality_aware_schedule(&fig9);
        out.push(("sched_fig9".to_owned(), guard.counters()));
    }

    // 3. Analytic full-model simulation on a small shape.
    {
        let guard = dota_trace::session("simulate_shape_small");
        let model = TransformerConfig::tiny(128, 64, 2);
        let accel = Accelerator::new(AccelConfig::default());
        let _ = accel.simulate_shape(&model, 128, 0.25, 0.25, &synth::SelectionProfile::default());
        out.push(("simulate_shape_small".to_owned(), guard.counters()));
    }

    // 4. Incremental decoding on a small prompt/generation budget.
    {
        let guard = dota_trace::session("simulate_decode_small");
        let model = TransformerConfig::tiny_causal(64, 64);
        let _ =
            dota_accel::decode::simulate_decode(&AccelConfig::default(), &model, 32, 8, 0.25, 0.25);
        out.push(("simulate_decode_small".to_owned(), guard.counters()));
    }

    // 5. End-to-end: tiny model + quantized detector inference, replayed
    //    through the cycle simulator. Exercises the detector, per-head
    //    attention counters and the trace-replay path together.
    {
        let guard = dota_trace::session("tiny_infer_replay");
        let mut params = dota_autograd::ParamSet::new();
        let model =
            dota_transformer::Model::init(TransformerConfig::tiny(16, 8, 2), &mut params, 11);
        let hook = dota_detector::DotaHook::init(
            dota_detector::DetectorConfig::new(0.25),
            model.config(),
            &mut params,
        );
        let ids = vec![1usize, 2, 3, 4, 5, 6, 7, 0, 1, 2, 3, 4, 5, 6, 7, 0];
        let trace = model.infer(&params, &ids, &hook.inference(&params));
        let accel = Accelerator::new(AccelConfig::default());
        let _ = accel.simulate_trace(model.config(), &trace);
        out.push(("tiny_infer_replay".to_owned(), guard.counters()));
    }

    out
}

/// Formats a ratio as `x.x×`.
pub fn times(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else {
        format!("{x:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_formats() {
        assert_eq!(times(4.52), "4.5x");
        assert_eq!(times(152.6), "153x");
    }

    #[test]
    fn results_dir_ends_with_results() {
        assert!(results_dir().ends_with("results"));
    }

    #[test]
    fn counter_scenarios_are_deterministic() {
        let a = counter_scenarios();
        let b = counter_scenarios();
        assert_eq!(a, b, "scenario counters must be bit-identical run-to-run");
        assert_eq!(a.len(), 5);
        for (name, counters) in &a {
            assert!(!counters.is_empty(), "scenario {name} recorded no counters");
        }
        // Spot-check the paper-figure pins: Fig. 8 (10 row-by-row vs 5
        // in-order) and Fig. 9 (11 in-order vs 7 out-of-order).
        let fig8 = &a[0].1;
        assert_eq!(fig8["sched.row_by_row.loads"], 10);
        assert_eq!(fig8["sched.in_order.loads"], 5);
        let fig9 = &a[1].1;
        assert_eq!(fig9["sched.in_order.loads"], 11);
        assert_eq!(fig9["sched.ooo.loads"], 7);
    }

    #[test]
    fn run_sweep_preserves_input_order() {
        let points: Vec<usize> = (0..64).collect();
        let got = run_sweep(&points, |&p| p * p);
        let want: Vec<usize> = points.iter().map(|&p| p * p).collect();
        assert_eq!(got, want);
    }
}
