//! Shared helpers for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the index). Results print as aligned text tables
//! and are also written as JSON under `results/` so `EXPERIMENTS.md` can
//! reference exact numbers.

#![deny(missing_docs)]

use serde::Serialize;
use std::path::PathBuf;

/// Writes `value` as pretty JSON to `results/<name>.json` (relative to the
/// workspace root), creating the directory if needed. Prints the path.
///
/// # Panics
///
/// Panics if serialization or the write fails — the bench binaries treat
/// result persistence as essential.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize results");
    std::fs::write(&path, json).expect("write results file");
    println!("\n[results written to {}]", path.display());
}

/// The `results/` directory at the workspace root.
fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

/// Runs `f` over every sweep point, fanning independent points out across
/// the thread pool, and collects the results **in input order** — the
/// output is byte-for-byte the same as a serial `points.iter().map(f)`
/// loop, regardless of thread count (cap the pool with `DOTA_THREADS`).
///
/// The figure binaries sweep grids of independent (configuration,
/// sequence-length) points; each point is pure compute, so they
/// parallelize trivially. Per-point results must not depend on shared
/// mutable state or on the order points complete in.
pub fn run_sweep<T, R, F>(points: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    dota_parallel::par_map(points, |_, p| f(p))
}

/// Formats a ratio as `x.x×`.
pub fn times(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else {
        format!("{x:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_formats() {
        assert_eq!(times(4.52), "4.5x");
        assert_eq!(times(152.6), "153x");
    }

    #[test]
    fn results_dir_ends_with_results() {
        assert!(results_dir().ends_with("results"));
    }

    #[test]
    fn run_sweep_preserves_input_order() {
        let points: Vec<usize> = (0..64).collect();
        let got = run_sweep(&points, |&p| p * p);
        let want: Vec<usize> = points.iter().map(|&p| p * p).collect();
        assert_eq!(got, want);
    }
}
