//! Table 1: model quality when omitting attention connections with
//! post-hoc row-wise top-k (the oracle experiment that motivates DOTA).
//!
//! The paper runs BERT-large on SQuAD and reports F1 at retentions
//! {full, 20%, 15%, 10%, 5%}. Here the substitution is the synthetic QA
//! task (see DESIGN.md): a model is trained densely, then evaluated with
//! oracle top-k masks at each retention with no re-training — exactly the
//! paper's protocol.
//!
//! Run with: `cargo run --release -p dota-bench --bin table1_retention`

use dota_core::experiments::{self, TrainOptions};
use dota_detector::oracle::OracleHook;
use dota_transformer::NoHook;
use dota_workloads::{Benchmark, TaskSpec};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    retention: f64,
    accuracy: f64,
    f1: f64,
}

fn main() {
    // Honours --trace/--counters/--hists (or the DOTA_* env vars); no-op otherwise.
    let _obs = dota_bench::obs_init("table1_retention");
    let spec = TaskSpec::tiny(Benchmark::Qa, 24, 1234);
    let (train, test) = spec.generate_split(600, 200);
    let (model, mut params) = experiments::build_model(&spec, 1234);
    println!("Training QA model densely (seq 24, 600 samples)...");
    experiments::train_dense(
        &model,
        &mut params,
        &train,
        &TrainOptions {
            epochs: 30,
            lr_warmup_steps: 600,
            // The lookup task generalizes after the loss floor is reached;
            // early stopping would freeze it at the memorization point.
            early_stop_loss: 0.0,
            ..Default::default()
        },
    );

    let mut rows = Vec::new();
    let dense_acc = experiments::eval_accuracy(&model, &params, &test, &NoHook);
    let dense_f1 = experiments::eval_f1(&model, &params, &test, &NoHook);
    rows.push(Row {
        retention: 1.0,
        accuracy: dense_acc,
        f1: dense_f1,
    });
    let retentions = [0.20, 0.15, 0.10, 0.05];
    rows.extend(dota_bench::run_sweep(&retentions, |&retention| {
        let hook = OracleHook::from_model(&model, &params, retention);
        Row {
            retention,
            accuracy: experiments::eval_accuracy(&model, &params, &test, &hook),
            f1: experiments::eval_f1(&model, &params, &test, &hook),
        }
    }));

    println!("\nTable 1: QA quality vs oracle top-k retention\n");
    println!("{:>10} {:>10} {:>10}", "retention", "accuracy", "macro-F1");
    for r in &rows {
        let label = if r.retention == 1.0 {
            "full".to_owned()
        } else {
            format!("{:.0}%", r.retention * 100.0)
        };
        println!("{label:>10} {:>10.3} {:>10.3}", r.accuracy, r.f1);
    }
    println!("\nPaper shape: quality flat from full down to ~10%, dropping at 5%.");

    dota_bench::write_json("table1_retention", &rows);
}
