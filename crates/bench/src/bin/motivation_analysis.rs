//! Motivation analysis (paper §2.2, Fig. 1): trained attention rows are
//! concentrated — a handful of connections carry nearly all probability
//! mass — which is what makes detect-and-omit possible at all.
//!
//! Trains a model on the QA lookup benchmark (whose solution demands a
//! precise attention edge), then measures entropy, top-k mass capture and
//! effective connection counts of its real attention matrices, compared
//! against an untrained model of the same shape.
//!
//! Run with: `cargo run --release -p dota-bench --bin motivation_analysis`

use dota_core::experiments::{self, TrainOptions};
use dota_tensor::{ops, Matrix};
use dota_transformer::NoHook;
use dota_workloads::analysis::{attention_stats, mass_at_retention};
use dota_workloads::{Benchmark, TaskSpec};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    layer: usize,
    head: usize,
    entropy: f64,
    effective_connections: f64,
    top10pct_mass: f64,
    mass_at_10pct: f64,
    mass_at_25pct: f64,
}

fn main() {
    // Honours --trace/--counters/--hists (or the DOTA_* env vars); no-op otherwise.
    let _obs = dota_bench::obs_init("motivation_analysis");
    let spec = TaskSpec::tiny(Benchmark::Qa, 24, 2024);
    let (train, test) = spec.generate_split(500, 20);
    let (model, mut params) = experiments::build_model(&spec, 2024);
    let (untrained_model, untrained_params) = experiments::build_model(&spec, 2024);
    println!("Training QA model (seq 24)...");
    experiments::train_dense(
        &model,
        &mut params,
        &train,
        &TrainOptions {
            epochs: 25,
            lr_warmup_steps: 600,
            ..Default::default()
        },
    );

    let mut rows = Vec::new();
    println!(
        "\n{:<10} {:>5} {:>5} {:>9} {:>10} {:>10} {:>10}",
        "model", "layer", "head", "entropy", "eff conns", "mass@10%", "mass@25%"
    );
    for (name, m, p) in [
        ("untrained", &untrained_model, &untrained_params),
        ("trained", &model, &params),
    ] {
        for sample in test.iter().take(5) {
            let trace = m.infer(p, &sample.ids, &NoHook);
            let hd = m.config().head_dim();
            let scale = 1.0 / (hd as f32).sqrt();
            for (l, layer) in trace.layers.iter().enumerate() {
                for (h, head) in layer.heads.iter().enumerate() {
                    let attn: Matrix =
                        ops::softmax_rows(&head.q.matmul_nt(&head.k).expect("shape").scale(scale));
                    let s = attention_stats(&attn);
                    rows.push(Row {
                        model: name.to_owned(),
                        layer: l,
                        head: h,
                        entropy: s.mean_entropy,
                        effective_connections: s.effective_connections,
                        top10pct_mass: s.top10pct_mass,
                        mass_at_10pct: mass_at_retention(&attn, 0.10),
                        mass_at_25pct: mass_at_retention(&attn, 0.25),
                    });
                }
            }
        }
    }
    // Aggregate per model.
    for name in ["untrained", "trained"] {
        let subset: Vec<&Row> = rows.iter().filter(|r| r.model == name).collect();
        let mean = |f: &dyn Fn(&Row) -> f64| {
            subset.iter().map(|r| f(r)).sum::<f64>() / subset.len() as f64
        };
        println!(
            "{:<10} {:>5} {:>5} {:>9.3} {:>10.2} {:>10.3} {:>10.3}",
            name,
            "-",
            "-",
            mean(&|r| r.entropy),
            mean(&|r| r.effective_connections),
            mean(&|r| r.mass_at_10pct),
            mean(&|r| r.mass_at_25pct),
        );
    }
    println!("\nPaper shape: training concentrates attention — entropy and effective");
    println!("connection counts drop, and the strongest 10-25% of edges capture most");
    println!("of the mass, so the rest can be detected and omitted.");

    dota_bench::write_json("motivation_analysis", &rows);
}
