//! Extension experiment: per-layer retention schedules.
//!
//! §5.5 shows each benchmark tolerates its own σ; the same freedom exists
//! per *layer* — early layers often build local structure (cheap to prune)
//! while late layers route the long-range signal (or vice versa). This
//! study compares, at equal *average* retention, a uniform schedule against
//! front-loaded (generous early) and back-loaded (generous late) schedules
//! on the QA lookup task.
//!
//! Run with: `cargo run --release -p dota-bench --bin ext_layer_retention`

use dota_core::experiments::{BenchmarkRun, Method, TrainOptions};
use dota_detector::DetectorConfig;
use dota_workloads::Benchmark;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    schedule: String,
    layer_retentions: Vec<f64>,
    accuracy: f64,
    achieved_retention: f64,
}

fn main() {
    // Honours --trace/--counters/--hists (or the DOTA_* env vars); no-op otherwise.
    let _obs = dota_bench::obs_init("ext_layer_retention");
    let mean_retention = 0.25;
    let schedules: Vec<(&str, Vec<f64>)> = vec![
        ("uniform", vec![0.25, 0.25]),
        ("front-loaded", vec![0.40, 0.10]),
        ("back-loaded", vec![0.10, 0.40]),
    ];
    println!(
        "Per-layer retention schedules on QA (seq 24), mean retention {:.0}%\n",
        mean_retention * 100.0
    );
    println!(
        "{:<14} {:>16} {:>10} {:>10}",
        "schedule", "per-layer", "accuracy", "achieved"
    );

    let opts = TrainOptions {
        epochs: 20,
        warmup_epochs: 4,
        lr_warmup_steps: 600,
        ..Default::default()
    };
    let mut rows = Vec::new();
    for (name, layers) in schedules {
        let cfg = DetectorConfig::new(mean_retention)
            .with_sigma(0.5)
            .with_layer_retentions(layers.clone());
        let run =
            BenchmarkRun::train(Benchmark::Qa, 24, 400, 100, cfg, &opts, 5).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1)
            });
        let point = run.evaluate(Method::Dota, mean_retention, 1);
        // Measure the achieved overall retention from a real trace.
        let sample = &run.test.samples()[0];
        let trace = run.model.infer(
            &run.dota_params,
            &sample.ids,
            &run.hook.inference(&run.dota_params),
        );
        let per: Vec<String> = layers
            .iter()
            .map(|r| format!("{:.0}%", r * 100.0))
            .collect();
        println!(
            "{name:<14} {:>16} {:>10.3} {:>9.1}%",
            per.join("/"),
            point.accuracy,
            trace.retention() * 100.0
        );
        rows.push(Row {
            schedule: name.to_owned(),
            layer_retentions: layers,
            accuracy: point.accuracy,
            achieved_retention: trace.retention(),
        });
    }
    println!("\nAt equal average retention, where the budget goes matters: the QA");
    println!("lookup edge lives in a specific layer, so starving that layer hurts");
    println!("while starving the other is nearly free.");

    dota_bench::write_json("ext_layer_retention", &rows);
}
