//! Figure 12: (a) attention-block speedup over GPU and ELSA, (b) end-to-end
//! speedup over GPU with the Amdahl upper bound, and (c) the normalized
//! latency breakdown of DOTA-F/C/A.
//!
//! Run with: `cargo run --release -p dota-bench --bin fig12_speedup`

use dota_core::presets::OperatingPoint;
use dota_core::{DotaSystem, SpeedupRow};
use dota_workloads::Benchmark;

fn geomean(xs: &[f64]) -> f64 {
    f64::exp(xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len().max(1) as f64)
}

fn main() {
    // Honours --trace/--counters (or DOTA_TRACE/DOTA_COUNTERS); no-op otherwise.
    let _obs = dota_bench::obs_init("fig12_speedup");
    let system = DotaSystem::paper_default();

    // One sweep over the full benchmark x operating-point grid; the 12a/12b
    // table reads the Conservative/Aggressive rows, 12c reads all three
    // variants. Points are independent, so `run_sweep` fans them out.
    let grid: Vec<(Benchmark, OperatingPoint)> = Benchmark::ALL
        .iter()
        .flat_map(|&b| OperatingPoint::ALL.iter().map(move |&p| (b, p)))
        .collect();
    let all_rows = dota_bench::run_sweep(&grid, |&(b, p)| system.speedup_row(b, p));

    let rows: Vec<SpeedupRow> = grid
        .iter()
        .zip(&all_rows)
        .filter(|((_, p), _)| {
            matches!(p, OperatingPoint::Conservative | OperatingPoint::Aggressive)
        })
        .map(|(_, row)| row.clone())
        .collect();

    println!("Figure 12a/12b: speedups at paper scale (12 TOPS build vs V100, ELSA)\n");
    println!(
        "{:>10} {:>8} {:>9} {:>12} {:>13} {:>9} {:>11}",
        "benchmark",
        "variant",
        "retention",
        "attn vs GPU",
        "attn vs ELSA",
        "e2e GPU",
        "upper bound"
    );
    for row in &rows {
        println!(
            "{:>10} {:>8} {:>8.1}% {:>11.1}x {:>12.1}x {:>8.1}x {:>10.1}x",
            row.benchmark,
            row.variant,
            row.retention * 100.0,
            row.attention_vs_gpu,
            row.attention_vs_elsa,
            row.end_to_end_vs_gpu,
            row.upper_bound_vs_gpu
        );
    }

    let c_rows: Vec<&SpeedupRow> = rows.iter().filter(|r| r.variant == "DOTA-C").collect();
    let a_rows: Vec<&SpeedupRow> = rows.iter().filter(|r| r.variant == "DOTA-A").collect();
    println!("\naverages (geomean):");
    println!(
        "  DOTA-C: attention {:.1}x vs GPU, {:.1}x vs ELSA; end-to-end {:.1}x vs GPU",
        geomean(
            &c_rows
                .iter()
                .map(|r| r.attention_vs_gpu)
                .collect::<Vec<_>>()
        ),
        geomean(
            &c_rows
                .iter()
                .map(|r| r.attention_vs_elsa)
                .collect::<Vec<_>>()
        ),
        geomean(
            &c_rows
                .iter()
                .map(|r| r.end_to_end_vs_gpu)
                .collect::<Vec<_>>()
        ),
    );
    println!(
        "  DOTA-A: attention {:.1}x vs GPU, {:.1}x vs ELSA; end-to-end {:.1}x vs GPU",
        geomean(
            &a_rows
                .iter()
                .map(|r| r.attention_vs_gpu)
                .collect::<Vec<_>>()
        ),
        geomean(
            &a_rows
                .iter()
                .map(|r| r.attention_vs_elsa)
                .collect::<Vec<_>>()
        ),
        geomean(
            &a_rows
                .iter()
                .map(|r| r.end_to_end_vs_gpu)
                .collect::<Vec<_>>()
        ),
    );
    println!("  (paper: DOTA-C 152.6x attention / 9.2x end-to-end vs GPU; 4.5x vs ELSA)");

    println!("\nFigure 12c: normalized latency breakdown");
    println!(
        "{:>10} {:>8} {:>8} {:>10} {:>10}",
        "benchmark", "variant", "linear", "attention", "detection"
    );
    for row in &all_rows {
        let lb = row.latency_breakdown;
        println!(
            "{:>10} {:>8} {:>7.1}% {:>9.1}% {:>9.2}%",
            row.benchmark,
            row.variant,
            lb.linear * 100.0,
            lb.attention * 100.0,
            lb.detection * 100.0
        );
    }
    println!("\nPaper shape: with detection on, attention shrinks from the dominant");
    println!("share (DOTA-F) to a minority, detection stays small, and the linear");
    println!("stages become the new bottleneck.");

    dota_bench::write_json("fig12_speedup", &rows);
}
