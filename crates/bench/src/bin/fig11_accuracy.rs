//! Figure 11: model quality of DOTA vs the dense baseline and ELSA across
//! retention ratios, on all five benchmarks.
//!
//! For each benchmark a model is trained densely on the synthetic task,
//! then jointly fine-tuned with the DOTA detector at each retention
//! (model adaptation, §3.2). ELSA evaluates training-free on the dense
//! model at the same retention, reproducing the comparison's structure.
//! The LM benchmark reports perplexity (lower is better) plus copy-recall
//! accuracy; the others report accuracy.
//!
//! Run with: `cargo run --release -p dota-bench --bin fig11_accuracy`

use dota_core::experiments::{BenchmarkRun, Method, TrainOptions};
use dota_detector::DetectorConfig;
use dota_workloads::Benchmark;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    benchmark: String,
    retention: f64,
    method: String,
    accuracy: f64,
    perplexity: Option<f64>,
}

fn options_for(benchmark: Benchmark) -> (usize, TrainOptions) {
    match benchmark {
        // Streaming regime (see tests/end_to_end.rs).
        Benchmark::Lm => (
            400,
            TrainOptions {
                epochs: 8,
                warmup_epochs: 2,
                ..Default::default()
            },
        ),
        // Cross-document lookup converges more slowly.
        Benchmark::Retrieval => (
            500,
            TrainOptions {
                epochs: 30,
                warmup_epochs: 4,
                lr_warmup_steps: 600,
                early_stop_loss: 0.0,
                ..Default::default()
            },
        ),
        _ => (
            400,
            TrainOptions {
                epochs: 20,
                warmup_epochs: 4,
                lr_warmup_steps: 600,
                ..Default::default()
            },
        ),
    }
}

fn main() {
    // Honours --trace/--counters/--hists (or the DOTA_* env vars); no-op otherwise.
    let _obs = dota_bench::obs_init("fig11_accuracy");
    // The tiny models use head_dim 16; sigma 0.5 keeps the detector rank
    // proportionate (rank 8) as in the paper's sigma sweep.
    let retentions = [0.50, 0.25, 0.125];
    let seq_len = 24;
    let mut points = Vec::new();

    for benchmark in Benchmark::ALL {
        let (samples, opts) = options_for(benchmark);
        println!("== {} (seq {seq_len}) ==", benchmark.name());
        println!(
            "{:>10} {:>8} {:>8} {:>8} {:>8}",
            "retention", "dense", "DOTA", "ELSA", "random"
        );
        // Each retention trains and evaluates its own model — fully
        // independent, so the sweep fans them out across the pool.
        let per_retention = dota_bench::run_sweep(&retentions, |&r| {
            let run = BenchmarkRun::train(
                benchmark,
                seq_len,
                samples,
                100,
                DetectorConfig::new(r).with_sigma(0.5),
                &opts,
                5,
            )
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1)
            });
            let dense = run.evaluate(Method::Dense, 1.0, 1);
            let dota = run.evaluate(Method::Dota, r, 1);
            let elsa = run.evaluate(Method::Elsa, r, 1);
            let random = run.evaluate(Method::Random, r, 1);
            (r, dense, dota, elsa, random)
        });
        for (r, dense, dota, elsa, random) in &per_retention {
            println!(
                "{:>9.1}% {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                r * 100.0,
                dense.accuracy,
                dota.accuracy,
                elsa.accuracy,
                random.accuracy
            );
            for (name, p) in [
                ("dense", dense),
                ("dota", dota),
                ("elsa", elsa),
                ("random", random),
            ] {
                points.push(Point {
                    benchmark: benchmark.name().to_owned(),
                    retention: p.retention,
                    method: name.to_owned(),
                    accuracy: p.accuracy,
                    perplexity: p.perplexity,
                });
            }
        }
        println!();
    }

    println!("Paper shape: DOTA tracks the dense baseline down to small retentions");
    println!("while training-free selection (ELSA) degrades, and random collapses.");
    dota_bench::write_json("fig11_accuracy", &points);
}
