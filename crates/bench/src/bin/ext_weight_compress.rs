//! Extension experiment (paper §5.3): once detection removes the attention
//! cost, the linear stages dominate — and "classic NN optimization
//! techniques can be fluently transplanted on DOTA" because the RMMU
//! already supports multi-precision GEMM.
//!
//! Two parts:
//! 1. accuracy of post-training weight quantization and magnitude pruning
//!    on a trained QA model (the transplant is accuracy-neutral at INT8
//!    and moderate sparsity; INT2 shows the cliff);
//! 2. simulated end-to-end latency with the linear stages reconfigured to
//!    INT8 on the RMMU, stacked on top of DOTA-C attention detection.
//!
//! Run with: `cargo run --release -p dota-bench --bin ext_weight_compress`

use dota_accel::synth::SelectionProfile;
use dota_accel::{AccelConfig, Accelerator};
use dota_core::compress::{fake_quantize_weights, prune_weights};
use dota_core::experiments::{self, TrainOptions};
use dota_core::presets;
use dota_quant::Precision;
use dota_transformer::NoHook;
use dota_workloads::{Benchmark, TaskSpec};
use serde::Serialize;

#[derive(Serialize)]
struct Results {
    baseline_accuracy: f64,
    quantized_accuracy: Vec<(String, f64)>,
    pruned_accuracy: Vec<(f64, f64)>,
    e2e_speedup_int8_linear: f64,
}

fn main() {
    // Honours --trace/--counters/--hists (or the DOTA_* env vars); no-op otherwise.
    let _obs = dota_bench::obs_init("ext_weight_compress");
    // --- Part 1: accuracy of the transplants. ---
    // QA's lookup structure is sensitive enough to expose the accuracy
    // cliff of over-aggressive compression (Text saturates at 100%).
    let spec = TaskSpec::tiny(Benchmark::Qa, 24, 1234);
    let (train, test) = spec.generate_split(600, 200);
    let (model, mut params) = experiments::build_model(&spec, 1234);
    println!("Training QA model (seq 24)...");
    experiments::train_dense(
        &model,
        &mut params,
        &train,
        &TrainOptions {
            epochs: 30,
            lr_warmup_steps: 600,
            early_stop_loss: 0.0,
            ..Default::default()
        },
    );
    let baseline = experiments::eval_accuracy(&model, &params, &test, &NoHook);
    println!("\nbaseline accuracy: {baseline:.3}\n");

    let mut results = Results {
        baseline_accuracy: baseline,
        quantized_accuracy: Vec::new(),
        pruned_accuracy: Vec::new(),
        e2e_speedup_int8_linear: 0.0,
    };

    println!("weight quantization (post-training):");
    for p in [Precision::Int8, Precision::Int4, Precision::Int2] {
        let mut q = params.clone();
        fake_quantize_weights(&model, &mut q, p);
        let acc = experiments::eval_accuracy(&model, &q, &test, &NoHook);
        println!("  {p}: accuracy {acc:.3}");
        results.quantized_accuracy.push((p.to_string(), acc));
    }

    println!("\nmagnitude pruning (global threshold):");
    for sparsity in [0.3, 0.5, 0.7] {
        let mut q = params.clone();
        let frac = prune_weights(&model, &mut q, sparsity);
        let acc = experiments::eval_accuracy(&model, &q, &test, &NoHook);
        println!("  {:.0}% zeroed: accuracy {acc:.3}", frac * 100.0);
        results.pruned_accuracy.push((frac, acc));
    }

    // --- Part 2: simulated latency with INT8 linear stages. ---
    let model_cfg = presets::paper_model(Benchmark::Text);
    let n = Benchmark::Text.paper_seq_len();
    let retention = presets::retention(Benchmark::Text, presets::OperatingPoint::Conservative);
    let prof = SelectionProfile::default();
    let fx = Accelerator::new(AccelConfig::gpu_comparable());
    let int8 = Accelerator::new(AccelConfig {
        linear_precision: Precision::Int8,
        ..AccelConfig::gpu_comparable()
    });
    let rep_fx = fx.simulate_shape(&model_cfg, n, retention, presets::SIGMA, &prof);
    let rep_int8 = int8.simulate_shape(&model_cfg, n, retention, presets::SIGMA, &prof);
    let speedup = rep_fx.cycles.total() as f64 / rep_int8.cycles.total() as f64;
    results.e2e_speedup_int8_linear = speedup;
    println!(
        "\nsimulated Text-2K end-to-end (DOTA-C detection already on):\n  \
         FX16 linear: {} cycles; INT8 linear: {} cycles -> {speedup:.2}x",
        rep_fx.cycles.total(),
        rep_int8.cycles.total()
    );
    println!("\nShape: INT8 weights are accuracy-neutral and, with attention already");
    println!("omitted, reconfiguring the RMMU's linear stages to INT8 attacks the");
    println!("new bottleneck the paper identifies in §5.3.");

    dota_bench::write_json("ext_weight_compress", &results);
}
