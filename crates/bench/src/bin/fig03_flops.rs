//! Figure 3: normalized FLOPs breakdown — attention vs other operations —
//! for BERT-large as sequence length scales from 384 to 16K.
//!
//! Run with: `cargo run --release -p dota-bench --bin fig03_flops`

use dota_transformer::flops;
use dota_transformer::TransformerConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    seq_len: usize,
    attention_fraction: f64,
    other_fraction: f64,
}

fn main() {
    // Honours --trace/--counters/--hists (or the DOTA_* env vars); no-op otherwise.
    let _obs = dota_bench::obs_init("fig03_flops");
    let cfg = TransformerConfig::bert_large(16_384);
    let seq_lens = [384usize, 512, 1024, 2048, 4096, 8192, 16_384];
    let rows: Vec<Row> = flops::fig3_sweep(&cfg, &seq_lens)
        .into_iter()
        .map(|r| Row {
            seq_len: r.seq_len,
            attention_fraction: r.attention_fraction,
            other_fraction: r.other_fraction,
        })
        .collect();

    println!("Figure 3: normalized FLOPs, attention vs other (BERT-large shape)\n");
    println!("{:>8} {:>12} {:>8}", "seq len", "attention", "other");
    for r in &rows {
        println!(
            "{:>8} {:>11.1}% {:>7.1}%",
            r.seq_len,
            r.attention_fraction * 100.0,
            r.other_fraction * 100.0
        );
    }
    println!("\nPaper shape: attention grows from a small share at 384 to the");
    println!("dominant share at 16K (quadratic vs linear scaling).");

    dota_bench::write_json("fig03_flops", &rows);
}
