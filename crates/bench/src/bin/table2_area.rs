//! Table 2: configuration, power and area of DOTA at 22nm / 1 GHz.
//!
//! Run with: `cargo run --release -p dota-bench --bin table2_area`

use dota_accel::energy;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    module: &'static str,
    configuration: &'static str,
    power_mw: f64,
    area_mm2: f64,
}

fn main() {
    // Honours --trace/--counters/--hists (or the DOTA_* env vars); no-op otherwise.
    let _obs = dota_bench::obs_init("table2_area");
    println!("Table 2: DOTA configuration, power and area (22nm, 1 GHz)\n");
    println!(
        "{:<18} {:<34} {:>10} {:>10}",
        "module", "configuration", "power mW", "area mm2"
    );
    let rows: Vec<Row> = energy::table2()
        .into_iter()
        .map(|m| Row {
            module: m.name,
            configuration: m.configuration,
            power_mw: m.power_mw,
            area_mm2: m.area_mm2,
        })
        .collect();
    for r in &rows {
        println!(
            "{:<18} {:<34} {:>10.2} {:>10.3}",
            r.module, r.configuration, r.power_mw, r.area_mm2
        );
    }
    println!(
        "\ntotal accelerator: {:.2} W, {:.3} mm2",
        energy::total_power_w(),
        energy::total_area_mm2()
    );
    println!(
        "derived per-op energies: FX16 MAC {:.2} pJ, SRAM {:.1} pJ/B, DRAM {:.0} pJ/B",
        energy::MAC_FX16_PJ,
        energy::SRAM_PJ_PER_BYTE,
        energy::DRAM_PJ_PER_BYTE
    );

    dota_bench::write_json("table2_area", &rows);
}
