//! Figure 13: energy-efficiency of DOTA-C/A relative to the GPU and ELSA.
//!
//! Run with: `cargo run --release -p dota-bench --bin fig13_energy`

use dota_core::presets::OperatingPoint;
use dota_core::{DotaSystem, EnergyRow};
use dota_workloads::Benchmark;

fn main() {
    // Honours --trace/--counters (or DOTA_TRACE/DOTA_COUNTERS); no-op otherwise.
    let _obs = dota_bench::obs_init("fig13_energy");
    let system = DotaSystem::paper_default();

    let grid: Vec<(Benchmark, OperatingPoint)> = Benchmark::ALL
        .iter()
        .flat_map(|&b| {
            [OperatingPoint::Conservative, OperatingPoint::Aggressive]
                .into_iter()
                .map(move |p| (b, p))
        })
        .collect();
    let rows: Vec<EnergyRow> = dota_bench::run_sweep(&grid, |&(b, p)| system.energy_row(b, p));

    println!("Figure 13: energy-efficiency improvements\n");
    println!(
        "{:>10} {:>8} {:>12} {:>14} {:>12}",
        "benchmark", "variant", "vs GPU", "vs ELSA(attn)", "DOTA mJ/inf"
    );
    for row in &rows {
        println!(
            "{:>10} {:>8} {:>11.0}x {:>13.2}x {:>12.3}",
            row.benchmark, row.variant, row.vs_gpu, row.vs_elsa_attention, row.dota_mj
        );
    }
    println!("\nPaper shape: DOTA-C 618-5185x and DOTA-A 1236-8642x over GPU;");
    println!("1.97-5.14x (C) and 3.29-12.2x (A) over ELSA on the attention block.");

    dota_bench::write_json("fig13_energy", &rows);
}
