//! Figure 13: energy-efficiency of DOTA-C/A relative to the GPU and ELSA.
//!
//! Run with: `cargo run --release -p dota-bench --bin fig13_energy`

use dota_core::presets::OperatingPoint;
use dota_core::{DotaSystem, EnergyRow};
use dota_workloads::Benchmark;

fn main() {
    let system = DotaSystem::paper_default();
    let mut rows: Vec<EnergyRow> = Vec::new();

    println!("Figure 13: energy-efficiency improvements\n");
    println!(
        "{:>10} {:>8} {:>12} {:>14} {:>12}",
        "benchmark", "variant", "vs GPU", "vs ELSA(attn)", "DOTA mJ/inf"
    );
    for b in Benchmark::ALL {
        for p in [OperatingPoint::Conservative, OperatingPoint::Aggressive] {
            let row = system.energy_row(b, p);
            println!(
                "{:>10} {:>8} {:>11.0}x {:>13.2}x {:>12.3}",
                row.benchmark, row.variant, row.vs_gpu, row.vs_elsa_attention, row.dota_mj
            );
            rows.push(row);
        }
    }
    println!("\nPaper shape: DOTA-C 618-5185x and DOTA-A 1236-8642x over GPU;");
    println!("1.97-5.14x (C) and 3.29-12.2x (A) over ELSA on the attention block.");

    dota_bench::write_json("fig13_energy", &rows);
}
