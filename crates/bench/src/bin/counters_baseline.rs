//! Hardware-counter regression harness.
//!
//! Default mode re-runs the deterministic counter scenarios (see
//! `dota_bench::counter_scenarios`) and rewrites the committed baseline at
//! `results/counters_baseline.json`. `--check` mode re-runs the scenarios
//! and diffs them against the committed baseline instead, exiting non-zero
//! on any drift — run it in CI after behaviour-changing simulator work and
//! regenerate the baseline deliberately when a change is intended:
//!
//! ```text
//! cargo run --release -p dota-bench --bin counters_baseline            # rewrite
//! cargo run --release -p dota-bench --bin counters_baseline -- --check # verify
//! ```
//!
//! The scenarios are fully seeded and every counter is a `u64` sum, so the
//! check is bitwise stable across hosts, thread counts and the `parallel`
//! feature — any diff is a real behaviour change, not noise.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Serialize, Deserialize)]
struct Scenario {
    scenario: String,
    counters: BTreeMap<String, u64>,
}

#[derive(Serialize, Deserialize)]
struct Baseline {
    note: String,
    scenarios: Vec<Scenario>,
}

fn current() -> Baseline {
    Baseline {
        note: "Deterministic dota-trace counter totals; regenerate with \
               `cargo run -p dota-bench --bin counters_baseline` when a \
               simulator change is intended."
            .to_owned(),
        scenarios: dota_bench::counter_scenarios()
            .into_iter()
            .map(|(scenario, counters)| Scenario { scenario, counters })
            .collect(),
    }
}

fn baseline_path() -> std::path::PathBuf {
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p.push("counters_baseline.json");
    p
}

/// One drifted counter, for the mismatch table.
struct DiffRow {
    scenario: String,
    key: String,
    expected: Option<u64>,
    actual: Option<u64>,
}

impl DiffRow {
    /// Signed relative error of `actual` vs `expected`, rendered as a
    /// percentage; "n/a" when either side is absent or the baseline is 0.
    fn rel_error(&self) -> String {
        match (self.expected, self.actual) {
            (Some(e), Some(a)) if e != 0 => {
                let rel = (a as f64 - e as f64) / e as f64;
                format!("{:+.4}%", rel * 100.0)
            }
            _ => "n/a".to_owned(),
        }
    }
}

fn fmt_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "<absent>".to_owned(), |v| v.to_string())
}

/// Prints every difference between the committed and current counters as
/// an aligned table (scenario, counter, expected, actual, relative
/// error). Returns the number of differences.
fn diff(committed: &Baseline, now: &Baseline) -> usize {
    let mut rows: Vec<DiffRow> = Vec::new();
    let mut structural = 0usize;
    let committed_by_name: BTreeMap<&str, &Scenario> = committed
        .scenarios
        .iter()
        .map(|s| (s.scenario.as_str(), s))
        .collect();
    for cur in &now.scenarios {
        let Some(base) = committed_by_name.get(cur.scenario.as_str()) else {
            println!("  {}: missing from committed baseline", cur.scenario);
            structural += 1;
            continue;
        };
        let keys: std::collections::BTreeSet<&String> =
            base.counters.keys().chain(cur.counters.keys()).collect();
        for key in keys {
            let (b, c) = (base.counters.get(key), cur.counters.get(key));
            if b != c {
                rows.push(DiffRow {
                    scenario: cur.scenario.clone(),
                    key: key.clone(),
                    expected: b.copied(),
                    actual: c.copied(),
                });
            }
        }
    }
    for base in &committed.scenarios {
        if !now.scenarios.iter().any(|s| s.scenario == base.scenario) {
            println!("  {}: no longer produced", base.scenario);
            structural += 1;
        }
    }
    if !rows.is_empty() {
        let mut widths = [
            "scenario".len(),
            "counter".len(),
            "expected".len(),
            "actual".len(),
        ];
        for r in &rows {
            widths[0] = widths[0].max(r.scenario.len());
            widths[1] = widths[1].max(r.key.len());
            widths[2] = widths[2].max(fmt_opt(r.expected).len());
            widths[3] = widths[3].max(fmt_opt(r.actual).len());
        }
        println!(
            "  {:<w0$}  {:<w1$}  {:>w2$}  {:>w3$}  {:>10}",
            "scenario",
            "counter",
            "expected",
            "actual",
            "rel error",
            w0 = widths[0],
            w1 = widths[1],
            w2 = widths[2],
            w3 = widths[3],
        );
        for r in &rows {
            println!(
                "  {:<w0$}  {:<w1$}  {:>w2$}  {:>w3$}  {:>10}",
                r.scenario,
                r.key,
                fmt_opt(r.expected),
                fmt_opt(r.actual),
                r.rel_error(),
                w0 = widths[0],
                w1 = widths[1],
                w2 = widths[2],
                w3 = widths[3],
            );
        }
    }
    rows.len() + structural
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    // Profiler gate is independent of the trace gate, so the scenarios'
    // internal trace sessions coexist with `--profile`/`DOTA_PROF` here.
    let _prof = dota_bench::Observability::profile_only("counters_baseline");
    let now = current();
    let path = baseline_path();

    if check {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(2);
        });
        let committed: Baseline = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {}: {e}", path.display());
            std::process::exit(2);
        });
        println!("Counter regression check against {}", path.display());
        let diffs = diff(&committed, &now);
        if diffs == 0 {
            let total: usize = now.scenarios.iter().map(|s| s.counters.len()).sum();
            println!(
                "OK: {} scenarios, {total} counters, all identical to baseline",
                now.scenarios.len()
            );
        } else {
            println!("FAIL: {diffs} counter(s) drifted from the committed baseline");
            std::process::exit(1);
        }
    } else {
        // Rewrite mode records provenance for the regenerated baseline;
        // `--check` is read-only and leaves no manifest behind. No
        // `Observability` in either mode — the scenarios open their own
        // exclusive trace sessions.
        let _manifest = dota_bench::run_manifest("counters_baseline");
        for s in &now.scenarios {
            println!("{:<22} {} counters", s.scenario, s.counters.len());
        }
        dota_bench::write_json("counters_baseline", &now);
    }
}
