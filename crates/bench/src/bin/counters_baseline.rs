//! Hardware-counter regression harness.
//!
//! Default mode re-runs the deterministic counter scenarios (see
//! `dota_bench::counter_scenarios`) and rewrites the committed baseline at
//! `results/counters_baseline.json`. `--check` mode re-runs the scenarios
//! and diffs them against the committed baseline instead, exiting non-zero
//! on any drift — run it in CI after behaviour-changing simulator work and
//! regenerate the baseline deliberately when a change is intended:
//!
//! ```text
//! cargo run --release -p dota-bench --bin counters_baseline            # rewrite
//! cargo run --release -p dota-bench --bin counters_baseline -- --check # verify
//! ```
//!
//! The scenarios are fully seeded and every counter is a `u64` sum, so the
//! check is bitwise stable across hosts, thread counts and the `parallel`
//! feature — any diff is a real behaviour change, not noise.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Serialize, Deserialize)]
struct Scenario {
    scenario: String,
    counters: BTreeMap<String, u64>,
}

#[derive(Serialize, Deserialize)]
struct Baseline {
    note: String,
    scenarios: Vec<Scenario>,
}

fn current() -> Baseline {
    Baseline {
        note: "Deterministic dota-trace counter totals; regenerate with \
               `cargo run -p dota-bench --bin counters_baseline` when a \
               simulator change is intended."
            .to_owned(),
        scenarios: dota_bench::counter_scenarios()
            .into_iter()
            .map(|(scenario, counters)| Scenario { scenario, counters })
            .collect(),
    }
}

fn baseline_path() -> std::path::PathBuf {
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p.push("counters_baseline.json");
    p
}

/// Prints every difference between the committed and current counters.
/// Returns the number of differences.
fn diff(committed: &Baseline, now: &Baseline) -> usize {
    let mut diffs = 0;
    let committed_by_name: BTreeMap<&str, &Scenario> = committed
        .scenarios
        .iter()
        .map(|s| (s.scenario.as_str(), s))
        .collect();
    for cur in &now.scenarios {
        let Some(base) = committed_by_name.get(cur.scenario.as_str()) else {
            println!("  {}: missing from committed baseline", cur.scenario);
            diffs += 1;
            continue;
        };
        let keys: std::collections::BTreeSet<&String> =
            base.counters.keys().chain(cur.counters.keys()).collect();
        for key in keys {
            let (b, c) = (base.counters.get(key), cur.counters.get(key));
            if b != c {
                let fmt = |v: Option<&u64>| v.map_or_else(|| "<absent>".to_owned(), u64::to_string);
                println!(
                    "  {}/{key}: baseline {} vs current {}",
                    cur.scenario,
                    fmt(b),
                    fmt(c)
                );
                diffs += 1;
            }
        }
    }
    for base in &committed.scenarios {
        if !now.scenarios.iter().any(|s| s.scenario == base.scenario) {
            println!("  {}: no longer produced", base.scenario);
            diffs += 1;
        }
    }
    diffs
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let now = current();
    let path = baseline_path();

    if check {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(2);
        });
        let committed: Baseline = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {}: {e}", path.display());
            std::process::exit(2);
        });
        println!("Counter regression check against {}", path.display());
        let diffs = diff(&committed, &now);
        if diffs == 0 {
            let total: usize = now.scenarios.iter().map(|s| s.counters.len()).sum();
            println!(
                "OK: {} scenarios, {total} counters, all identical to baseline",
                now.scenarios.len()
            );
        } else {
            println!("FAIL: {diffs} counter(s) drifted from the committed baseline");
            std::process::exit(1);
        }
    } else {
        // Rewrite mode records provenance for the regenerated baseline;
        // `--check` is read-only and leaves no manifest behind. No
        // `Observability` in either mode — the scenarios open their own
        // exclusive trace sessions.
        let _manifest = dota_bench::run_manifest("counters_baseline");
        for s in &now.scenarios {
            println!("{:<22} {} counters", s.scenario, s.counters.len());
        }
        dota_bench::write_json("counters_baseline", &now);
    }
}
