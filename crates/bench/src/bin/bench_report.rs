//! Kernel benchmark report: wall-clock timings of the GEMM kernels
//! (naive reference vs the packed/blocked kernels, serial vs the
//! `parallel` thread pool, fp32 kernel families vs the quantized INT8 and
//! INT4 host kernels) and of dense vs DOTA-sparse attention at the five
//! paper sequence lengths (§5.1). Writes `BENCH_kernels.json` at the
//! repository root.
//!
//! Run with:
//! `cargo run --release -p dota-bench --features parallel --bin bench_report`
//!
//! `--quick` runs a reduced smoke instead: small sizes, few reps, no
//! counter scenarios, no report file — and, when built with
//! `--features prof-alloc`, asserts that the packed GEMM path stays
//! within a fixed steady-state allocation budget (the pooled pack
//! buffers and `matmul_into` outputs make repeated products allocation-
//! free). CI runs this leg.
//!
//! Thread-pool speedups depend on the machine: the report records the
//! actual pool width, physical core count and detected CPU features so
//! `pool_speedup` is interpretable across hosts — expect ~1.0 on a
//! single-core container and >3x at 2048² on a real multi-core host.

use dota_metrics::Histogram;
use dota_quant::{Int4Packed, Int8Matrix, Precision};
use dota_tensor::rng::SeededRng;
use dota_tensor::simd::{self, KernelFamily};
use dota_tensor::{ops, reference, Matrix};
use serde::Serialize;
use std::time::Instant;

/// Percentile summary of repeated wall-clock samples of one kernel.
/// min/p50 come straight from the sample histogram; with the small rep
/// counts used here p95/p99 collapse toward the max, which is still the
/// honest tail estimate for the samples taken.
#[derive(Serialize)]
struct TimingSummary {
    reps: u64,
    min_ms: f64,
    mean_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

impl TimingSummary {
    fn from_hist(h: &Histogram) -> Self {
        let q = |q: f64| h.quantile(q).unwrap_or(f64::NAN);
        Self {
            reps: h.count(),
            min_ms: q(0.0),
            mean_ms: h.mean().unwrap_or(f64::NAN),
            p50_ms: q(0.5),
            p95_ms: q(0.95),
            p99_ms: q(0.99),
        }
    }
}

/// Heap traffic of one timed kernel, from `dota-prof`'s counting
/// allocator. All zeros unless built with `--features prof-alloc`.
#[derive(Serialize)]
struct AllocSummary {
    /// Bytes allocated per repetition (mean across the timed reps).
    alloc_mb_per_rep: f64,
    /// High-water mark of live heap bytes during the reps.
    peak_mb: f64,
}

const MB: f64 = 1024.0 * 1024.0;

#[derive(Serialize)]
struct GemmRow {
    size: usize,
    /// Worker threads actually dispatched for the pool run.
    pool_threads: usize,
    naive: TimingSummary,
    optimized_serial: TimingSummary,
    optimized_pool: TimingSummary,
    /// Active-family kernel vs the textbook triple loop, both serial, on
    /// median (p50) wall-clock.
    speedup_vs_naive: f64,
    /// Thread pool vs `DOTA_THREADS=1` on p50; ~1.0 without the
    /// `parallel` feature or on a single-core host.
    pool_speedup: f64,
    /// Heap traffic of the serial optimized kernel (timed through
    /// `matmul_into` with a reused output, so the packed path's steady
    /// state is ~0 regardless of size).
    optimized_alloc: AllocSummary,
}

/// One kernel family timed at a fixed square size — the fp32 families
/// next to the quantized host kernels, so fp32-vs-int8 throughput sits in
/// one table beside the RMMU cycle model.
#[derive(Serialize)]
struct FamilyRow {
    /// `fp32/scalar`, `fp32/simd`, `fp32/fma`, `int8`, `int4`.
    kernel: String,
    /// Whether this host can run the family (rows for unavailable
    /// families are omitted, so this is always true in the JSON; kept for
    /// readers scanning across hosts' reports).
    available: bool,
    p50_ms: f64,
    /// `2·n³` multiply-adds over p50 wall-clock.
    gflops: f64,
    /// p50 speedup vs the `fp32/scalar` row of the same size.
    speedup_vs_scalar: f64,
}

#[derive(Serialize)]
struct AttnRow {
    benchmark: String,
    seq_len: usize,
    retention: f64,
    dense: TimingSummary,
    dota: TimingSummary,
    /// Dense vs DOTA-sparse on median (p50) wall-clock.
    speedup: f64,
    /// Heap traffic of the DOTA-sparse kernel.
    dota_alloc: AllocSummary,
}

#[derive(Serialize)]
struct CounterScenario {
    scenario: String,
    counters: std::collections::BTreeMap<String, u64>,
}

#[derive(Serialize)]
struct Report {
    parallel_feature: bool,
    pool_threads: usize,
    /// Physical core count of the producing host (distinct core ids).
    physical_cores: usize,
    /// Detected SIMD capabilities (`avx2`/`fma`/`avx512f`/`neon`/`none`).
    cpu_features: Vec<&'static str>,
    /// Kernel family the fp32 GEMM rows ran with (`DOTA_GEMM` resolution).
    gemm_family: &'static str,
    host_note: &'static str,
    alloc_note: &'static str,
    gemm: Vec<GemmRow>,
    /// Family comparison at one fixed size (see [`FamilyRow`]).
    kernel_family_size: usize,
    kernel_families: Vec<FamilyRow>,
    attention: Vec<AttnRow>,
    /// Deterministic hardware-counter snapshots (see `dota-trace`): the
    /// same scenarios `counters_baseline` regression-checks. Unlike the
    /// timing rows, these are bit-identical across hosts and thread counts.
    counters: Vec<CounterScenario>,
}

/// Wall-clock milliseconds of `reps` runs, as a streaming histogram the
/// report summarizes into p50/p95/p99 (instead of a single best-of mean),
/// plus the heap traffic of the reps (requires an open `dota-prof`
/// session and the `prof-alloc` feature to be nonzero).
fn time_hist<R>(reps: usize, mut f: impl FnMut() -> R) -> (Histogram, AllocSummary) {
    let before = dota_prof::alloc_stats();
    dota_prof::reset_peak();
    let mut h = Histogram::new();
    for _ in 0..reps {
        let t = Instant::now();
        let out = f();
        h.record(t.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(out);
    }
    let after = dota_prof::alloc_stats();
    let alloc = AllocSummary {
        alloc_mb_per_rep: after.allocated_bytes.saturating_sub(before.allocated_bytes) as f64
            / reps.max(1) as f64
            / MB,
        peak_mb: after.peak_bytes as f64 / MB,
    };
    (h, alloc)
}

fn with_one_thread<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::env::var(dota_parallel::THREADS_ENV).ok();
    std::env::set_var(dota_parallel::THREADS_ENV, "1");
    let out = f();
    match prev {
        Some(v) => std::env::set_var(dota_parallel::THREADS_ENV, v),
        None => std::env::remove_var(dota_parallel::THREADS_ENV),
    }
    out
}

/// Runs `f` with `DOTA_GEMM` forced to `family`, restoring afterwards.
/// Safe here because the bench binary is single-threaded at the top level
/// (kernel workers never read the variable mid-product — the family is
/// resolved once per dispatch on the calling thread).
fn with_family<R>(family: &str, f: impl FnOnce() -> R) -> R {
    let prev = std::env::var(simd::GEMM_ENV).ok();
    std::env::set_var(simd::GEMM_ENV, family);
    let out = f();
    match prev {
        Some(v) => std::env::set_var(simd::GEMM_ENV, v),
        None => std::env::remove_var(simd::GEMM_ENV),
    }
    out
}

fn p50(h: &Histogram) -> f64 {
    h.quantile(0.5).unwrap_or(f64::NAN)
}

fn gemm_rows(sizes: &[usize]) -> Vec<GemmRow> {
    let mut rows = Vec::new();
    let mut rng = SeededRng::new(7);
    for &size in sizes {
        let a = rng.normal_matrix(size, size, 1.0);
        let b = rng.normal_matrix(size, size, 1.0);
        let mut out = Matrix::zeros(size, size);
        // Naive cost grows as size^3; a couple of repetitions suffice for
        // a stable median at the large sizes.
        let (opt_reps, naive_reps) = if size >= 1024 { (3, 2) } else { (7, 3) };
        let (naive, _) = time_hist(naive_reps, || reference::matmul(&a, &b));
        // Warm the pack-buffer pool so the timed reps see the steady
        // state the alloc column is meant to capture.
        a.matmul_into(&b, &mut out).expect("shape");
        let (serial, serial_alloc) =
            with_one_thread(|| time_hist(opt_reps, || a.matmul_into(&b, &mut out).expect("shape")));
        let (pool, _) = time_hist(opt_reps, || a.matmul_into(&b, &mut out).expect("shape"));
        let row = GemmRow {
            size,
            pool_threads: dota_parallel::num_threads(),
            speedup_vs_naive: p50(&naive) / p50(&serial).max(1e-9),
            pool_speedup: p50(&serial) / p50(&pool).max(1e-9),
            naive: TimingSummary::from_hist(&naive),
            optimized_serial: TimingSummary::from_hist(&serial),
            optimized_pool: TimingSummary::from_hist(&pool),
            optimized_alloc: serial_alloc,
        };
        println!(
            "{:>5}  naive p50 {:>9.2} ms  serial p50 {:>8.2} ms (p99 {:>8.2})  pool p50 {:>8.2} ms  {:>5.1}x vs naive  {:>4.2}x pool",
            row.size, row.naive.p50_ms, row.optimized_serial.p50_ms, row.optimized_serial.p99_ms,
            row.optimized_pool.p50_ms, row.speedup_vs_naive, row.pool_speedup
        );
        rows.push(row);
    }
    rows
}

/// Times each available kernel family — fp32 scalar/simd/fma and the
/// quantized int8/int4 host kernels — on one `size`² product.
fn family_rows(size: usize, reps: usize) -> Vec<FamilyRow> {
    let mut rng = SeededRng::new(9);
    let a = rng.normal_matrix(size, size, 1.0);
    let b = rng.normal_matrix(size, size, 1.0);
    let mut out = Matrix::zeros(size, size);
    let flops = 2.0 * (size as f64).powi(3);
    let gflops = |ms: f64| flops / (ms.max(1e-9) * 1e-3) / 1e9;

    let mut rows = Vec::new();
    let mut scalar_p50 = f64::NAN;
    for fam in [KernelFamily::Scalar, KernelFamily::Simd, KernelFamily::Fma] {
        let available = match fam {
            KernelFamily::Scalar => true,
            KernelFamily::Simd => simd::simd_available(),
            KernelFamily::Fma => simd::fma_available(),
        };
        if !available {
            continue;
        }
        a.matmul_into(&b, &mut out).expect("shape"); // warm pools
        let (h, _) = with_family(fam.name(), || {
            time_hist(reps, || a.matmul_into(&b, &mut out).expect("shape"))
        });
        let ms = p50(&h);
        if fam == KernelFamily::Scalar {
            scalar_p50 = ms;
        }
        rows.push(FamilyRow {
            kernel: format!("fp32/{}", fam.name()),
            available: true,
            p50_ms: ms,
            gflops: gflops(ms),
            speedup_vs_scalar: scalar_p50 / ms.max(1e-9),
        });
    }

    // Quantized host kernels (layout is A·Bᵀ — same flop count). The i8
    // kernel uses AVX2 `madd` lanes when present; int4 adds nibble
    // unpacking on top of the same kernel.
    let q8a = Int8Matrix::quantize(&a, Precision::Int8);
    let q8b = Int8Matrix::quantize(&b, Precision::Int8);
    let (h8, _) = time_hist(reps, || q8a.matmul_nt_dequant(&q8b).expect("shape"));
    rows.push(FamilyRow {
        kernel: "int8".to_owned(),
        available: true,
        p50_ms: p50(&h8),
        gflops: gflops(p50(&h8)),
        speedup_vs_scalar: scalar_p50 / p50(&h8).max(1e-9),
    });
    let q4a = Int4Packed::quantize(&a, Precision::Int4);
    let q4b = Int4Packed::quantize(&b, Precision::Int4);
    let (h4, _) = time_hist(reps, || q4a.matmul_nt_dequant(&q4b).expect("shape"));
    rows.push(FamilyRow {
        kernel: "int4".to_owned(),
        available: true,
        p50_ms: p50(&h4),
        gflops: gflops(p50(&h4)),
        speedup_vs_scalar: scalar_p50 / p50(&h4).max(1e-9),
    });

    for r in &rows {
        println!(
            "  {:<12} p50 {:>8.2} ms  {:>7.2} GFLOP/s  {:>5.2}x vs fp32/scalar",
            r.kernel, r.p50_ms, r.gflops, r.speedup_vs_scalar
        );
    }
    rows
}

fn attention_rows() -> Vec<AttnRow> {
    let retention = 0.1;
    let hd = 64usize;
    let scale = 1.0 / (hd as f32).sqrt();
    let mut rows = Vec::new();
    let mut rng = SeededRng::new(11);
    for b in dota_workloads::Benchmark::ALL {
        let n = b.paper_seq_len();
        let q = rng.normal_matrix(n, hd, 1.0);
        let k = rng.normal_matrix(n, hd, 1.0);
        let v = rng.normal_matrix(n, hd, 1.0);
        // Structured strided selection at the paper's ~10% retention; the
        // report times the attention arithmetic, not detection (Fig. 12c
        // shows detection is a small share of latency).
        let kept = ((retention * n as f64).round() as usize).clamp(1, n);
        let sel_row: Vec<u32> = (0..kept).map(|j| (j * n / kept) as u32).collect();
        let selected = vec![sel_row; n];
        let (dense, _) = time_hist(3, || {
            let scores = q.matmul_nt(&k).expect("shape").scale(scale);
            ops::softmax_rows(&scores).matmul(&v).expect("shape")
        });
        let (dota, dota_alloc) =
            time_hist(3, || ops::sparse_attention(&q, &k, &v, &selected, scale));
        let row = AttnRow {
            benchmark: b.name().to_owned(),
            seq_len: n,
            retention,
            speedup: p50(&dense) / p50(&dota).max(1e-9),
            dense: TimingSummary::from_hist(&dense),
            dota: TimingSummary::from_hist(&dota),
            dota_alloc,
        };
        println!(
            "{:>10}  n {:>5}  dense p50 {:>9.2} ms  DOTA p50 {:>8.2} ms (p99 {:>8.2})  {:>5.1}x",
            row.benchmark,
            row.seq_len,
            row.dense.p50_ms,
            row.dota.p50_ms,
            row.dota.p99_ms,
            row.speedup
        );
        rows.push(row);
    }
    rows
}

/// Steady-state allocation budget for the `--quick` smoke, in bytes
/// across all timed reps combined: after warmup, the packed path
/// (`matmul_into` + pooled pack buffers) should allocate nothing; the
/// budget only leaves room for allocator bookkeeping noise. Deliberately
/// independent of matrix size — that is the property being asserted.
const QUICK_ALLOC_BUDGET_BYTES: u64 = 1 << 20;

/// `--quick`: a CI-sized smoke. Returns process success.
fn run_quick() -> bool {
    let mut manifest = dota_bench::run_manifest("bench_report_quick");
    manifest.config("mode", "quick");
    manifest.config("gemm_family", KernelFamily::active().name());
    let _prof = dota_prof::session("bench_report_quick");
    println!(
        "Quick kernel smoke (family {}, features {})\n",
        KernelFamily::active().name(),
        simd::cpu_features().join("+")
    );
    println!("GEMM (square, f32)");
    let gemm = gemm_rows(&[128, 256]);
    println!("\nKernel families at 256² (fp32 vs quantized)");
    let families = family_rows(256, 3);
    // Sanity: the quantized kernels must have produced sane speed numbers.
    assert!(
        families.iter().all(|r| r.p50_ms.is_finite()),
        "non-finite family timing"
    );
    assert!(!gemm.is_empty());

    // Detect whether the counting allocator is live: a deliberate 1 MiB
    // allocation must move the counter. Without prof-alloc the budget
    // assert is vacuous and is skipped (CI builds the smoke with it).
    let before = dota_prof::alloc_stats();
    let probe = vec![0u8; 1 << 20];
    std::hint::black_box(&probe);
    drop(probe);
    let counting = dota_prof::alloc_stats().allocated_bytes > before.allocated_bytes;
    if !counting {
        println!("\n[prof-alloc not active: steady-state budget assert skipped]");
        return true;
    }

    // The budget assert proper: warm the pools, then measure allocation
    // across repeated packed products into a reused output.
    let mut rng = SeededRng::new(21);
    let a = rng.normal_matrix(256, 256, 1.0);
    let b = rng.normal_matrix(256, 256, 1.0);
    let mut out = Matrix::zeros(256, 256);
    for _ in 0..2 {
        a.matmul_into(&b, &mut out).expect("shape");
    }
    let before = dota_prof::alloc_stats().allocated_bytes;
    for _ in 0..10 {
        a.matmul_into(&b, &mut out).expect("shape");
        std::hint::black_box(&out);
    }
    let spent = dota_prof::alloc_stats()
        .allocated_bytes
        .saturating_sub(before);
    println!(
        "\nsteady-state alloc across 10 packed 256² products: {spent} bytes (budget {QUICK_ALLOC_BUDGET_BYTES})"
    );
    if spent > QUICK_ALLOC_BUDGET_BYTES {
        eprintln!("FAIL: packed GEMM steady state exceeded the allocation budget");
        return false;
    }
    println!("steady-state allocation budget: OK");
    true
}

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        if !run_quick() {
            std::process::exit(1);
        }
        return;
    }
    // No `Observability` here: `counter_scenarios` opens its own exclusive
    // trace sessions, which would deadlock against an outer one. The
    // provenance manifest is still written. The profiler gate is
    // independent of the trace gate, so a prof session is safe — it feeds
    // the allocation columns and, when `--profile`/`DOTA_PROF` is set, the
    // profile files written at the end.
    let mut manifest = dota_bench::run_manifest("bench_report");
    manifest.config("gemm_family", KernelFamily::active().name());
    let prof = dota_prof::session("bench_report");
    println!(
        "Kernel report (parallel feature: {}, pool threads: {}, physical cores: {}, cpu: {}, family: {})\n",
        cfg!(feature = "parallel"),
        dota_parallel::num_threads(),
        dota_parallel::num_physical_cores(),
        simd::cpu_features().join("+"),
        KernelFamily::active().name(),
    );
    println!("GEMM (square, f32): packed/blocked kernels vs naive reference");
    let gemm = gemm_rows(&[128, 256, 512, 1024, 2048]);
    const FAMILY_SIZE: usize = 512;
    println!("\nKernel families at {FAMILY_SIZE}² (fp32 scalar/simd/fma vs quantized int8/int4)");
    let kernel_families = family_rows(FAMILY_SIZE, 5);
    println!("\nAttention (head_dim 64, retention 10%): dense vs DOTA-sparse");
    let attention = attention_rows();

    println!("\nHardware counters (deterministic; selected totals per scenario)");
    let counters: Vec<CounterScenario> = dota_bench::counter_scenarios()
        .into_iter()
        .map(|(scenario, counters)| CounterScenario { scenario, counters })
        .collect();
    for cs in &counters {
        println!("  {} ({} counters)", cs.scenario, cs.counters.len());
        // Headline totals only; the JSON carries the full snapshot.
        for key in [
            "sched.row_by_row.loads",
            "sched.in_order.loads",
            "sched.ooo.loads",
            "accel.cycles.attention",
            "accel.key_loads",
            "decode.cycles",
            "attn.connections.omitted",
            "dram.bytes_read",
        ] {
            if let Some(v) = cs.counters.get(key) {
                println!("    {key:<28} {v}");
            }
        }
    }

    let report = Report {
        parallel_feature: cfg!(feature = "parallel"),
        pool_threads: dota_parallel::num_threads(),
        physical_cores: dota_parallel::num_physical_cores(),
        cpu_features: simd::cpu_features(),
        gemm_family: KernelFamily::active().name(),
        host_note: "pool_speedup is host-dependent; ~1.0 on single-core runners",
        alloc_note: "allocation columns need --features prof-alloc; zeros otherwise",
        gemm,
        kernel_family_size: FAMILY_SIZE,
        kernel_families,
        attention,
        counters,
    };
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_kernels.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&path, json).expect("write BENCH_kernels.json");
    println!("\n[report written to {}]", path.display());

    if let Some(dir) = dota_bench::profile_request() {
        std::fs::create_dir_all(&dir).expect("create profile dir");
        prof.write_folded(&dir.join("profile.folded"))
            .and_then(|()| prof.write_profile(&dir.join("profile.json")))
            .expect("write profile");
        eprintln!("[profile written to {}]", dir.display());
    }
}
