//! Kernel benchmark report: wall-clock timings of the GEMM kernels
//! (naive reference vs the blocked/unrolled kernels, serial vs the
//! `parallel` thread pool) and of dense vs DOTA-sparse attention at the
//! five paper sequence lengths (§5.1). Writes `BENCH_kernels.json` at the
//! repository root.
//!
//! Run with:
//! `cargo run --release -p dota-bench --features parallel --bin bench_report`
//!
//! Thread-pool speedups depend on the machine: on a single-core container
//! the pool rows time the same as serial (the kernels are bitwise
//! identical either way); the optimized-vs-naive and dense-vs-DOTA ratios
//! hold on one core.

use dota_metrics::Histogram;
use dota_tensor::rng::SeededRng;
use dota_tensor::{ops, reference};
use serde::Serialize;
use std::time::Instant;

/// Percentile summary of repeated wall-clock samples of one kernel.
/// min/p50 come straight from the sample histogram; with the small rep
/// counts used here p95/p99 collapse toward the max, which is still the
/// honest tail estimate for the samples taken.
#[derive(Serialize)]
struct TimingSummary {
    reps: u64,
    min_ms: f64,
    mean_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

impl TimingSummary {
    fn from_hist(h: &Histogram) -> Self {
        let q = |q: f64| h.quantile(q).unwrap_or(f64::NAN);
        Self {
            reps: h.count(),
            min_ms: q(0.0),
            mean_ms: h.mean().unwrap_or(f64::NAN),
            p50_ms: q(0.5),
            p95_ms: q(0.95),
            p99_ms: q(0.99),
        }
    }
}

/// Heap traffic of one timed kernel, from `dota-prof`'s counting
/// allocator. All zeros unless built with `--features prof-alloc`.
#[derive(Serialize)]
struct AllocSummary {
    /// Bytes allocated per repetition (mean across the timed reps).
    alloc_mb_per_rep: f64,
    /// High-water mark of live heap bytes during the reps.
    peak_mb: f64,
}

const MB: f64 = 1024.0 * 1024.0;

#[derive(Serialize)]
struct GemmRow {
    size: usize,
    naive: TimingSummary,
    optimized_serial: TimingSummary,
    optimized_pool: TimingSummary,
    /// Blocked/unrolled kernel vs the textbook triple loop, both serial,
    /// on median (p50) wall-clock.
    speedup_vs_naive: f64,
    /// Thread pool vs `DOTA_THREADS=1` on p50; ~1.0 without the
    /// `parallel` feature or on a single-core host.
    pool_speedup: f64,
    /// Heap traffic of the serial optimized kernel.
    optimized_alloc: AllocSummary,
}

#[derive(Serialize)]
struct AttnRow {
    benchmark: String,
    seq_len: usize,
    retention: f64,
    dense: TimingSummary,
    dota: TimingSummary,
    /// Dense vs DOTA-sparse on median (p50) wall-clock.
    speedup: f64,
    /// Heap traffic of the DOTA-sparse kernel.
    dota_alloc: AllocSummary,
}

#[derive(Serialize)]
struct CounterScenario {
    scenario: String,
    counters: std::collections::BTreeMap<String, u64>,
}

#[derive(Serialize)]
struct Report {
    parallel_feature: bool,
    pool_threads: usize,
    host_note: &'static str,
    alloc_note: &'static str,
    gemm: Vec<GemmRow>,
    attention: Vec<AttnRow>,
    /// Deterministic hardware-counter snapshots (see `dota-trace`): the
    /// same scenarios `counters_baseline` regression-checks. Unlike the
    /// timing rows, these are bit-identical across hosts and thread counts.
    counters: Vec<CounterScenario>,
}

/// Wall-clock milliseconds of `reps` runs, as a streaming histogram the
/// report summarizes into p50/p95/p99 (instead of a single best-of mean),
/// plus the heap traffic of the reps (requires an open `dota-prof`
/// session and the `prof-alloc` feature to be nonzero).
fn time_hist<R>(reps: usize, mut f: impl FnMut() -> R) -> (Histogram, AllocSummary) {
    let before = dota_prof::alloc_stats();
    dota_prof::reset_peak();
    let mut h = Histogram::new();
    for _ in 0..reps {
        let t = Instant::now();
        let out = f();
        h.record(t.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(out);
    }
    let after = dota_prof::alloc_stats();
    let alloc = AllocSummary {
        alloc_mb_per_rep: after.allocated_bytes.saturating_sub(before.allocated_bytes) as f64
            / reps.max(1) as f64
            / MB,
        peak_mb: after.peak_bytes as f64 / MB,
    };
    (h, alloc)
}

fn with_one_thread<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::env::var(dota_parallel::THREADS_ENV).ok();
    std::env::set_var(dota_parallel::THREADS_ENV, "1");
    let out = f();
    match prev {
        Some(v) => std::env::set_var(dota_parallel::THREADS_ENV, v),
        None => std::env::remove_var(dota_parallel::THREADS_ENV),
    }
    out
}

fn gemm_rows() -> Vec<GemmRow> {
    let mut rows = Vec::new();
    let mut rng = SeededRng::new(7);
    for &size in &[128usize, 256, 512, 1024, 2048] {
        let a = rng.normal_matrix(size, size, 1.0);
        let b = rng.normal_matrix(size, size, 1.0);
        // Naive cost grows as size^3; a couple of repetitions suffice for
        // a stable median at the large sizes.
        let (opt_reps, naive_reps) = if size >= 1024 { (3, 2) } else { (7, 3) };
        let (naive, _) = time_hist(naive_reps, || reference::matmul(&a, &b));
        let (serial, serial_alloc) =
            with_one_thread(|| time_hist(opt_reps, || a.matmul(&b).expect("shape")));
        let (pool, _) = time_hist(opt_reps, || a.matmul(&b).expect("shape"));
        let p50 = |h: &Histogram| h.quantile(0.5).unwrap_or(f64::NAN);
        let row = GemmRow {
            size,
            speedup_vs_naive: p50(&naive) / p50(&serial).max(1e-9),
            pool_speedup: p50(&serial) / p50(&pool).max(1e-9),
            naive: TimingSummary::from_hist(&naive),
            optimized_serial: TimingSummary::from_hist(&serial),
            optimized_pool: TimingSummary::from_hist(&pool),
            optimized_alloc: serial_alloc,
        };
        println!(
            "{:>5}  naive p50 {:>9.2} ms  serial p50 {:>8.2} ms (p99 {:>8.2})  pool p50 {:>8.2} ms  {:>5.1}x vs naive  {:>4.2}x pool",
            row.size, row.naive.p50_ms, row.optimized_serial.p50_ms, row.optimized_serial.p99_ms,
            row.optimized_pool.p50_ms, row.speedup_vs_naive, row.pool_speedup
        );
        rows.push(row);
    }
    rows
}

fn attention_rows() -> Vec<AttnRow> {
    let retention = 0.1;
    let hd = 64usize;
    let scale = 1.0 / (hd as f32).sqrt();
    let mut rows = Vec::new();
    let mut rng = SeededRng::new(11);
    for b in dota_workloads::Benchmark::ALL {
        let n = b.paper_seq_len();
        let q = rng.normal_matrix(n, hd, 1.0);
        let k = rng.normal_matrix(n, hd, 1.0);
        let v = rng.normal_matrix(n, hd, 1.0);
        // Structured strided selection at the paper's ~10% retention; the
        // report times the attention arithmetic, not detection (Fig. 12c
        // shows detection is a small share of latency).
        let kept = ((retention * n as f64).round() as usize).clamp(1, n);
        let sel_row: Vec<u32> = (0..kept).map(|j| (j * n / kept) as u32).collect();
        let selected = vec![sel_row; n];
        let (dense, _) = time_hist(3, || {
            let scores = q.matmul_nt(&k).expect("shape").scale(scale);
            ops::softmax_rows(&scores).matmul(&v).expect("shape")
        });
        let (dota, dota_alloc) =
            time_hist(3, || ops::sparse_attention(&q, &k, &v, &selected, scale));
        let p50 = |h: &Histogram| h.quantile(0.5).unwrap_or(f64::NAN);
        let row = AttnRow {
            benchmark: b.name().to_owned(),
            seq_len: n,
            retention,
            speedup: p50(&dense) / p50(&dota).max(1e-9),
            dense: TimingSummary::from_hist(&dense),
            dota: TimingSummary::from_hist(&dota),
            dota_alloc,
        };
        println!(
            "{:>10}  n {:>5}  dense p50 {:>9.2} ms  DOTA p50 {:>8.2} ms (p99 {:>8.2})  {:>5.1}x",
            row.benchmark,
            row.seq_len,
            row.dense.p50_ms,
            row.dota.p50_ms,
            row.dota.p99_ms,
            row.speedup
        );
        rows.push(row);
    }
    rows
}

fn main() {
    // No `Observability` here: `counter_scenarios` opens its own exclusive
    // trace sessions, which would deadlock against an outer one. The
    // provenance manifest is still written. The profiler gate is
    // independent of the trace gate, so a prof session is safe — it feeds
    // the allocation columns and, when `--profile`/`DOTA_PROF` is set, the
    // profile files written at the end.
    let _manifest = dota_bench::run_manifest("bench_report");
    let prof = dota_prof::session("bench_report");
    println!(
        "Kernel report (parallel feature: {}, pool threads: {})\n",
        cfg!(feature = "parallel"),
        dota_parallel::num_threads()
    );
    println!("GEMM (square, f32): blocked/unrolled kernel vs naive reference");
    let gemm = gemm_rows();
    println!("\nAttention (head_dim 64, retention 10%): dense vs DOTA-sparse");
    let attention = attention_rows();

    println!("\nHardware counters (deterministic; selected totals per scenario)");
    let counters: Vec<CounterScenario> = dota_bench::counter_scenarios()
        .into_iter()
        .map(|(scenario, counters)| CounterScenario { scenario, counters })
        .collect();
    for cs in &counters {
        println!("  {} ({} counters)", cs.scenario, cs.counters.len());
        // Headline totals only; the JSON carries the full snapshot.
        for key in [
            "sched.row_by_row.loads",
            "sched.in_order.loads",
            "sched.ooo.loads",
            "accel.cycles.attention",
            "accel.key_loads",
            "decode.cycles",
            "attn.connections.omitted",
            "dram.bytes_read",
        ] {
            if let Some(v) = cs.counters.get(key) {
                println!("    {key:<28} {v}");
            }
        }
    }

    let report = Report {
        parallel_feature: cfg!(feature = "parallel"),
        pool_threads: dota_parallel::num_threads(),
        host_note: "pool_speedup is host-dependent; ~1.0 on single-core runners",
        alloc_note: "allocation columns need --features prof-alloc; zeros otherwise",
        gemm,
        attention,
        counters,
    };
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_kernels.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&path, json).expect("write BENCH_kernels.json");
    println!("\n[report written to {}]", path.display());

    if let Some(dir) = dota_bench::profile_request() {
        std::fs::create_dir_all(&dir).expect("create profile dir");
        prof.write_folded(&dir.join("profile.folded"))
            .and_then(|()| prof.write_profile(&dir.join("profile.json")))
            .expect("write profile");
        eprintln!("[profile written to {}]", dir.display());
    }
}
