//! Figure 15: token-parallelism design-space exploration — K/V memory
//! access (left axis), Scheduler buffer requirement (right axis), and the
//! combined cost whose minimum picks the paper's parallelism of 4.
//!
//! Also replays the paper's Figure 8/9 worked examples as a sanity header.
//!
//! Run with: `cargo run --release -p dota-bench --bin fig15_parallelism`

use dota_accel::energy;
use dota_accel::sched;
use dota_accel::synth::{sample_selection, SelectionProfile};
use dota_tensor::rng::SeededRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    parallelism: usize,
    key_loads: u64,
    normalized_memory_cost: f64,
    buffers: u64,
    scheduler_cost: f64,
    total_cost: f64,
}

fn main() {
    // Honours --trace/--counters (or DOTA_TRACE/DOTA_COUNTERS); no-op otherwise.
    let _obs = dota_bench::obs_init("fig15_parallelism");
    // Header: the paper's worked examples.
    let fig8 = vec![vec![1u32, 2], vec![0, 1, 4], vec![1, 2], vec![0, 2, 4]];
    let fig9 = vec![
        vec![0u32, 1, 2],
        vec![1, 2, 3],
        vec![1, 4, 5],
        vec![2, 3, 4],
    ];
    println!(
        "Fig. 8 example: row-by-row {} loads, token-parallel {} loads",
        sched::row_by_row_loads(&fig8),
        sched::in_order_schedule(&fig8).total_loads()
    );
    println!(
        "Fig. 9 example: in-order {} loads, out-of-order {} loads\n",
        sched::in_order_schedule(&fig9).total_loads(),
        sched::locality_aware_schedule(&fig9).total_loads()
    );

    // Sweep: Text-like selection (2K tokens, 10% retention) at
    // parallelism 1..=6.
    let n = 2048;
    let k = 205;
    let profile = SelectionProfile::default();
    let mut rng = SeededRng::new(0xf15);
    let sel = sample_selection(n, k, &profile, &mut rng);
    let base_loads = sched::schedule_matrix(&sel, 1, true).total_loads();

    println!("Figure 15: Text (2K tokens, 10% retention), K/V access vs parallelism\n");
    println!(
        "{:>12} {:>10} {:>10} {:>8} {:>11} {:>10}",
        "parallelism", "K/V loads", "mem cost", "buffers", "sched cost", "total"
    );
    let mut rows = Vec::new();
    for t in 1..=6 {
        let loads = sched::schedule_matrix(&sel, t, true).total_loads();
        let mem = loads as f64 / base_loads as f64;
        let buffers = sched::buffer_requirement(t);
        // Scheduler cost model: energy grows with buffer count (CAM-like
        // search across buffers each issue), normalized so that t=4 matches
        // the Filter's share of lane power in Table 2.
        let sched_cost = buffers as f64 * energy::SCHED_ID_PJ
            / (sched::buffer_requirement(4) as f64 * energy::SCHED_ID_PJ)
            * 0.08;
        let total = mem + sched_cost;
        println!("{t:>12} {loads:>10} {mem:>10.3} {buffers:>8} {sched_cost:>11.3} {total:>10.3}",);
        rows.push(Row {
            parallelism: t,
            key_loads: loads,
            normalized_memory_cost: mem,
            buffers,
            scheduler_cost: sched_cost,
            total_cost: total,
        });
    }

    let best = rows
        .iter()
        .min_by(|a, b| a.total_cost.partial_cmp(&b.total_cost).unwrap())
        .unwrap();
    println!(
        "\nlowest combined cost at parallelism {} (paper picks 4: memory gains",
        best.parallelism
    );
    println!("have diminishing returns while buffers grow exponentially).");

    dota_bench::write_json("fig15_parallelism", &rows);
}
