//! Extension experiment (paper §4.4, "Decoder Processing"): autoregressive
//! GEMV-regime decoding is memory-bound; DOTA's detection removes most of
//! the K/V-cache traffic, which is the component that grows with context.
//!
//! Run with: `cargo run --release -p dota-bench --bin decode_scaling`

use dota_accel::decode::simulate_decode;
use dota_accel::AccelConfig;
use dota_transformer::TransformerConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    context: usize,
    dense_us_per_token: f64,
    sparse_us_per_token: f64,
    speedup: f64,
    kv_fraction_dense: f64,
}

fn main() {
    // Honours --trace/--counters (or DOTA_TRACE/DOTA_COUNTERS); no-op otherwise.
    let _obs = dota_bench::obs_init("decode_scaling");
    let cfg = AccelConfig::default();
    let model = TransformerConfig::gpt2(16_384);
    let gen = 32;

    println!("Decoder processing: GPT-2 shape, 32 generated tokens\n");
    println!(
        "{:>8} {:>14} {:>14} {:>9} {:>12}",
        "context", "dense us/tok", "DOTA us/tok", "speedup", "KV share"
    );
    let contexts = [512usize, 1024, 2048, 4096, 8192, 16_000];
    let rows = dota_bench::run_sweep(&contexts, |&context| {
        let dense = simulate_decode(&cfg, &model, context, gen, 1.0, 0.0);
        let sparse = simulate_decode(&cfg, &model, context, gen, 0.1, 0.2);
        Row {
            context,
            dense_us_per_token: dense.us_per_token(gen),
            sparse_us_per_token: sparse.us_per_token(gen),
            speedup: dense.seconds() / sparse.seconds(),
            kv_fraction_dense: dense.kv_stream_cycles as f64 / dense.cycles as f64,
        }
    });
    for row in &rows {
        println!(
            "{:>8} {:>14.0} {:>14.0} {:>8.2}x {:>11.1}%",
            row.context,
            row.dense_us_per_token,
            row.sparse_us_per_token,
            row.speedup,
            row.kv_fraction_dense * 100.0
        );
    }
    println!("\nShape: at short contexts weight streaming dominates (speedup ~1x);");
    println!("as the K/V cache grows past the weight footprint, detection's savings");
    println!("approach 1/retention on the cache traffic and decode speedup climbs.");

    dota_bench::write_json("decode_scaling", &rows);
}
