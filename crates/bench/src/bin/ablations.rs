//! Ablations of DOTA's design choices (DESIGN.md's ablation index):
//!
//! 1. equal-k workload balancing vs a global threshold (accuracy and PE
//!    utilization);
//! 2. out-of-order scheduling on vs off (K/V memory access);
//! 3. detection precision (attention-block latency and energy).
//!
//! Run with: `cargo run --release -p dota-bench --bin ablations`

use dota_accel::synth::SelectionProfile;
use dota_accel::{sched, AccelConfig, Accelerator};
use dota_core::experiments::{self, TrainOptions};
use dota_detector::{DetectorConfig, DotaHook, SelectionStrategy};
use dota_quant::Precision;
use dota_tensor::rng::SeededRng;
use dota_transformer::TransformerConfig;
use dota_workloads::{Benchmark, TaskSpec};
use serde::Serialize;

#[derive(Serialize, Default)]
struct Results {
    balance_accuracy_balanced: f64,
    balance_accuracy_global: f64,
    balance_utilization_balanced: f64,
    balance_utilization_global: f64,
    ooo_loads_on: u64,
    ooo_loads_off: u64,
    precision_latency: Vec<(String, u64)>,
    precision_energy_pj: Vec<(String, f64)>,
}

fn main() {
    // Honours --trace/--counters/--hists (or the DOTA_* env vars); no-op otherwise.
    let _obs = dota_bench::obs_init("ablations");
    let mut results = Results::default();

    // --- 1. Workload balance constraint (§4.3, "proved in 5.2"). ---
    println!("== Ablation 1: equal-k balance constraint ==");
    let spec = TaskSpec::tiny(Benchmark::Text, 32, 5);
    let (train, test) = spec.generate_split(300, 100);
    let (model, mut dense_params) = experiments::build_model(&spec, 5);
    experiments::train_dense(
        &model,
        &mut dense_params,
        &train,
        &TrainOptions {
            epochs: 15,
            early_stop_loss: 0.0,
            ..Default::default()
        },
    );
    for strategy in [
        SelectionStrategy::BalancedTopK,
        SelectionStrategy::GlobalThreshold,
    ] {
        let cfg = DetectorConfig::new(0.25)
            .with_sigma(0.5)
            .with_strategy(strategy);
        let mut params = dense_params.clone();
        let mut hook = DotaHook::init(cfg, model.config(), &mut params);
        experiments::train_joint(
            &model,
            &mut params,
            &mut hook,
            &train,
            &TrainOptions {
                epochs: 10,
                warmup_epochs: 3,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1)
        });
        let acc = experiments::eval_accuracy(&model, &params, &test, &hook.inference(&params));
        // Utilization: with T=4 token-parallel groups, a round is fully
        // utilized when all 4 queries have work. Measure on one test
        // sample's detected masks.
        let ids = &test.samples()[0].ids;
        let trace = model.infer(&params, ids, &hook.inference(&params));
        let mut busy = 0u64;
        let mut slots = 0u64;
        for layer in &trace.layers {
            for head in &layer.heads {
                let sel = head.selected.as_ref().expect("sparse");
                let s = sched::schedule_matrix(sel, 4, true);
                for round in &s.rounds {
                    busy += round.assignments.len() as u64;
                    slots += 4;
                }
            }
        }
        let util = busy as f64 / slots.max(1) as f64;
        println!("  {strategy:?}: accuracy {acc:.3}, PE utilization {util:.3}");
        match strategy {
            SelectionStrategy::BalancedTopK => {
                results.balance_accuracy_balanced = acc;
                results.balance_utilization_balanced = util;
            }
            SelectionStrategy::GlobalThreshold => {
                results.balance_accuracy_global = acc;
                results.balance_utilization_global = util;
            }
        }
    }
    println!("  (paper: the constraint costs negligible accuracy and keeps rows in sync)\n");

    // --- 2. Out-of-order scheduling. ---
    println!("== Ablation 2: out-of-order scheduling ==");
    let n = 2048;
    let k = 205;
    let mut rng = SeededRng::new(2);
    let sel = dota_accel::synth::sample_selection(n, k, &SelectionProfile::default(), &mut rng);
    let on = sched::schedule_matrix(&sel, 4, true).total_loads();
    let off = sched::schedule_matrix(&sel, 4, false).total_loads();
    println!(
        "  K/V loads with OoO: {on}; without: {off}; reduction {:.2}x",
        off as f64 / on as f64
    );
    println!("  row-by-row baseline: {}\n", sched::row_by_row_loads(&sel));
    results.ooo_loads_on = on;
    results.ooo_loads_off = off;

    // --- 3. Detection precision. ---
    println!("== Ablation 3: detection precision (Text 2K, retention 10%) ==");
    let model_cfg = TransformerConfig::lra(2048, 2);
    for precision in [Precision::Int8, Precision::Int4, Precision::Int2] {
        let cfg = AccelConfig {
            detect_precision: precision,
            ..Default::default()
        };
        let rep = Accelerator::new(cfg).simulate_shape(
            &model_cfg,
            2048,
            0.1,
            0.2,
            &SelectionProfile::default(),
        );
        println!(
            "  {precision}: detection {} cycles, total energy {:.2} uJ",
            rep.cycles.detection,
            rep.energy.total_pj() / 1e6
        );
        results
            .precision_latency
            .push((precision.to_string(), rep.cycles.detection));
        results
            .precision_energy_pj
            .push((precision.to_string(), rep.energy.total_pj()));
    }
    println!("  (narrower detection precision shrinks the estimate's latency share)");

    dota_bench::write_json("ablations", &results);
}
