//! Figure 14: design-space exploration on the Text benchmark —
//! (a) dimension-reduction factor σ and (b) detection quantization
//! precision vs model accuracy, at fixed retention.
//!
//! Run with: `cargo run --release -p dota-bench --bin fig14_dse`

use dota_core::experiments::{self, TrainOptions};
use dota_detector::{DetectorConfig, DotaHook};
use dota_quant::Precision;
use dota_transformer::NoHook;
use dota_workloads::{Benchmark, TaskSpec};
use serde::Serialize;

#[derive(Serialize)]
struct SigmaPoint {
    sigma: f64,
    accuracy: f64,
}

#[derive(Serialize)]
struct PrecisionPoint {
    precision: String,
    accuracy: f64,
}

#[derive(Serialize)]
struct Results {
    retention: f64,
    dense_accuracy: f64,
    sigma_sweep: Vec<SigmaPoint>,
    precision_sweep: Vec<PrecisionPoint>,
}

fn main() {
    // Honours --trace/--counters/--hists (or the DOTA_* env vars); no-op otherwise.
    let _obs = dota_bench::obs_init("fig14_dse");
    let retention = 0.25; // fixed, like the paper's 10% at full scale
    let spec = TaskSpec::tiny(Benchmark::Text, 32, 99);
    let (train, test) = spec.generate_split(150, 100);
    let (model, mut dense_params) = experiments::build_model(&spec, 99);
    println!("Training dense Text model...");
    experiments::train_dense(
        &model,
        &mut dense_params,
        &train,
        &TrainOptions {
            epochs: 12,
            ..Default::default()
        },
    );
    let dense_accuracy = experiments::eval_accuracy(&model, &dense_params, &test, &NoHook);
    println!("dense accuracy: {dense_accuracy:.3}\n");

    // (a) sigma sweep at the default precision (INT4).
    // head_dim is 16 here, so sigma maps to ranks 2..16.
    let sigmas = [0.125, 0.25, 0.375, 0.5, 0.75, 1.0];
    let mut sigma_sweep = Vec::new();
    println!(
        "Figure 14a: accuracy vs dimension-reduction factor sigma (retention {:.0}%)",
        retention * 100.0
    );
    println!("{:>8} {:>6} {:>10}", "sigma", "rank", "accuracy");
    for &sigma in &sigmas {
        let cfg = DetectorConfig::new(retention).with_sigma(sigma);
        let rank = cfg.rank_for_head_dim(model.config().head_dim());
        let mut params = dense_params.clone();
        let mut hook = DotaHook::init(cfg, model.config(), &mut params);
        experiments::train_joint(
            &model,
            &mut params,
            &mut hook,
            &train,
            &TrainOptions {
                epochs: 8,
                warmup_epochs: 2,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1)
        });
        let acc = experiments::eval_accuracy(&model, &params, &test, &hook.inference(&params));
        println!("{sigma:>8.3} {rank:>6} {acc:>10.3}");
        sigma_sweep.push(SigmaPoint {
            sigma,
            accuracy: acc,
        });
    }

    // (b) precision sweep at a fixed sigma.
    let mut precision_sweep = Vec::new();
    println!("\nFigure 14b: accuracy vs detection precision (sigma 0.5)");
    println!("{:>8} {:>10}", "prec", "accuracy");
    let mut params = dense_params.clone();
    let mut hook = DotaHook::init(
        DetectorConfig::new(retention).with_sigma(0.5),
        model.config(),
        &mut params,
    );
    experiments::train_joint(
        &model,
        &mut params,
        &mut hook,
        &train,
        &TrainOptions {
            epochs: 8,
            warmup_epochs: 2,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1)
    });
    // FP32 reference first, then the integer precisions: only the
    // *inference-time* quantization changes, as in the paper.
    let f32_acc = experiments::eval_accuracy(&model, &params, &test, &hook.inference_f32(&params));
    println!("{:>8} {f32_acc:>10.3}", "FP32");
    precision_sweep.push(PrecisionPoint {
        precision: "FP32".to_owned(),
        accuracy: f32_acc,
    });
    for precision in [Precision::Int8, Precision::Int4, Precision::Int2] {
        let mut cfg_hook = hook.clone();
        // Rebind the inference precision.
        let cfg = DetectorConfig::new(retention)
            .with_sigma(0.5)
            .with_precision(precision);
        cfg_hook = reconfigure(cfg_hook, cfg);
        let acc = experiments::eval_accuracy(&model, &params, &test, &cfg_hook.inference(&params));
        println!("{:>8} {acc:>10.3}", precision.to_string());
        precision_sweep.push(PrecisionPoint {
            precision: precision.to_string(),
            accuracy: acc,
        });
    }
    println!("\nPaper shape: sigma can shrink to ~0.2 and precision to INT4 (often");
    println!("INT2) with negligible accuracy impact.");

    dota_bench::write_json(
        "fig14_dse",
        &Results {
            retention,
            dense_accuracy,
            sigma_sweep,
            precision_sweep,
        },
    );
}

/// Rebuilds a hook with a different inference configuration but the same
/// trained detectors.
fn reconfigure(hook: DotaHook, cfg: DetectorConfig) -> DotaHook {
    hook.with_config(cfg)
}
