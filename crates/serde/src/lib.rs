//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! trait surface the workspace uses — `Serialize`, `Deserialize`, and their
//! derive macros — over a simple JSON-shaped [`Value`] tree instead of
//! serde's visitor machinery. `serde_json` (also shimmed in this workspace)
//! renders and parses that tree.

#![deny(missing_docs)]

// Lets the derive macros' `::serde::...` paths resolve inside this crate's
// own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer outside the `i64` range.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. Insertion order is preserved so serialized documents
    /// keep their field order stable run-to-run.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a field of an object value.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }
}

/// Error produced when a [`Value`] does not match the requested type.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion to a [`Value`] tree. The stand-in for `serde::Serialize`.
pub trait Serialize {
    /// Converts `self` to a dynamic value.
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree. The stand-in for `serde::Deserialize`.
pub trait Deserialize: Sized {
    /// Reads `Self` out of a dynamic value.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserializes a named field of an object value. Used by the derive macro.
///
/// # Errors
///
/// Returns a [`DeError`] when the field is missing or mistyped.
pub fn get_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    let field = v
        .get(name)
        .ok_or_else(|| DeError::new(format!("missing field `{name}`")))?;
    T::from_value(field).map_err(|e| DeError::new(format!("field `{name}`: {e}")))
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    _ => return Err(DeError::new("expected integer")),
                };
                <$t>::try_from(wide).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::UInt(*self),
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Int(i) => u64::try_from(*i).map_err(|_| DeError::new("negative integer")),
            Value::UInt(u) => Ok(*u),
            _ => Err(DeError::new("expected integer")),
        }
    }
}

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    _ => Err(DeError::new("expected number")),
                }
            }
        }
    )*};
}
float_impls!(f32, f64);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(xs) => xs.iter().map(T::from_value).collect(),
            _ => Err(DeError::new("expected array")),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::new("expected object for map")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(xs) => {
                        let mut it = xs.iter();
                        let out = ($(
                            {
                                let _ = $idx;
                                $name::from_value(
                                    it.next().ok_or_else(|| DeError::new("tuple too short"))?,
                                )?
                            },
                        )+);
                        if it.next().is_some() {
                            return Err(DeError::new("tuple too long"));
                        }
                        Ok(out)
                    }
                    _ => Err(DeError::new("expected array for tuple")),
                }
            }
        }
    )*};
}
tuple_impls!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn map_round_trips_in_key_order() {
        use std::collections::BTreeMap;
        let m: BTreeMap<String, u64> = [("b".to_string(), 2u64), ("a".to_string(), 1)]
            .into_iter()
            .collect();
        let v = m.to_value();
        // BTreeMap iterates sorted, and objects preserve insertion order.
        assert_eq!(
            v.as_object()
                .unwrap()
                .iter()
                .map(|(k, _)| k.as_str())
                .collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert_eq!(BTreeMap::<String, u64>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn derive_round_trip() {
        #[derive(Serialize, Deserialize, Debug, PartialEq)]
        struct Inner {
            x: f32,
        }
        #[derive(Serialize, Deserialize, Debug, PartialEq)]
        struct Outer {
            pub name: String,
            pub count: usize,
            pub vals: Vec<f32>,
            pub inner: Inner,
        }
        let o = Outer {
            name: "a".into(),
            count: 3,
            vals: vec![1.0, 2.0],
            inner: Inner { x: 0.5 },
        };
        let v = o.to_value();
        assert_eq!(v.get("count"), Some(&Value::Int(3)));
        assert_eq!(Outer::from_value(&v).unwrap(), o);
    }

    #[test]
    fn missing_field_errors() {
        #[derive(Deserialize, Debug)]
        struct Needs {
            #[allow(dead_code)]
            x: u32,
        }
        let err = Needs::from_value(&Value::Object(vec![])).unwrap_err();
        assert!(err.to_string().contains("missing field `x`"));
    }
}
