//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use — `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, and `Bencher::iter` — with plain
//! wall-clock timing (median of samples) printed to stdout. No statistics
//! engine, no HTML reports; enough to compare kernels run-to-run.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().0, self.sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_bench(&label, self.criterion.sample_size, &mut f);
        self
    }

    /// Runs one benchmark that receives `input` by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_bench(&label, self.criterion.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self(format!("{name}/{param}"))
    }

    /// An id from the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        Self(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

/// Times closures, mirroring `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    n_samples: usize,
}

impl Bencher {
    /// Times `f`, recording one sample per configured sample count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then calibrate the per-sample iteration count so
        // each sample takes at least ~1 ms.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().as_secs_f64().max(1e-9);
        let iters = (1e-3 / once).ceil().clamp(1.0, 1e6) as u64;
        for _ in 0..self.n_samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / iters as f64);
        }
    }
}

/// Executes one benchmark and prints its median time. Used by the
/// `Criterion`/`BenchmarkGroup` methods.
fn run_bench(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        n_samples: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label:<40} (no samples)");
        return;
    }
    b.samples.sort_by(f64::total_cmp);
    let median = b.samples[b.samples.len() / 2];
    println!("  {label:<40} median {}", format_secs(median));
}

fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        c.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 4), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.bench_function(BenchmarkId::from_parameter("p"), |b| {
            b.iter(|| black_box(1))
        });
        group.bench_function("plain", |b| b.iter(|| black_box(2)));
        group.finish();
    }

    #[test]
    fn format_is_human_readable() {
        assert!(format_secs(2.0).ends_with(" s"));
        assert!(format_secs(2e-3).ends_with(" ms"));
        assert!(format_secs(2e-6).ends_with(" us"));
        assert!(format_secs(2e-9).ends_with(" ns"));
    }
}
