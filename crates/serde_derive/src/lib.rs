//! Derive macros for the offline `serde` stand-in.
//!
//! Supports `#[derive(Serialize)]` and `#[derive(Deserialize)]` on
//! non-generic structs with named fields — the only shapes this workspace
//! serializes. Anything else produces a compile error rather than silently
//! misbehaving. No external parser crates are used: the input token stream
//! is walked directly with `proc_macro`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the offline stand-in's Value-tree flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (the offline stand-in's Value-tree flavor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let (name, fields) = match parse_struct(input) {
        Ok(p) => p,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match mode {
        Mode::Serialize => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Mode::Deserialize => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::get_field(v, {f:?})?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Extracts the struct name and its named-field identifiers.
fn parse_struct(input: TokenStream) -> Result<(String, Vec<String>), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes and visibility ahead of the `struct` keyword.
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let s = id.to_string();
            if s == "struct" {
                break;
            }
            if s == "enum" || s == "union" {
                return Err(format!("derive only supports structs, found `{s}`"));
            }
        }
        i += 1;
    }
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("malformed struct declaration".to_string()),
    };
    if matches!(&tokens.get(i + 2), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err("derive does not support generic structs".to_string());
    }
    let body = tokens[i + 2..].iter().find_map(|t| match t {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
        _ => None,
    });
    let body = body.ok_or_else(|| "derive requires named struct fields".to_string())?;
    Ok((name, parse_fields(body)?))
}

/// Splits a brace-group body at top-level commas and pulls out each field's
/// identifier (the ident immediately before the first top-level `:`).
///
/// Angle brackets are plain punctuation in a token stream (not a group), so
/// commas inside generic arguments like `BTreeMap<String, u64>` must be
/// skipped by tracking `<`/`>` depth.
fn parse_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut chunk: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in body {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                chunk.push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                chunk.push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !chunk.is_empty() {
                    fields.push(field_name(&chunk)?);
                    chunk.clear();
                }
            }
            _ => chunk.push(tt),
        }
    }
    if !chunk.is_empty() {
        fields.push(field_name(&chunk)?);
    }
    Ok(fields)
}

fn field_name(chunk: &[TokenTree]) -> Result<String, String> {
    let mut last_ident: Option<String> = None;
    for tt in chunk {
        match tt {
            TokenTree::Punct(p) if p.as_char() == ':' => {
                return last_ident.ok_or_else(|| "field without a name".to_string());
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                // `pub` / `crate` are visibility, not the field name.
                if s != "pub" && s != "crate" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    Err("tuple structs are not supported".to_string())
}
