//! Offline stand-in for `serde_json`.
//!
//! Serializes the `serde` shim's [`Value`] tree to JSON text (compact and
//! pretty) and parses JSON text back into it. Covers the workspace's needs:
//! `to_string`, `to_string_pretty`, and `from_str`.

#![deny(missing_docs)]

pub use serde::Value;

/// JSON serialization/parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Infallible for the shimmed `Serialize` impls; the `Result` mirrors the
/// real serde_json signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty JSON with two-space indentation.
///
/// # Errors
///
/// Infallible for the shimmed `Serialize` impls.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}`/`{:e}` print the shortest representation that
                // round-trips; mirror ryu (real serde_json) by switching to
                // scientific notation outside [1e-5, 1e16), and force a
                // `.0` on integral values so floats stay floats.
                let mag = f.abs();
                if mag != 0.0 && !(1e-5..1e16).contains(&mag) {
                    out.push_str(&format!("{f:e}"));
                } else {
                    let s = f.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(xs) => write_seq(out, indent, depth, '[', ']', xs.iter(), |out, x, d| {
            write_value(out, x, indent, d)
        }),
        Value::Object(fields) => write_seq(
            out,
            indent,
            depth,
            '{',
            '}',
            fields.iter(),
            |out, (k, x), d| {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, x, indent, d);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: I,
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax problem found.
pub fn parse(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing input at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error::new(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::new("invalid \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::new(format!("bad escape at byte {pos}"))),
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 character (multi-byte aware).
                let start = *pos;
                let mut end = start + 1;
                while end < b.len() && b[end] & 0xC0 == 0x80 {
                    end += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..end])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?,
                );
                *pos = end;
            }
        }
    }
    Err(Error::new("unterminated string"))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii number");
    if text.is_empty() {
        return Err(Error::new(format!("expected value at byte {start}")));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Doc {
        name: String,
        version: u32,
        data: Vec<f32>,
    }

    #[test]
    fn round_trip_compact_and_pretty() {
        let d = Doc {
            name: "checkpoint \"x\"\n".into(),
            version: 1,
            data: vec![1.0, -0.5, 3.25e10],
        };
        for json in [to_string(&d).unwrap(), to_string_pretty(&d).unwrap()] {
            let back: Doc = from_str(&json).unwrap();
            assert_eq!(back, d);
        }
    }

    #[test]
    fn pretty_output_shape() {
        let d = Doc {
            name: "a".into(),
            version: 2,
            data: vec![1.5],
        };
        let json = to_string_pretty(&d).unwrap();
        assert!(json.starts_with("{\n  \"name\": \"a\""), "{json}");
        assert!(json.ends_with('}'));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Doc>("{\"name\": }").is_err());
        assert!(from_str::<Doc>("{}").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("[1] trailing").is_err());
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2.5, null, true, "s"], "b": {"c": -3}}"#).unwrap();
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Int(-3)));
        match v.get("a").unwrap() {
            Value::Array(xs) => assert_eq!(xs.len(), 5),
            _ => panic!("expected array"),
        }
    }
}
