//! Cycle-level observability for the DOTA reproduction.
//!
//! The simulator's headline quantities — key-vector loads saved by the
//! locality-aware Scheduler, per-resource busy/idle cycles, RMMU MAC counts
//! by precision, DRAM/SRAM traffic, detected vs omitted attention
//! connections — are *measured* claims in the paper (Figs. 8–10, 15). This
//! crate gives every layer of the workspace a common place to record them:
//!
//! * a **counter registry**: named monotonic `u64` counters
//!   ([`count`]) with snapshot/export helpers. Updates are plain
//!   commutative additions behind one mutex, so totals are bitwise
//!   identical regardless of thread count or scheduling order — the
//!   property the reproducibility tests pin;
//! * a **span/event recorder**: simulated-time events on named hardware
//!   tracks ([`sim_event`]) and wall-clock host spans ([`host_span`]),
//!   exported as Chrome-trace JSON ([`TraceGuard::chrome_trace_json`])
//!   loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! Collection is **off by default** and costs one relaxed atomic load per
//! call site when disabled, so instrumented hot paths stay cheap. A
//! [`session`] turns collection on:
//!
//! ```
//! let trace = dota_trace::session("example");
//! dota_trace::count("sched.loads", 7);
//! dota_trace::sim_event("RmmuFx", "L0.attention", 0, 120);
//! assert_eq!(trace.counter("sched.loads"), 7);
//! let json = trace.chrome_trace_json();
//! assert!(json.contains("L0.attention"));
//! ```
//!
//! Sessions are exclusive: [`session`] blocks until any other live
//! [`TraceGuard`] is dropped (do not nest sessions on one thread — that
//! deadlocks by design rather than silently mixing two recordings). This
//! serializes the tests that assert on counters without any global test
//! ordering.
//!
//! The crate is dependency-free; the Chrome-trace and counters JSON are
//! emitted by hand so the simulator crates do not pull serialization into
//! their dependency graphs.

#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Process ID used for host-side (wall-clock) spans in the Chrome trace.
pub const HOST_PID: u32 = 0;
/// Process ID used for simulated-hardware (cycle-time) events.
pub const SIM_PID: u32 = 1;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SESSION_GATE: Mutex<()> = Mutex::new(());
static STATE: Mutex<State> = Mutex::new(State::new());
static NEXT_HOST_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Host-span bookkeeping: this thread's Chrome tid and its current
    /// span-nesting depth (depth guarantees well-nested X events per tid).
    static HOST_THREAD: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

#[derive(Debug)]
struct Event {
    /// Chrome event phase: `'X'` for complete spans, `'C'` for counter
    /// samples (rendered as a stacked-area track; `dur_us` is unused).
    ph: char,
    pid: u32,
    tid: u64,
    name: String,
    cat: &'static str,
    /// Start timestamp in microseconds (cycles map 1:1 to µs on sim tracks).
    ts_us: f64,
    dur_us: f64,
    args: Vec<(String, u64)>,
}

#[derive(Debug)]
struct State {
    label: String,
    counters: BTreeMap<String, u64>,
    events: Vec<Event>,
    /// Simulated-hardware track name → Chrome tid.
    sim_tracks: BTreeMap<String, u64>,
    /// Chrome tid → display name (host threads and sim tracks).
    track_names: Vec<(u32, u64, String)>,
    epoch: Option<Instant>,
}

impl State {
    const fn new() -> Self {
        Self {
            label: String::new(),
            counters: BTreeMap::new(),
            events: Vec::new(),
            sim_tracks: BTreeMap::new(),
            track_names: Vec::new(),
            epoch: None,
        }
    }

    fn clear(&mut self, label: &str) {
        self.label.clear();
        self.label.push_str(label);
        self.counters.clear();
        self.events.clear();
        self.sim_tracks.clear();
        self.track_names.clear();
        self.epoch = Some(Instant::now());
    }
}

fn lock_state() -> MutexGuard<'static, State> {
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether a trace session is currently collecting. Instrumented code may
/// use this to skip preparing expensive event arguments.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `delta` to the named counter. A no-op (one atomic load) outside a
/// session. Counters are monotonic sums, so totals are independent of the
/// order and the thread that recorded each increment.
#[inline]
pub fn count(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut st = lock_state();
    *st.counters.entry(name.to_owned()).or_insert(0) += delta;
}

/// Current value of a counter (0 if never written). Only meaningful inside
/// a session.
pub fn counter_value(name: &str) -> u64 {
    lock_state().counters.get(name).copied().unwrap_or(0)
}

/// Snapshot of every counter recorded so far in the current session.
pub fn counters_snapshot() -> BTreeMap<String, u64> {
    lock_state().counters.clone()
}

/// Records a complete event on a simulated-hardware track: `track` is the
/// resource name (becomes a named Chrome thread under the simulator
/// process), `start` and `dur` are in cycles (rendered as µs, 1 cycle =
/// 1 µs). No-op outside a session.
pub fn sim_event(track: &str, name: &str, start_cycles: u64, dur_cycles: u64) {
    sim_event_args(track, name, start_cycles, dur_cycles, &[]);
}

/// [`sim_event`] with counter-style `args` attached (shown in the Chrome
/// trace's detail pane).
pub fn sim_event_args(
    track: &str,
    name: &str,
    start_cycles: u64,
    dur_cycles: u64,
    args: &[(&str, u64)],
) {
    if !enabled() {
        return;
    }
    let mut st = lock_state();
    let tid = match st.sim_tracks.get(track) {
        Some(&tid) => tid,
        None => {
            let tid = st.sim_tracks.len() as u64 + 1;
            st.sim_tracks.insert(track.to_owned(), tid);
            st.track_names.push((SIM_PID, tid, track.to_owned()));
            tid
        }
    };
    st.events.push(Event {
        ph: 'X',
        pid: SIM_PID,
        tid,
        name: name.to_owned(),
        cat: "sim",
        ts_us: start_cycles as f64,
        dur_us: dur_cycles as f64,
        args: args.iter().map(|&(k, v)| (k.to_owned(), v)).collect(),
    });
}

/// Records one sample of a simulated-time counter series (`ph:"C"` in the
/// Chrome trace: viewers render successive samples of the same `name` as a
/// stacked-area track under the simulator process). `ts` is in cycles on
/// the same clock as [`sim_event`], so counter tracks line up with event
/// tracks from any engine sharing the session. No-op outside a session.
pub fn sim_counter(name: &str, ts_cycles: u64, value: u64) {
    if !enabled() {
        return;
    }
    let mut st = lock_state();
    st.events.push(Event {
        ph: 'C',
        pid: SIM_PID,
        tid: 0,
        name: name.to_owned(),
        cat: "sim",
        ts_us: ts_cycles as f64,
        dur_us: 0.0,
        args: vec![("value".to_owned(), value)],
    });
}

/// Opens a wall-clock span on the calling thread's host track; the span is
/// recorded when the returned guard drops. Spans on one thread are strictly
/// nested by construction (RAII), so the exported events are well-nested.
pub fn host_span(name: &str) -> HostSpan {
    if !enabled() {
        return HostSpan {
            name: String::new(),
            start: None,
            tid: 0,
        };
    }
    let tid = HOST_THREAD.with(|t| {
        if t.get() == 0 {
            let tid = NEXT_HOST_TID.fetch_add(1, Ordering::Relaxed);
            t.set(tid);
            let mut st = lock_state();
            st.track_names.push((HOST_PID, tid, format!("host-{tid}")));
        }
        t.get()
    });
    HostSpan {
        name: name.to_owned(),
        start: Some(Instant::now()),
        tid,
    }
}

/// Guard for a wall-clock host span (see [`host_span`]).
#[derive(Debug)]
pub struct HostSpan {
    name: String,
    start: Option<Instant>,
    tid: u64,
}

impl Drop for HostSpan {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        if !enabled() {
            return;
        }
        let mut st = lock_state();
        let Some(epoch) = st.epoch else { return };
        let ts_us = start.duration_since(epoch).as_secs_f64() * 1e6;
        let dur_us = start.elapsed().as_secs_f64() * 1e6;
        let name = std::mem::take(&mut self.name);
        let tid = self.tid;
        st.events.push(Event {
            ph: 'X',
            pid: HOST_PID,
            tid,
            name,
            cat: "host",
            ts_us,
            dur_us,
            args: Vec::new(),
        });
    }
}

/// Begins an exclusive trace session: clears the registry, enables
/// collection, and returns a guard through which the recording is read and
/// exported. Collection stops when the guard drops.
///
/// Blocks until any other live session ends. Do **not** begin a second
/// session from a thread that already holds one — that deadlocks (by
/// design: two interleaved recordings would corrupt each other).
pub fn session(label: &str) -> TraceGuard {
    let gate = SESSION_GATE.lock().unwrap_or_else(PoisonError::into_inner);
    lock_state().clear(label);
    ENABLED.store(true, Ordering::SeqCst);
    TraceGuard { _gate: gate }
}

/// Exclusive handle on the active trace session (see [`session`]).
#[derive(Debug)]
pub struct TraceGuard {
    _gate: MutexGuard<'static, ()>,
}

impl TraceGuard {
    /// Value of one counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        counter_value(name)
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        counters_snapshot()
    }

    /// The session's counters as a flat JSON document:
    /// `{"label": ..., "counters": {name: value, ...}}` with keys in
    /// lexicographic order (deterministic run-to-run).
    pub fn counters_json(&self) -> String {
        let st = lock_state();
        let mut out = String::with_capacity(64 + st.counters.len() * 32);
        out.push_str("{\n  \"label\": ");
        write_json_string(&mut out, &st.label);
        out.push_str(",\n  \"counters\": {");
        for (i, (k, v)) in st.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_json_string(&mut out, k);
            out.push_str(": ");
            out.push_str(&v.to_string());
        }
        if !st.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// The session's events as Chrome-trace JSON (the object form with a
    /// `traceEvents` array plus process/thread-name metadata), loadable in
    /// `chrome://tracing` and Perfetto. Simulated tracks use 1 µs = 1 cycle.
    pub fn chrome_trace_json(&self) -> String {
        let st = lock_state();
        let mut out = String::with_capacity(256 + st.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let push_sep = |out: &mut String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str("\n  ");
        };
        for &(pid, name) in &[(HOST_PID, "host"), (SIM_PID, "dota-accelerator")] {
            push_sep(&mut out, &mut first);
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ));
        }
        for (pid, tid, name) in &st.track_names {
            push_sep(&mut out, &mut first);
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":"
            ));
            write_json_string(&mut out, name);
            out.push_str("}}");
        }
        for e in &st.events {
            push_sep(&mut out, &mut first);
            out.push_str(&format!("{{\"ph\":\"{}\",\"name\":", e.ph));
            write_json_string(&mut out, &e.name);
            out.push_str(&format!(
                ",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{}",
                e.cat,
                e.pid,
                e.tid,
                fmt_f64(e.ts_us)
            ));
            if e.ph == 'X' {
                out.push_str(&format!(",\"dur\":{}", fmt_f64(e.dur_us)));
            }
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(&mut out, k);
                    out.push(':');
                    out.push_str(&v.to_string());
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes the Chrome trace to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace_json())
    }

    /// Writes the counters JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_counters(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.counters_json())
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
    }
}

/// Formats an `f64` for JSON output: integral values print without a
/// fractional part, non-finite values (never produced by the recorders)
/// clamp to 0.
fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "0".to_owned();
    }
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_counts_inside_session() {
        count("free.counter", 5); // outside any session: dropped
        let t = session("t1");
        assert!(enabled());
        count("a.b", 2);
        count("a.b", 3);
        count("c", 1);
        assert_eq!(t.counter("a.b"), 5);
        assert_eq!(t.counter("missing"), 0);
        let snap = t.counters();
        assert_eq!(snap.len(), 2);
        drop(t);
        assert!(!enabled());
    }

    #[test]
    fn sessions_are_isolated() {
        {
            let t = session("first");
            count("x", 10);
            assert_eq!(t.counter("x"), 10);
        }
        let t = session("second");
        assert_eq!(t.counter("x"), 0, "stale counter leaked across sessions");
    }

    #[test]
    fn concurrent_counts_sum_exactly() {
        let t = session("threads");
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        count("hits", 1);
                    }
                });
            }
        });
        assert_eq!(t.counter("hits"), 8000);
    }

    #[test]
    fn counters_json_shape() {
        let t = session("json \"quoted\"");
        count("b", 2);
        count("a", 1);
        let json = t.counters_json();
        assert!(json.contains("\"label\": \"json \\\"quoted\\\"\""));
        // Lexicographic key order.
        let a = json.find("\"a\"").unwrap();
        let b = json.find("\"b\"").unwrap();
        assert!(a < b);
    }

    #[test]
    fn chrome_trace_records_events_and_tracks() {
        let t = session("chrome");
        sim_event("RmmuFx", "L0.linear", 0, 100);
        sim_event_args("RmmuFx", "L0.attention", 100, 50, &[("loads", 7)]);
        sim_event("DramPort", "L0.weights", 0, 30);
        {
            let _s = host_span("build");
        }
        let json = t.chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("L0.attention"));
        assert!(json.contains("\"loads\":7"));
        assert!(json.contains("RmmuFx"));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"cat\":\"host\""));
    }

    #[test]
    fn sim_counters_emit_counter_phase_events() {
        let t = session("counters");
        sim_counter("serve.queue_depth", 0, 3);
        sim_counter("serve.queue_depth", 120, 5);
        let json = t.chrome_trace_json();
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 2, "{json}");
        assert!(json.contains("\"value\":5"));
        // Counter samples carry a timestamp but no duration.
        assert!(json.contains("\"ts\":120,\"args\""), "{json}");
        // Outside a session the call is a no-op.
        drop(t);
        sim_counter("serve.queue_depth", 0, 1);
        let t = session("empty");
        assert!(!t.chrome_trace_json().contains("\"ph\":\"C\""));
    }

    #[test]
    fn sim_tracks_get_distinct_tids() {
        let t = session("tids");
        sim_event("A", "x", 0, 1);
        sim_event("B", "y", 0, 1);
        sim_event("A", "z", 1, 1);
        let json = t.chrome_trace_json();
        // Exactly two sim thread_name records.
        let count = json.matches("thread_name").count();
        assert_eq!(count, 2, "{json}");
    }

    #[test]
    fn fmt_f64_integral_and_fractional() {
        assert_eq!(fmt_f64(12.0), "12");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(f64::NAN), "0");
    }
}
