//! Learning-rate schedules.
//!
//! The tiny post-layer-norm Transformers trained in this workspace need
//! linear warm-up to escape their initialization plateau (see
//! `dota-core::experiments`); fine-tuning benefits from decay. Schedules
//! compose: a [`Schedule`] maps a 1-based optimizer step to a multiplier of
//! the base rate.

/// A learning-rate schedule: step → multiplier of the base rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// Constant rate.
    Constant,
    /// Linear ramp from 0 over `warmup` steps, then constant.
    Warmup {
        /// Ramp length in steps.
        warmup: usize,
    },
    /// Linear warm-up then cosine decay to `floor` over `total` steps.
    WarmupCosine {
        /// Ramp length in steps.
        warmup: usize,
        /// Total steps (decay completes here).
        total: usize,
        /// Final multiplier in `[0, 1]`.
        floor: f32,
    },
    /// Step decay: multiply by `gamma` every `every` steps.
    StepDecay {
        /// Interval between decays.
        every: usize,
        /// Per-interval multiplier in `(0, 1]`.
        gamma: f32,
    },
}

impl Schedule {
    /// The multiplier at 1-based optimizer step `step`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule's parameters are degenerate (`total <
    /// warmup`, `every == 0`, `gamma` outside `(0, 1]`, `floor` outside
    /// `[0, 1]`).
    pub fn multiplier(&self, step: usize) -> f32 {
        match *self {
            Schedule::Constant => 1.0,
            Schedule::Warmup { warmup } => {
                if warmup == 0 {
                    1.0
                } else {
                    (step as f32 / warmup as f32).min(1.0)
                }
            }
            Schedule::WarmupCosine {
                warmup,
                total,
                floor,
            } => {
                assert!(total >= warmup.max(1), "total must cover the warmup");
                assert!((0.0..=1.0).contains(&floor), "floor out of range");
                if warmup > 0 && step < warmup {
                    return step as f32 / warmup as f32;
                }
                let progress = ((step - warmup) as f32 / (total - warmup).max(1) as f32).min(1.0);
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
                floor + (1.0 - floor) * cos
            }
            Schedule::StepDecay { every, gamma } => {
                assert!(every > 0, "decay interval must be positive");
                assert!(gamma > 0.0 && gamma <= 1.0, "gamma out of range");
                gamma.powi((step / every) as i32)
            }
        }
    }

    /// The absolute learning rate at `step` for a base rate `lr`.
    pub fn lr_at(&self, lr: f32, step: usize) -> f32 {
        lr * self.multiplier(step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        for step in [1, 10, 1000] {
            assert_eq!(Schedule::Constant.multiplier(step), 1.0);
        }
    }

    #[test]
    fn warmup_ramps_linearly_then_holds() {
        let s = Schedule::Warmup { warmup: 100 };
        assert!((s.multiplier(50) - 0.5).abs() < 1e-6);
        assert_eq!(s.multiplier(100), 1.0);
        assert_eq!(s.multiplier(5000), 1.0);
        assert_eq!(Schedule::Warmup { warmup: 0 }.multiplier(1), 1.0);
    }

    #[test]
    fn warmup_cosine_decays_to_floor() {
        let s = Schedule::WarmupCosine {
            warmup: 10,
            total: 110,
            floor: 0.1,
        };
        assert!((s.multiplier(5) - 0.5).abs() < 1e-6);
        assert!((s.multiplier(10) - 1.0).abs() < 1e-6);
        // Midpoint of the cosine: (1 + floor)/2.
        assert!((s.multiplier(60) - 0.55).abs() < 1e-2);
        assert!((s.multiplier(110) - 0.1).abs() < 1e-6);
        assert!((s.multiplier(9999) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn cosine_is_monotone_after_warmup() {
        let s = Schedule::WarmupCosine {
            warmup: 5,
            total: 105,
            floor: 0.0,
        };
        let mut prev = f32::INFINITY;
        for step in 5..=105 {
            let m = s.multiplier(step);
            assert!(m <= prev + 1e-6, "not monotone at {step}");
            prev = m;
        }
    }

    #[test]
    fn step_decay_halves() {
        let s = Schedule::StepDecay {
            every: 10,
            gamma: 0.5,
        };
        assert_eq!(s.multiplier(9), 1.0);
        assert_eq!(s.multiplier(10), 0.5);
        assert_eq!(s.multiplier(25), 0.25);
    }

    #[test]
    fn lr_at_scales_base() {
        let s = Schedule::Warmup { warmup: 10 };
        assert!((s.lr_at(0.01, 5) - 0.005).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "total must cover")]
    fn rejects_degenerate_cosine() {
        let s = Schedule::WarmupCosine {
            warmup: 100,
            total: 10,
            floor: 0.0,
        };
        let _ = s.multiplier(1);
    }
}
