//! Reverse-mode automatic differentiation over matrices.
//!
//! The paper's key algorithmic step (§3.2) is *joint optimization*: the
//! Transformer parameters and the detector's low-rank transformation
//! parameters are trained together against `L = L_model + λ·L_MSE` (Eq. 6),
//! with gradients from the MSE estimation loss flowing into both the
//! low-rank score matrix `S̃` and the full-rank score matrix `S`. Doing
//! that from scratch requires gradients through matmuls, (masked) softmax,
//! layer norm and GELU — exactly the op set implemented here.
//!
//! The design is a classic tape: a [`Graph`] owns an arena of nodes, every
//! op returns a [`Var`] handle, and [`Graph::backward`] walks the arena in
//! reverse, accumulating gradients. Trainable parameters live outside the
//! graph in a [`ParamSet`] so the tape can be rebuilt every step while
//! optimizer state ([`Sgd`], [`Adam`]) persists.
//!
//! # Example
//!
//! ```
//! use dota_autograd::{Graph, ParamSet, Sgd, Optimizer};
//! use dota_tensor::Matrix;
//!
//! // Fit y = x * w with squared error.
//! let mut params = ParamSet::new();
//! let w = params.add("w", Matrix::zeros(1, 1));
//! let mut opt = Sgd::new(0.2);
//! for _ in 0..50 {
//!     let mut g = Graph::new();
//!     let x = g.constant(Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap());
//!     let y = g.constant(Matrix::from_rows(&[&[3.0], &[6.0]]).unwrap());
//!     let wv = g.param(&params, w);
//!     let pred = g.matmul(x, wv);
//!     let loss = g.mse(pred, y);
//!     g.backward(loss);
//!     opt.step(&mut params, &g);
//! }
//! assert!((params.value(w)[(0, 0)] - 3.0).abs() < 1e-3);
//! ```

#![deny(missing_docs)]

pub mod gradcheck;
mod graph;
mod optim;
pub mod schedule;

pub use graph::{Graph, Var};
pub use optim::{Adam, Optimizer, ParamId, ParamSet, Sgd};
