use crate::Graph;
use dota_tensor::Matrix;

/// Identifier of a trainable parameter in a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

/// A store of named trainable parameters.
///
/// Parameters outlive any single [`Graph`]: each training step registers
/// them into a fresh tape with [`Graph::param`], runs backward, and hands
/// the graph to an [`Optimizer`] which pulls the per-parameter gradients and
/// updates the stored values.
#[derive(Debug, Default, Clone)]
pub struct ParamSet {
    names: Vec<String>,
    values: Vec<Matrix>,
}

impl ParamSet {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with an initial value, returning its id.
    pub fn add(&mut self, name: &str, init: Matrix) -> ParamId {
        self.names.push(name.to_owned());
        self.values.push(init);
        ParamId(self.values.len() - 1)
    }

    /// The current value of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different `ParamSet`.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable access to a parameter value (used by optimizers and tests).
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different `ParamSet`.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterator over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Global L2 norm of all gradients present in `graph`, useful for
    /// monitoring training and clipping.
    pub fn grad_norm(&self, graph: &Graph) -> f32 {
        let mut acc = 0.0f32;
        for id in self.ids() {
            if let Some(g) = graph.param_grad(id) {
                acc += g.iter().map(|x| x * x).sum::<f32>();
            }
        }
        acc.sqrt()
    }

    /// Per-parameter L2 gradient norms present in `graph`, as
    /// `(name, norm)` pairs in registration order. Parameters without a
    /// gradient on this tape are omitted. The telemetry hook behind the
    /// per-step `grad_norm.*` metrics.
    pub fn grad_norms(&self, graph: &Graph) -> Vec<(&str, f32)> {
        self.ids()
            .filter_map(|id| {
                graph.param_grad(id).map(|g| {
                    let sq: f32 = g.iter().map(|x| x * x).sum();
                    (self.name(id), sq.sqrt())
                })
            })
            .collect()
    }

    /// The largest per-parameter gradient L2 norm in `graph` (0 when the
    /// tape holds no gradients) — the norm that saturates first under
    /// clipping, and the first place exploding gradients show up.
    pub fn max_grad_norm(&self, graph: &Graph) -> f32 {
        self.grad_norms(graph)
            .into_iter()
            .map(|(_, n)| n)
            .fold(0.0, f32::max)
    }
}

/// A gradient-descent optimizer over a [`ParamSet`].
///
/// The trait is sealed in spirit — the workspace provides [`Sgd`] and
/// [`Adam`] — but is left open so experiments can plug in variants.
pub trait Optimizer {
    /// Applies one update using the gradients recorded in `graph`
    /// (after [`Graph::backward`]). Parameters without gradients are left
    /// untouched.
    fn step(&mut self, params: &mut ParamSet, graph: &Graph);
}

/// Stochastic gradient descent with optional momentum and gradient clipping.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    clip: Option<f32>,
    velocity: Vec<Option<Matrix>>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            clip: None,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self {
            momentum,
            ..Self::new(lr)
        }
    }

    /// Enables global-norm gradient clipping at `max_norm`.
    pub fn clip_norm(mut self, max_norm: f32) -> Self {
        self.clip = Some(max_norm);
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (e.g. for a schedule).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet, graph: &Graph) {
        if self.velocity.len() < params.len() {
            self.velocity.resize(params.len(), None);
        }
        let scale = clip_scale(params, graph, self.clip);
        for (i, id) in params.ids().enumerate().collect::<Vec<_>>() {
            let Some(mut g) = graph.param_grad(id) else {
                continue;
            };
            g.map_inplace(|x| x * scale);
            let update = if self.momentum > 0.0 {
                let v = match self.velocity[i].take() {
                    Some(prev) => prev.scale(self.momentum).add(&g).expect("shape"),
                    None => g,
                };
                self.velocity[i] = Some(v.clone());
                v
            } else {
                g
            };
            let p = params.value_mut(id);
            for (pv, uv) in p.iter_mut().zip(update.iter()) {
                *pv -= self.lr * uv;
            }
        }
    }
}

/// Adam optimizer (Kingma & Ba) with optional gradient clipping.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    clip: Option<f32>,
    t: u64,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
}

impl Adam {
    /// Adam with standard hyperparameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: None,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Enables global-norm gradient clipping at `max_norm`.
    pub fn clip_norm(mut self, max_norm: f32) -> Self {
        self.clip = Some(max_norm);
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet, graph: &Graph) {
        if self.m.len() < params.len() {
            self.m.resize(params.len(), None);
            self.v.resize(params.len(), None);
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let scale = clip_scale(params, graph, self.clip);
        for (i, id) in params.ids().enumerate().collect::<Vec<_>>() {
            let Some(mut g) = graph.param_grad(id) else {
                continue;
            };
            g.map_inplace(|x| x * scale);
            let m_prev = self.m[i]
                .take()
                .unwrap_or_else(|| Matrix::zeros(g.rows(), g.cols()));
            let v_prev = self.v[i]
                .take()
                .unwrap_or_else(|| Matrix::zeros(g.rows(), g.cols()));
            let m_new = m_prev
                .scale(self.beta1)
                .add(&g.scale(1.0 - self.beta1))
                .expect("shape");
            let v_new = v_prev
                .scale(self.beta2)
                .add(&g.map(|x| x * x).scale(1.0 - self.beta2))
                .expect("shape");
            {
                let p = params.value_mut(id);
                for ((pv, mv), vv) in p.iter_mut().zip(m_new.iter()).zip(v_new.iter()) {
                    let m_hat = mv / bc1;
                    let v_hat = vv / bc2;
                    *pv -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
                }
            }
            self.m[i] = Some(m_new);
            self.v[i] = Some(v_new);
        }
    }
}

/// Computes the multiplicative factor that clips the global gradient norm to
/// `clip`, or 1.0 when clipping is disabled or unnecessary.
fn clip_scale(params: &ParamSet, graph: &Graph, clip: Option<f32>) -> f32 {
    match clip {
        Some(max) => {
            let norm = params.grad_norm(graph);
            if norm > max && norm > 0.0 {
                max / norm
            } else {
                1.0
            }
        }
        None => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dota_tensor::rng::SeededRng;

    /// Builds the quadratic loss ||x*w - y||^2-style regression graph.
    fn regression_step(
        params: &ParamSet,
        w: ParamId,
        x: &Matrix,
        y: &Matrix,
    ) -> (Graph, crate::Var) {
        let mut g = Graph::new();
        let xv = g.constant(x.clone());
        let yv = g.constant(y.clone());
        let wv = g.param(params, w);
        let pred = g.matmul(xv, wv);
        let loss = g.mse(pred, yv);
        g.backward(loss);
        (g, loss)
    }

    #[test]
    fn sgd_converges_on_linear_regression() {
        let mut rng = SeededRng::new(1);
        let x = rng.normal_matrix(32, 4, 1.0);
        let w_true = rng.normal_matrix(4, 2, 1.0);
        let y = x.matmul(&w_true).unwrap();
        let mut params = ParamSet::new();
        let w = params.add("w", Matrix::zeros(4, 2));
        let mut opt = Sgd::new(0.1);
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            let (g, loss) = regression_step(&params, w, &x, &y);
            last = g.value(loss)[(0, 0)];
            opt.step(&mut params, &g);
        }
        assert!(last < 1e-3, "sgd final loss {last}");
    }

    #[test]
    fn momentum_accelerates() {
        let mut rng = SeededRng::new(2);
        let x = rng.normal_matrix(32, 4, 1.0);
        let w_true = rng.normal_matrix(4, 2, 1.0);
        let y = x.matmul(&w_true).unwrap();

        let run = |mut opt: Sgd| {
            let mut params = ParamSet::new();
            let w = params.add("w", Matrix::zeros(4, 2));
            let mut last = f32::INFINITY;
            for _ in 0..40 {
                let (g, loss) = regression_step(&params, w, &x, &y);
                last = g.value(loss)[(0, 0)];
                opt.step(&mut params, &g);
            }
            last
        };
        let plain = run(Sgd::new(0.02));
        let momentum = run(Sgd::with_momentum(0.02, 0.9));
        assert!(momentum < plain, "momentum {momentum} vs plain {plain}");
    }

    #[test]
    fn adam_converges_on_linear_regression() {
        let mut rng = SeededRng::new(3);
        let x = rng.normal_matrix(32, 4, 1.0);
        let w_true = rng.normal_matrix(4, 2, 1.0);
        let y = x.matmul(&w_true).unwrap();
        let mut params = ParamSet::new();
        let w = params.add("w", Matrix::zeros(4, 2));
        let mut opt = Adam::new(0.05);
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let (g, loss) = regression_step(&params, w, &x, &y);
            last = g.value(loss)[(0, 0)];
            opt.step(&mut params, &g);
        }
        assert!(last < 1e-3, "adam final loss {last}");
    }

    #[test]
    fn clipping_bounds_update() {
        let mut params = ParamSet::new();
        let w = params.add("w", Matrix::filled(1, 1, 0.0));
        let x = Matrix::filled(1, 1, 1000.0);
        let y = Matrix::filled(1, 1, 1.0);
        let (g, _) = regression_step(&params, w, &x, &y);
        let raw_norm = params.grad_norm(&g);
        assert!(raw_norm > 100.0);
        let mut opt = Sgd::new(1.0).clip_norm(1.0);
        opt.step(&mut params, &g);
        // With the global norm clipped to 1, the update magnitude is <= lr.
        assert!(params.value(w)[(0, 0)].abs() <= 1.0 + 1e-5);
    }

    #[test]
    fn untouched_params_stay_fixed() {
        let mut params = ParamSet::new();
        let used = params.add("used", Matrix::filled(1, 1, 1.0));
        let unused = params.add("unused", Matrix::filled(1, 1, 5.0));
        let mut g = Graph::new();
        let uv = g.param(&params, used);
        let sq = g.hadamard(uv, uv);
        g.backward(sq);
        let mut opt = Adam::new(0.1);
        opt.step(&mut params, &g);
        assert_eq!(params.value(unused)[(0, 0)], 5.0);
        assert_ne!(params.value(used)[(0, 0)], 1.0);
    }

    #[test]
    fn param_set_accessors() {
        let mut params = ParamSet::new();
        assert!(params.is_empty());
        let a = params.add("alpha", Matrix::zeros(2, 3));
        assert_eq!(params.name(a), "alpha");
        assert_eq!(params.len(), 1);
        assert_eq!(params.num_scalars(), 6);
        assert!(!params.is_empty());
    }
}
