use crate::optim::{ParamId, ParamSet};
use dota_tensor::{ops, Matrix};

/// A handle to a node in a [`Graph`].
///
/// `Var`s are cheap copyable indices; they are only meaningful with the
/// graph that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

#[derive(Debug)]
enum Op {
    Leaf {
        param: Option<ParamId>,
    },
    MatMul(Var, Var),
    MatMulNT(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Hadamard(Var, Var),
    Scale(Var, f32),
    AddBias(Var, Var),
    Transpose(Var),
    SoftmaxRows(Var),
    MaskedSoftmaxRows(Var, Vec<Vec<bool>>),
    LayerNorm {
        x: Var,
        gamma: Var,
        beta: Var,
        normalized: Matrix,
        inv_std: Vec<f32>,
    },
    Gelu(Var),
    Relu(Var),
    Sigmoid(Var),
    Tanh(Var),
    SumAll(Var),
    Embedding {
        table: Var,
        ids: Vec<usize>,
    },
    CrossEntropy {
        logits: Var,
        targets: Vec<usize>,
        probs: Matrix,
    },
    Mse(Var, Var),
    MeanRows(Var),
    SliceCols {
        x: Var,
        c0: usize,
        c1: usize,
    },
    HCat(Vec<Var>),
}

#[derive(Debug)]
struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
}

/// A reverse-mode autodiff tape over [`Matrix`] values.
///
/// Build the forward computation with the op methods, then call
/// [`backward`](Graph::backward) on a scalar (1×1) loss. Gradients are
/// accumulated per node and can be read back with [`grad`](Graph::grad) or,
/// for trainable parameters, collected by an optimizer.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a non-trainable input (no gradient is needed, but one is still
    /// computed if it participates in the graph).
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf { param: None })
    }

    /// Adds a trainable parameter by copying its current value from a
    /// [`ParamSet`]. After [`backward`](Graph::backward), the gradient is
    /// retrievable via [`param_grad`](Graph::param_grad).
    pub fn param(&mut self, params: &ParamSet, id: ParamId) -> Var {
        self.push(params.value(id).clone(), Op::Leaf { param: Some(id) })
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The gradient of the loss with respect to `v`, if `backward` has run
    /// and `v` participated in the loss.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    /// The gradient of the loss with respect to parameter `id`, summed over
    /// every use of that parameter in this graph.
    pub fn param_grad(&self, id: ParamId) -> Option<Matrix> {
        let mut acc: Option<Matrix> = None;
        for node in &self.nodes {
            if let Op::Leaf { param: Some(p) } = node.op {
                if p == id {
                    if let Some(g) = &node.grad {
                        acc = Some(match acc {
                            None => g.clone(),
                            Some(a) => a.add(g).expect("same param, same shape"),
                        });
                    }
                }
            }
        }
        acc
    }

    // ---- forward ops ----

    /// Matrix product `a * b`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b)).expect("matmul shapes");
        self.push(v, Op::MatMul(a, b))
    }

    /// Matrix product `a * b^T` (the `Q K^T` kernel).
    ///
    /// # Panics
    ///
    /// Panics if the operands' column counts disagree.
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let v = self
            .value(a)
            .matmul_nt(self.value(b))
            .expect("matmul_nt shapes");
        self.push(v, Op::MatMulNT(a, b))
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b)).expect("add shapes");
        self.push(v, Op::Add(a, b))
    }

    /// Element-wise difference `a - b`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b)).expect("sub shapes");
        self.push(v, Op::Sub(a, b))
    }

    /// Element-wise product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        let v = self
            .value(a)
            .hadamard(self.value(b))
            .expect("hadamard shapes");
        self.push(v, Op::Hadamard(a, b))
    }

    /// Scalar multiple `a * s`.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).scale(s);
        self.push(v, Op::Scale(a, s))
    }

    /// Adds a `1 x n` bias row to every row of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x a.cols()`.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let b = self.value(bias);
        assert_eq!(b.rows(), 1, "bias must be a row vector");
        assert_eq!(b.cols(), self.value(a).cols(), "bias width mismatch");
        let v = ops::add_bias(self.value(a), b.row(0));
        self.push(v, Op::AddBias(a, bias))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose();
        self.push(v, Op::Transpose(a))
    }

    /// Row-wise softmax (Eq. 2).
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let v = ops::softmax_rows(self.value(a));
        self.push(v, Op::SoftmaxRows(a))
    }

    /// Row-wise softmax restricted to positions where `mask` is `true`
    /// (§3.2 — surviving weights renormalize over the detected sparse
    /// attention graph).
    ///
    /// # Panics
    ///
    /// Panics if mask dimensions disagree with `a`.
    pub fn masked_softmax_rows(&mut self, a: Var, mask: Vec<Vec<bool>>) -> Var {
        let v = ops::masked_softmax_rows(self.value(a), &mask);
        self.push(v, Op::MaskedSoftmaxRows(a, mask))
    }

    /// Layer normalization with trainable `gamma` (1×n) and `beta` (1×n).
    ///
    /// # Panics
    ///
    /// Panics if `gamma`/`beta` are not `1 x a.cols()`.
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var) -> Var {
        const EPS: f32 = 1e-5;
        let xv = self.value(x);
        let g = self.value(gamma);
        let b = self.value(beta);
        assert_eq!(g.shape(), (1, xv.cols()), "gamma shape");
        assert_eq!(b.shape(), (1, xv.cols()), "beta shape");
        let n = xv.cols() as f32;
        let mut normalized = Matrix::zeros(xv.rows(), xv.cols());
        let mut inv_std = Vec::with_capacity(xv.rows());
        let mut out = Matrix::zeros(xv.rows(), xv.cols());
        for r in 0..xv.rows() {
            let row = xv.row(r);
            let mean: f32 = row.iter().sum::<f32>() / n;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
            let is = 1.0 / (var + EPS).sqrt();
            inv_std.push(is);
            for c in 0..xv.cols() {
                let xhat = (row[c] - mean) * is;
                normalized[(r, c)] = xhat;
                out[(r, c)] = xhat * g[(0, c)] + b[(0, c)];
            }
        }
        self.push(
            out,
            Op::LayerNorm {
                x,
                gamma,
                beta,
                normalized,
                inv_std,
            },
        )
    }

    /// GELU activation (tanh approximation).
    pub fn gelu(&mut self, a: Var) -> Var {
        let v = ops::gelu(self.value(a));
        self.push(v, Op::Gelu(a))
    }

    /// ReLU activation.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = ops::relu(self.value(a));
        self.push(v, Op::Relu(a))
    }

    /// Logistic sigmoid, element-wise.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent, element-wise.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Sum of all elements, as a 1×1 scalar node. Useful for reducing any
    /// matrix-valued penalty into a loss term.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Matrix::from_vec(1, 1, vec![self.value(a).sum()]).expect("scalar");
        self.push(v, Op::SumAll(a))
    }

    /// Embedding lookup: selects rows of `table` by `ids`.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn embedding(&mut self, table: Var, ids: Vec<usize>) -> Var {
        let t = self.value(table);
        let mut out = Matrix::zeros(ids.len(), t.cols());
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < t.rows(), "embedding id {id} out of range");
            out.row_mut(r).copy_from_slice(t.row(id));
        }
        self.push(out, Op::Embedding { table, ids })
    }

    /// Mean cross-entropy between row-wise logits and integer targets.
    /// Returns a scalar (1×1) node.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != logits.rows()` or a target is out of
    /// range.
    pub fn cross_entropy(&mut self, logits: Var, targets: Vec<usize>) -> Var {
        let l = self.value(logits);
        assert_eq!(targets.len(), l.rows(), "one target per row");
        let probs = ops::softmax_rows(l);
        let mut loss = 0.0f32;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < l.cols(), "target {t} out of range");
            loss -= probs[(r, t)].max(1e-12).ln();
        }
        loss /= targets.len().max(1) as f32;
        let v = Matrix::from_vec(1, 1, vec![loss]).expect("scalar");
        self.push(
            v,
            Op::CrossEntropy {
                logits,
                targets,
                probs,
            },
        )
    }

    /// Mean squared error between `a` and `b` (Eq. 5). Returns a scalar
    /// (1×1) node.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mse(&mut self, a: Var, b: Var) -> Var {
        let v = ops::mse(self.value(a), self.value(b));
        let m = Matrix::from_vec(1, 1, vec![v]).expect("scalar");
        self.push(m, Op::Mse(a, b))
    }

    /// Mean over rows, producing a `1 x cols` pooled representation
    /// (sequence pooling for classifier heads).
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let x = self.value(a);
        let mut out = Matrix::zeros(1, x.cols());
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                out[(0, c)] += x[(r, c)];
            }
        }
        let n = x.rows().max(1) as f32;
        out.map_inplace(|v| v / n);
        self.push(out, Op::MeanRows(a))
    }

    /// Extracts columns `c0..c1` (head split in multi-head attention).
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid.
    pub fn slice_cols(&mut self, a: Var, c0: usize, c1: usize) -> Var {
        let v = self.value(a).slice_cols(c0, c1);
        self.push(v, Op::SliceCols { x: a, c0, c1 })
    }

    /// Horizontal concatenation (head concat in multi-head attention).
    ///
    /// # Panics
    ///
    /// Panics if the parts disagree on row count or the list is empty.
    pub fn hcat(&mut self, parts: &[Var]) -> Var {
        let mats: Vec<&Matrix> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Matrix::hcat(&mats).expect("hcat shapes");
        self.push(v, Op::HCat(parts.to_vec()))
    }

    /// Convenience: `a + s*b` on scalars or equal shapes, used to combine
    /// the model loss and the λ-weighted MSE loss (Eq. 6).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_scaled(&mut self, a: Var, b: Var, s: f32) -> Var {
        let sb = self.scale(b, s);
        self.add(a, sb)
    }

    // ---- backward ----

    /// Runs reverse-mode differentiation from scalar node `loss`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not 1×1.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward requires a scalar loss"
        );
        for node in &mut self.nodes {
            node.grad = None;
        }
        self.nodes[loss.0].grad = Some(Matrix::filled(1, 1, 1.0));

        for i in (0..self.nodes.len()).rev() {
            let Some(grad) = self.nodes[i].grad.clone() else {
                continue;
            };
            // Each arm computes the input gradients for node i.
            let updates: Vec<(Var, Matrix)> = match &self.nodes[i].op {
                Op::Leaf { .. } => vec![],
                Op::MatMul(a, b) => {
                    let da = grad.matmul_nt(self.value(*b)).expect("dA");
                    let db = self.value(*a).matmul_tn(&grad).expect("dB");
                    vec![(*a, da), (*b, db)]
                }
                Op::MatMulNT(a, b) => {
                    // C = A B^T: dA = dC B, dB = dC^T A
                    let da = grad.matmul(self.value(*b)).expect("dA");
                    let db = grad.matmul_tn(self.value(*a)).expect("dB");
                    vec![(*a, da), (*b, db)]
                }
                Op::Add(a, b) => vec![(*a, grad.clone()), (*b, grad.clone())],
                Op::Sub(a, b) => vec![(*a, grad.clone()), (*b, grad.scale(-1.0))],
                Op::Hadamard(a, b) => {
                    let da = grad.hadamard(self.value(*b)).expect("dA");
                    let db = grad.hadamard(self.value(*a)).expect("dB");
                    vec![(*a, da), (*b, db)]
                }
                Op::Scale(a, s) => vec![(*a, grad.scale(*s))],
                Op::AddBias(a, bias) => {
                    let mut db = Matrix::zeros(1, grad.cols());
                    for r in 0..grad.rows() {
                        for c in 0..grad.cols() {
                            db[(0, c)] += grad[(r, c)];
                        }
                    }
                    vec![(*a, grad.clone()), (*bias, db)]
                }
                Op::Transpose(a) => vec![(*a, grad.transpose())],
                Op::SoftmaxRows(a) => {
                    let out = &self.nodes[i].value;
                    let mut dx = Matrix::zeros(out.rows(), out.cols());
                    for r in 0..out.rows() {
                        let arow = out.row(r);
                        let grow = grad.row(r);
                        let dot: f32 = arow.iter().zip(grow).map(|(x, y)| x * y).sum();
                        for c in 0..out.cols() {
                            dx[(r, c)] = arow[c] * (grow[c] - dot);
                        }
                    }
                    vec![(*a, dx)]
                }
                Op::MaskedSoftmaxRows(a, mask) => {
                    let out = &self.nodes[i].value;
                    let mut dx = Matrix::zeros(out.rows(), out.cols());
                    for r in 0..out.rows() {
                        let arow = out.row(r);
                        let grow = grad.row(r);
                        let dot: f32 = arow.iter().zip(grow).map(|(x, y)| x * y).sum();
                        for c in 0..out.cols() {
                            if mask[r][c] {
                                dx[(r, c)] = arow[c] * (grow[c] - dot);
                            }
                        }
                    }
                    vec![(*a, dx)]
                }
                Op::LayerNorm {
                    x,
                    gamma,
                    beta,
                    normalized,
                    inv_std,
                } => {
                    let g = self.nodes[gamma.0].value.clone();
                    let rows = grad.rows();
                    let cols = grad.cols();
                    let n = cols as f32;
                    let mut dgamma = Matrix::zeros(1, cols);
                    let mut dbeta = Matrix::zeros(1, cols);
                    let mut dx = Matrix::zeros(rows, cols);
                    for r in 0..rows {
                        let grow = grad.row(r);
                        let xhat = normalized.row(r);
                        for c in 0..cols {
                            dbeta[(0, c)] += grow[c];
                            dgamma[(0, c)] += grow[c] * xhat[c];
                        }
                        // dxhat = grad * gamma
                        let dxhat: Vec<f32> = (0..cols).map(|c| grow[c] * g[(0, c)]).collect();
                        let mean_dxhat: f32 = dxhat.iter().sum::<f32>() / n;
                        let mean_dxhat_xhat: f32 =
                            dxhat.iter().zip(xhat).map(|(a, b)| a * b).sum::<f32>() / n;
                        let is = inv_std[r];
                        for c in 0..cols {
                            dx[(r, c)] = is * (dxhat[c] - mean_dxhat - xhat[c] * mean_dxhat_xhat);
                        }
                    }
                    vec![(*x, dx), (*gamma, dgamma), (*beta, dbeta)]
                }
                Op::Gelu(a) => {
                    const C: f32 = 0.797_884_6; // sqrt(2/pi)
                    let x = self.value(*a);
                    let dx = Matrix::from_fn(x.rows(), x.cols(), |r, c| {
                        let v = x[(r, c)];
                        let u = C * (v + 0.044_715 * v * v * v);
                        let t = u.tanh();
                        let du = C * (1.0 + 3.0 * 0.044_715 * v * v);
                        let d = 0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du;
                        grad[(r, c)] * d
                    });
                    vec![(*a, dx)]
                }
                Op::Relu(a) => {
                    let x = self.value(*a);
                    let dx = Matrix::from_fn(x.rows(), x.cols(), |r, c| {
                        if x[(r, c)] > 0.0 {
                            grad[(r, c)]
                        } else {
                            0.0
                        }
                    });
                    vec![(*a, dx)]
                }
                Op::Sigmoid(a) => {
                    // y = σ(x); dy/dx = y(1-y), from the stored output.
                    let y = &self.nodes[i].value;
                    let dx = Matrix::from_fn(y.rows(), y.cols(), |r, c| {
                        let v = y[(r, c)];
                        grad[(r, c)] * v * (1.0 - v)
                    });
                    vec![(*a, dx)]
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[i].value;
                    let dx = Matrix::from_fn(y.rows(), y.cols(), |r, c| {
                        let v = y[(r, c)];
                        grad[(r, c)] * (1.0 - v * v)
                    });
                    vec![(*a, dx)]
                }
                Op::SumAll(a) => {
                    let x = self.value(*a);
                    let g = grad[(0, 0)];
                    vec![(*a, Matrix::filled(x.rows(), x.cols(), g))]
                }
                Op::Embedding { table, ids } => {
                    let t = self.value(*table);
                    let mut dt = Matrix::zeros(t.rows(), t.cols());
                    for (r, &id) in ids.iter().enumerate() {
                        for c in 0..t.cols() {
                            dt[(id, c)] += grad[(r, c)];
                        }
                    }
                    vec![(*table, dt)]
                }
                Op::CrossEntropy {
                    logits,
                    targets,
                    probs,
                } => {
                    let scale = grad[(0, 0)] / targets.len().max(1) as f32;
                    let mut dl = probs.clone();
                    for (r, &t) in targets.iter().enumerate() {
                        dl[(r, t)] -= 1.0;
                    }
                    dl.map_inplace(|v| v * scale);
                    vec![(*logits, dl)]
                }
                Op::Mse(a, b) => {
                    let av = self.value(*a);
                    let bv = self.value(*b);
                    let n = av.len().max(1) as f32;
                    let scale = grad[(0, 0)] * 2.0 / n;
                    let diff = av.sub(bv).expect("mse shapes").scale(scale);
                    vec![(*a, diff.clone()), (*b, diff.scale(-1.0))]
                }
                Op::MeanRows(a) => {
                    let x = self.value(*a);
                    let n = x.rows().max(1) as f32;
                    let dx = Matrix::from_fn(x.rows(), x.cols(), |_, c| grad[(0, c)] / n);
                    vec![(*a, dx)]
                }
                Op::SliceCols { x, c0, c1 } => {
                    let xv = self.value(*x);
                    let mut dx = Matrix::zeros(xv.rows(), xv.cols());
                    for r in 0..grad.rows() {
                        for c in 0..(c1 - c0) {
                            dx[(r, c0 + c)] = grad[(r, c)];
                        }
                    }
                    vec![(*x, dx)]
                }
                Op::HCat(parts) => {
                    let mut updates = Vec::with_capacity(parts.len());
                    let mut offset = 0;
                    for &p in parts {
                        let w = self.value(p).cols();
                        updates.push((p, grad.slice_cols(offset, offset + w)));
                        offset += w;
                    }
                    updates
                }
            };
            for (var, g) in updates {
                let slot = &mut self.nodes[var.0].grad;
                *slot = Some(match slot.take() {
                    None => g,
                    Some(prev) => prev.add(&g).expect("gradient shapes agree"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use dota_tensor::rng::SeededRng;

    #[test]
    fn matmul_gradients() {
        let mut rng = SeededRng::new(1);
        let a0 = rng.normal_matrix(3, 4, 1.0);
        let b0 = rng.normal_matrix(4, 2, 1.0);
        check_gradients(&[a0, b0], |g, vars| {
            let c = g.matmul(vars[0], vars[1]);
            let sq = g.hadamard(c, c);
            let pooled = g.mean_rows(sq);
            scalar_sum(g, pooled)
        });
    }

    /// Reduces a 1 x n row to a 1 x 1 scalar by summing (matmul with ones).
    fn scalar_sum(g: &mut Graph, row: Var) -> Var {
        let n = g.value(row).cols();
        let ones = g.constant(Matrix::filled(n, 1, 1.0));
        g.matmul(row, ones)
    }

    #[test]
    fn matmul_nt_gradients() {
        let mut rng = SeededRng::new(2);
        let q = rng.normal_matrix(3, 5, 1.0);
        let k = rng.normal_matrix(4, 5, 1.0);
        check_gradients(&[q, k], |g, vars| {
            let s = g.matmul_nt(vars[0], vars[1]);
            let sq = g.hadamard(s, s);
            let pooled = g.mean_rows(sq);
            scalar_sum(g, pooled)
        });
    }

    #[test]
    fn softmax_gradients() {
        let mut rng = SeededRng::new(3);
        let x = rng.normal_matrix(3, 6, 1.0);
        let w = rng.normal_matrix(3, 6, 1.0);
        check_gradients(&[x, w.clone()], move |g, vars| {
            let a = g.softmax_rows(vars[0]);
            let weighted = g.hadamard(a, vars[1]);
            let pooled = g.mean_rows(weighted);
            scalar_sum(g, pooled)
        });
    }

    #[test]
    fn masked_softmax_gradients() {
        let mut rng = SeededRng::new(4);
        let x = rng.normal_matrix(2, 5, 1.0);
        let w = rng.normal_matrix(2, 5, 1.0);
        let mask = vec![
            vec![true, false, true, true, false],
            vec![false, true, true, false, true],
        ];
        check_gradients(&[x, w], move |g, vars| {
            let a = g.masked_softmax_rows(vars[0], mask.clone());
            let weighted = g.hadamard(a, vars[1]);
            let pooled = g.mean_rows(weighted);
            scalar_sum(g, pooled)
        });
    }

    #[test]
    fn layer_norm_gradients() {
        let mut rng = SeededRng::new(5);
        let x = rng.normal_matrix(3, 4, 1.0);
        let gamma = rng.uniform_matrix(1, 4, 0.5, 1.5);
        let beta = rng.normal_matrix(1, 4, 0.1);
        let w = rng.normal_matrix(3, 4, 1.0);
        check_gradients(&[x, gamma, beta, w], move |g, vars| {
            let y = g.layer_norm(vars[0], vars[1], vars[2]);
            let weighted = g.hadamard(y, vars[3]);
            let pooled = g.mean_rows(weighted);
            scalar_sum(g, pooled)
        });
    }

    #[test]
    fn gelu_relu_gradients() {
        let mut rng = SeededRng::new(6);
        let x = rng.normal_matrix(4, 4, 1.0);
        check_gradients(std::slice::from_ref(&x), |g, vars| {
            let y = g.gelu(vars[0]);
            let pooled = g.mean_rows(y);
            scalar_sum(g, pooled)
        });
        // ReLU is non-differentiable at 0; keep inputs away from it.
        let x2 = rng
            .normal_matrix(4, 4, 1.0)
            .map(|v| if v.abs() < 0.05 { 0.2 } else { v });
        check_gradients(&[x2], |g, vars| {
            let y = g.relu(vars[0]);
            let pooled = g.mean_rows(y);
            scalar_sum(g, pooled)
        });
    }

    #[test]
    fn cross_entropy_gradients() {
        let mut rng = SeededRng::new(7);
        let logits = rng.normal_matrix(5, 3, 1.0);
        let targets = vec![0usize, 2, 1, 1, 0];
        check_gradients(&[logits], move |g, vars| {
            g.cross_entropy(vars[0], targets.clone())
        });
    }

    #[test]
    fn mse_gradients() {
        let mut rng = SeededRng::new(8);
        let a = rng.normal_matrix(3, 3, 1.0);
        let b = rng.normal_matrix(3, 3, 1.0);
        check_gradients(&[a, b], |g, vars| g.mse(vars[0], vars[1]));
    }

    #[test]
    fn embedding_gradients() {
        let mut rng = SeededRng::new(9);
        let table = rng.normal_matrix(6, 4, 1.0);
        let ids = vec![1usize, 3, 1, 5];
        let w = rng.normal_matrix(4, 4, 1.0);
        check_gradients(&[table, w], move |g, vars| {
            let e = g.embedding(vars[0], ids.clone());
            let weighted = g.hadamard(e, vars[1]);
            let pooled = g.mean_rows(weighted);
            scalar_sum(g, pooled)
        });
    }

    #[test]
    fn slice_and_hcat_gradients() {
        let mut rng = SeededRng::new(10);
        let x = rng.normal_matrix(3, 6, 1.0);
        check_gradients(&[x], |g, vars| {
            let a = g.slice_cols(vars[0], 0, 3);
            let b = g.slice_cols(vars[0], 3, 6);
            let cat = g.hcat(&[b, a]);
            let sq = g.hadamard(cat, cat);
            let pooled = g.mean_rows(sq);
            scalar_sum(g, pooled)
        });
    }

    #[test]
    fn add_bias_and_transpose_gradients() {
        let mut rng = SeededRng::new(11);
        let x = rng.normal_matrix(3, 4, 1.0);
        let b = rng.normal_matrix(1, 3, 1.0);
        check_gradients(&[x, b], |g, vars| {
            let t = g.transpose(vars[0]);
            let y = g.add_bias(t, vars[1]);
            let sq = g.hadamard(y, y);
            let pooled = g.mean_rows(sq);
            scalar_sum(g, pooled)
        });
    }

    #[test]
    fn sigmoid_tanh_sum_gradients() {
        let mut rng = SeededRng::new(14);
        let x = rng.normal_matrix(3, 4, 1.0);
        check_gradients(std::slice::from_ref(&x), |g, vars| {
            let y = g.sigmoid(vars[0]);
            g.sum_all(y)
        });
        check_gradients(&[x], |g, vars| {
            let y = g.tanh(vars[0]);
            let sq = g.hadamard(y, y);
            g.sum_all(sq)
        });
    }

    #[test]
    fn sum_all_value_and_shape() {
        let mut g = Graph::new();
        let x = g.constant(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap());
        let s = g.sum_all(x);
        assert_eq!(g.value(s).shape(), (1, 1));
        assert_eq!(g.value(s)[(0, 0)], 10.0);
    }

    #[test]
    fn joint_loss_combination() {
        // L = L_ce + lambda * L_mse, gradients flow into both branches.
        let mut rng = SeededRng::new(12);
        let logits = rng.normal_matrix(4, 3, 1.0);
        let s = rng.normal_matrix(4, 4, 1.0);
        let s_tilde = rng.normal_matrix(4, 4, 1.0);
        check_gradients(&[logits, s, s_tilde], |g, vars| {
            let ce = g.cross_entropy(vars[0], vec![0, 1, 2, 0]);
            let mse = g.mse(vars[1], vars[2]);
            g.add_scaled(ce, mse, 0.5)
        });
    }

    #[test]
    fn param_grad_accumulates_over_uses() {
        let mut params = ParamSet::new();
        let w = params.add("w", Matrix::filled(1, 1, 2.0));
        let mut g = Graph::new();
        let wv = g.param(&params, w);
        let prod = g.hadamard(wv, wv); // w^2, dL/dw = 2w = 4
        g.backward(prod);
        let grad = g.param_grad(w).expect("grad exists");
        assert!((grad[(0, 0)] - 4.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_scalar() {
        let mut g = Graph::new();
        let x = g.constant(Matrix::zeros(2, 2));
        g.backward(x);
    }
}
