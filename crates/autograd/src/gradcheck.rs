//! Finite-difference gradient checking.
//!
//! Every op's backward rule in this crate is verified against a central
//! finite difference. The checker is public so downstream crates
//! (`dota-transformer`, `dota-detector`) can validate their composed models
//! the same way.

use crate::{Graph, ParamId, ParamSet};
use dota_tensor::Matrix;

/// Relative tolerance used by [`check_gradients`].
pub const DEFAULT_TOLERANCE: f32 = 2e-2;

/// Checks analytic gradients of `build` against central finite differences.
///
/// `build` receives a fresh [`Graph`] and one [`Var`](crate::Var) per input
/// matrix (registered as trainable parameters) and must return a scalar
/// (1×1) loss node. Every element of every input is perturbed by `±h` and
/// the numeric derivative is compared to the analytic one.
///
/// # Panics
///
/// Panics (test-style assert) if any gradient deviates beyond a combined
/// absolute/relative tolerance.
pub fn check_gradients(inputs: &[Matrix], build: impl Fn(&mut Graph, &[crate::Var]) -> crate::Var) {
    check_gradients_with(inputs, DEFAULT_TOLERANCE, build);
}

/// [`check_gradients`] with an explicit tolerance.
///
/// # Panics
///
/// Panics if any gradient deviates beyond the tolerance.
pub fn check_gradients_with(
    inputs: &[Matrix],
    tol: f32,
    build: impl Fn(&mut Graph, &[crate::Var]) -> crate::Var,
) {
    let mut params = ParamSet::new();
    let ids: Vec<ParamId> = inputs
        .iter()
        .enumerate()
        .map(|(i, m)| params.add(&format!("input{i}"), m.clone()))
        .collect();

    // Analytic gradients.
    let mut g = Graph::new();
    let vars: Vec<crate::Var> = ids.iter().map(|&id| g.param(&params, id)).collect();
    let loss = build(&mut g, &vars);
    assert_eq!(g.value(loss).shape(), (1, 1), "loss must be scalar");
    g.backward(loss);
    let analytic: Vec<Matrix> = ids
        .iter()
        .map(|&id| {
            g.param_grad(id)
                .unwrap_or_else(|| Matrix::zeros(params.value(id).rows(), params.value(id).cols()))
        })
        .collect();

    let eval = |params: &ParamSet| -> f32 {
        let mut g = Graph::new();
        let vars: Vec<crate::Var> = ids.iter().map(|&id| g.param(params, id)).collect();
        let loss = build(&mut g, &vars);
        g.value(loss)[(0, 0)]
    };

    let h = 1e-3f32;
    for (pi, &id) in ids.iter().enumerate() {
        let shape = params.value(id).shape();
        for r in 0..shape.0 {
            for c in 0..shape.1 {
                let orig = params.value(id)[(r, c)];
                params.value_mut(id)[(r, c)] = orig + h;
                let f_plus = eval(&params);
                params.value_mut(id)[(r, c)] = orig - h;
                let f_minus = eval(&params);
                params.value_mut(id)[(r, c)] = orig;
                let numeric = (f_plus - f_minus) / (2.0 * h);
                let got = analytic[pi][(r, c)];
                let denom = numeric.abs().max(got.abs()).max(1.0);
                assert!(
                    (numeric - got).abs() / denom <= tol,
                    "grad mismatch input {pi} at ({r},{c}): numeric {numeric}, analytic {got}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dota_tensor::rng::SeededRng;

    #[test]
    fn passes_on_correct_gradient() {
        let mut rng = SeededRng::new(1);
        let x = rng.normal_matrix(2, 2, 1.0);
        check_gradients(&[x.clone(), x], |g, vars| g.mse(vars[0], vars[1]));
    }

    #[test]
    #[should_panic(expected = "grad mismatch")]
    fn detects_discontinuous_landscape() {
        // relu has a kink at 0: the analytic rule reports the one-sided
        // derivative 0 while the central difference straddling the kink
        // measures 0.5, so a tight tolerance must flag a mismatch.
        let a = Matrix::filled(1, 1, 0.0);
        check_gradients_with(&[a], 1e-9, |g, vars| g.relu(vars[0]));
    }
}
