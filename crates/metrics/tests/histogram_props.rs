//! Property tests pinning the [`dota_metrics::Histogram`] contract:
//! quantiles are monotone in `q`, merging is associative and commutative
//! on everything except the floating-point `sum`, and `p50` lands within
//! one log bucket of the exact nearest-rank median on random data.

use dota_metrics::Histogram;
use proptest::prelude::*;

/// Builds a histogram over `values`.
fn hist(values: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    h.record_all(values.iter().copied());
    h
}

/// The exact nearest-rank `q`-quantile of `values` (matching the
/// histogram's rank definition: the smallest 1-based rank `r` with
/// `r >= q * n`).
fn exact_quantile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let target = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[target - 1]
}

/// Order-and-grouping-insensitive fingerprint of a histogram: the bucket
/// table, count, min, max and a quantile sweep. `sum` is deliberately
/// excluded — f64 addition is not associative, so the merged `sum` (and
/// `mean`) may differ in the last ulps across merge trees.
type Fingerprint = (Vec<(i32, u64)>, u64, Option<f64>, Option<f64>, Vec<f64>);

fn fingerprint(h: &Histogram) -> Fingerprint {
    let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0]
        .iter()
        .filter_map(|&q| h.quantile(q))
        .collect();
    (
        h.buckets().iter().map(|(&k, &c)| (k, c)).collect(),
        h.count(),
        h.min(),
        h.max(),
        qs,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn quantiles_are_monotone_in_q(
        values in proptest::collection::vec(-1e4f64..1e4, 1..150),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let h = hist(&values);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = h.quantile(lo).unwrap();
        let b = h.quantile(hi).unwrap();
        prop_assert!(a <= b, "quantile({lo}) = {a} > quantile({hi}) = {b}");
        // And every quantile stays inside the observed range.
        prop_assert!(a >= h.min().unwrap() && b <= h.max().unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn merge_is_associative_and_commutative(
        xs in proptest::collection::vec(-1e3f64..1e3, 0..60),
        ys in proptest::collection::vec(-1e3f64..1e3, 0..60),
        zs in proptest::collection::vec(-1e3f64..1e3, 0..60),
    ) {
        let (a, b, c) = (hist(&xs), hist(&ys), hist(&zs));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(fingerprint(&left), fingerprint(&right));
        // Commutativity: b ⊕ a == a ⊕ b.
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        prop_assert_eq!(fingerprint(&ba), fingerprint(&ab));
        // Merging equals recording the concatenation.
        let all: Vec<f64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        prop_assert_eq!(fingerprint(&left), fingerprint(&hist(&all)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn p50_is_within_one_bucket_of_exact_median(
        values in proptest::collection::vec(-1e4f64..1e4, 1..200),
    ) {
        let h = hist(&values);
        let p50 = h.quantile(0.5).unwrap();
        let median = exact_quantile(&values, 0.5);
        let dist = (Histogram::bucket_key(p50) - Histogram::bucket_key(median)).abs();
        prop_assert!(
            dist <= 1,
            "p50 {p50} (bucket {}) vs exact median {median} (bucket {}): {} buckets apart",
            Histogram::bucket_key(p50),
            Histogram::bucket_key(median),
            dist
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn extreme_quantiles_are_exact(
        values in proptest::collection::vec(-1e4f64..1e4, 1..100),
    ) {
        // q=0 must return the minimum and q=1 the maximum exactly (the
        // clamp to [min, max] pins both ends regardless of bucket width).
        let h = hist(&values);
        prop_assert_eq!(h.quantile(0.0).unwrap(), h.min().unwrap());
        prop_assert_eq!(h.quantile(1.0).unwrap(), h.max().unwrap());
    }
}
