//! Run manifests: provenance records written next to every result file.
//!
//! A manifest answers "which code, configuration and environment produced
//! this `results/*.json`?" — the prerequisite for treating result history
//! as a trajectory and for cross-run regression diffing (`dota report
//! diff`). Volatile fields (git sha, wall clock, host) are recorded for
//! provenance but ignored by the differ; `seed`, `features` and `config`
//! are compared.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Provenance of one run: who produced an output, from what source
/// revision, with what configuration, on what machine, in how long.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Name of the producing binary / command (e.g. `fig12_speedup`).
    pub label: String,
    /// `git rev-parse HEAD` of the working tree (`unknown` outside a
    /// repository). A `-dirty` suffix marks uncommitted changes.
    pub git_sha: String,
    /// `os/arch` of the producing host.
    pub host: String,
    /// Hostname (from `$HOSTNAME`, `unknown` when unset).
    pub hostname: String,
    /// Worker-thread budget (the `DOTA_THREADS` cap, else the host's
    /// available parallelism).
    pub threads: usize,
    /// Physical core count (distinct `(physical id, core id)` pairs from
    /// `/proc/cpuinfo`, falling back to available parallelism). The
    /// denominator that makes `pool_speedup` numbers interpretable: a
    /// 1.0x pool speedup is expected on one core, a failure on eight.
    pub physical_cores: usize,
    /// SIMD capabilities detected on the producing host (`avx2`, `fma`,
    /// `avx512f`, `neon`, or `none`), so kernel-family timings can be
    /// compared across machines.
    pub cpu_features: Vec<String>,
    /// Active cargo feature flags relevant to the run (e.g. `parallel`).
    pub features: Vec<String>,
    /// Top-level RNG seed, when the run has a single one.
    pub seed: Option<u64>,
    /// Free-form configuration: retention, sequence length, epochs, …
    /// String-valued so every knob serializes uniformly.
    pub config: BTreeMap<String, String>,
    /// Hardware-counter totals captured from an active `dota-trace`
    /// session, merged in by the caller (empty when tracing was off).
    pub counters: BTreeMap<String, u64>,
    /// Wall-clock duration of the run in seconds.
    pub wall_clock_secs: f64,
}

impl Manifest {
    /// Collects the environment-derived fields: git sha, host triple,
    /// hostname, and the worker-thread budget.
    pub fn collect(label: &str) -> Self {
        Self {
            label: label.to_owned(),
            git_sha: git_sha(),
            host: format!("{}/{}", std::env::consts::OS, std::env::consts::ARCH),
            hostname: std::env::var("HOSTNAME").unwrap_or_else(|_| "unknown".to_owned()),
            threads: thread_budget(),
            physical_cores: physical_cores(),
            cpu_features: cpu_features(),
            features: Vec::new(),
            seed: None,
            config: BTreeMap::new(),
            counters: BTreeMap::new(),
            wall_clock_secs: 0.0,
        }
    }

    /// Sets the top-level seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Appends an active feature flag.
    pub fn with_feature(mut self, feature: &str) -> Self {
        self.features.push(feature.to_owned());
        self
    }

    /// Records one configuration knob.
    pub fn with_config(mut self, key: &str, value: impl ToString) -> Self {
        self.config.insert(key.to_owned(), value.to_string());
        self
    }

    /// The manifest as pretty JSON (deterministic field order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n  \"label\": ");
        crate::write_json_string(&mut out, &self.label);
        out.push_str(",\n  \"git_sha\": ");
        crate::write_json_string(&mut out, &self.git_sha);
        out.push_str(",\n  \"host\": ");
        crate::write_json_string(&mut out, &self.host);
        out.push_str(",\n  \"hostname\": ");
        crate::write_json_string(&mut out, &self.hostname);
        out.push_str(&format!(",\n  \"threads\": {}", self.threads));
        out.push_str(&format!(",\n  \"physical_cores\": {}", self.physical_cores));
        out.push_str(",\n  \"cpu_features\": [");
        for (i, f) in self.cpu_features.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            crate::write_json_string(&mut out, f);
        }
        out.push(']');
        out.push_str(",\n  \"features\": [");
        for (i, f) in self.features.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            crate::write_json_string(&mut out, f);
        }
        out.push(']');
        match self.seed {
            Some(s) => out.push_str(&format!(",\n  \"seed\": {s}")),
            None => out.push_str(",\n  \"seed\": null"),
        }
        out.push_str(",\n  \"config\": {");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            crate::write_json_string(&mut out, k);
            out.push_str(": ");
            crate::write_json_string(&mut out, v);
        }
        if !self.config.is_empty() {
            out.push_str("\n  ");
        }
        out.push('}');
        out.push_str(",\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            crate::write_json_string(&mut out, k);
            out.push_str(&format!(": {v}"));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push('}');
        out.push_str(&format!(
            ",\n  \"wall_clock_secs\": {}\n}}\n",
            crate::fmt_f64(self.wall_clock_secs)
        ));
        out
    }

    /// Writes the manifest JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// The worker-thread budget: the `DOTA_THREADS` cap when set, otherwise the
/// host's available parallelism (1 when undeterminable).
fn thread_budget() -> usize {
    if let Ok(v) = std::env::var("DOTA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Physical core count: distinct `(physical id, core id)` pairs from
/// `/proc/cpuinfo` where available (Linux), otherwise the host's available
/// parallelism. Duplicated from `dota-parallel` so this crate keeps its
/// zero-dependency layering (same idiom as `thread_budget` above).
fn physical_cores() -> usize {
    if let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") {
        let mut cores = std::collections::BTreeSet::new();
        let (mut phys, mut core) = (None, None);
        for line in info.lines() {
            let mut kv = line.splitn(2, ':');
            let key = kv.next().unwrap_or("").trim();
            let val = kv.next().unwrap_or("").trim().to_owned();
            match key {
                "physical id" => phys = Some(val),
                "core id" => core = Some(val),
                "" => {
                    if let (Some(p), Some(c)) = (phys.take(), core.take()) {
                        cores.insert((p, c));
                    }
                }
                _ => {}
            }
        }
        if let (Some(p), Some(c)) = (phys, core) {
            cores.insert((p, c));
        }
        if !cores.is_empty() {
            return cores.len();
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Detected SIMD capabilities (`avx2`/`fma`/`avx512f` on x86-64, `neon`
/// on aarch64, `none` otherwise). Runtime detection, matching what
/// `dota_tensor::simd::cpu_features` reports for kernel selection.
fn cpu_features() -> Vec<String> {
    let mut f: Vec<String> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            f.push("avx2".to_owned());
        }
        if std::arch::is_x86_feature_detected!("fma") {
            f.push("fma".to_owned());
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            f.push("avx512f".to_owned());
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        f.push("neon".to_owned());
    }
    if f.is_empty() {
        f.push("none".to_owned());
    }
    f
}

/// `git rev-parse HEAD` plus a `-dirty` marker, or `unknown`.
fn git_sha() -> String {
    let head = std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned());
    let Some(mut sha) = head.filter(|s| !s.is_empty()) else {
        return "unknown".to_owned();
    };
    let dirty = std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| !o.stdout.is_empty())
        .unwrap_or(false);
    if dirty {
        sha.push_str("-dirty");
    }
    sha
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_json_shape() {
        let mut m = Manifest::collect("unit_test")
            .with_seed(7)
            .with_feature("parallel")
            .with_config("retention", 0.25)
            .with_config("seq", 24usize);
        m.counters.insert("attn.heads".to_owned(), 4);
        m.wall_clock_secs = 1.5;
        let json = m.to_json();
        assert!(json.contains("\"label\": \"unit_test\""));
        assert!(json.contains("\"seed\": 7"));
        assert!(json.contains("\"features\": [\"parallel\"]"));
        assert!(json.contains("\"retention\": \"0.25\""));
        assert!(json.contains("\"seq\": \"24\""));
        assert!(json.contains("\"attn.heads\": 4"));
        assert!(json.contains("\"wall_clock_secs\": 1.5"));
        assert!(m.threads >= 1);
        assert!(m.host.contains('/'));
        assert!(m.physical_cores >= 1);
        assert!(!m.cpu_features.is_empty());
        assert!(json.contains("\"physical_cores\":"));
        assert!(json.contains("\"cpu_features\": ["));
    }

    #[test]
    fn empty_collections_serialize_compact() {
        let m = Manifest::collect("x");
        let json = m.to_json();
        assert!(json.contains("\"features\": []"));
        assert!(json.contains("\"config\": {}"));
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"seed\": null"));
    }
}
