//! Append-only time-series of per-step training scalars.

use std::io;
use std::path::Path;

/// Records per-step scalar metrics (losses, learning rate, gradient norms,
/// retention ratios, …) and exports them as JSON-lines: one object per
/// step, e.g.
///
/// ```text
/// {"step":1,"dense.loss":2.1972,"dense.lr":0.00001,"dense.grad_norm":0.85}
/// ```
///
/// Rows keep their key insertion order and numbers print with Rust's
/// shortest round-trip `f64` formatting, so the exported bytes are a pure
/// function of the recorded values — the reproducibility tests compare
/// JSONL files from different thread counts byte-for-byte.
///
/// A *disabled* sink ([`MetricsSink::disabled`]) drops every record, so
/// training loops can take `&mut MetricsSink` unconditionally and callers
/// that don't need telemetry pay nothing (instrumented code should still
/// gate expensive metric computation on [`MetricsSink::enabled`]).
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    off: bool,
    rows: Vec<(u64, Vec<(String, f64)>)>,
}

impl MetricsSink {
    /// An enabled, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A sink that silently drops every record.
    pub fn disabled() -> Self {
        Self {
            off: true,
            rows: Vec::new(),
        }
    }

    /// Whether records are being kept. Gate expensive metric computation
    /// (e.g. gradient norms) on this.
    pub fn enabled(&self) -> bool {
        !self.off
    }

    /// Appends one step row with an explicit step index.
    pub fn log_at(&mut self, step: u64, metrics: &[(&str, f64)]) {
        if self.off {
            return;
        }
        self.rows.push((
            step,
            metrics.iter().map(|&(k, v)| (k.to_owned(), v)).collect(),
        ));
    }

    /// Appends one step row, auto-numbering the step as `rows + 1` (steps
    /// are 1-based and strictly increasing when only `log` is used).
    pub fn log(&mut self, metrics: &[(&str, f64)]) {
        let step = self.rows.len() as u64 + 1;
        self.log_at(step, metrics);
    }

    /// Number of recorded rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The `(step, value)` series of one metric, in record order.
    pub fn series(&self, name: &str) -> Vec<(u64, f64)> {
        self.rows
            .iter()
            .filter_map(|(step, kv)| kv.iter().find(|(k, _)| k == name).map(|&(_, v)| (*step, v)))
            .collect()
    }

    /// The most recent value of one metric.
    pub fn last(&self, name: &str) -> Option<f64> {
        self.rows
            .iter()
            .rev()
            .find_map(|(_, kv)| kv.iter().find(|(k, _)| k == name).map(|&(_, v)| v))
    }

    /// Sorted list of every metric name that appears in any row.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for (_, kv) in &self.rows {
            for (k, _) in kv {
                if !names.contains(k) {
                    names.push(k.clone());
                }
            }
        }
        names.sort();
        names
    }

    /// The full series as JSON-lines (one object per row, trailing
    /// newline). Deterministic byte-for-byte given the same records.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.rows.len() * 64);
        for (step, kv) in &self.rows {
            out.push_str("{\"step\":");
            out.push_str(&step.to_string());
            for (k, v) in kv {
                out.push(',');
                crate::write_json_string(&mut out, k);
                out.push(':');
                if v.is_finite() {
                    out.push_str(&crate::fmt_f64(*v));
                } else {
                    out.push_str("null");
                }
            }
            out.push_str("}\n");
        }
        out
    }

    /// Writes the JSONL document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_jsonl(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_series_and_jsonl() {
        let mut sink = MetricsSink::new();
        sink.log(&[("loss", 2.5), ("lr", 0.001)]);
        sink.log(&[("loss", 1.25)]);
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.series("loss"), vec![(1, 2.5), (2, 1.25)]);
        assert_eq!(sink.series("lr"), vec![(1, 0.001)]);
        assert_eq!(sink.last("loss"), Some(1.25));
        assert_eq!(sink.names(), vec!["loss".to_owned(), "lr".to_owned()]);
        assert_eq!(
            sink.to_jsonl(),
            "{\"step\":1,\"loss\":2.5,\"lr\":0.001}\n{\"step\":2,\"loss\":1.25}\n"
        );
    }

    #[test]
    fn disabled_sink_drops_everything() {
        let mut sink = MetricsSink::disabled();
        assert!(!sink.enabled());
        sink.log(&[("loss", 1.0)]);
        assert!(sink.is_empty());
        assert_eq!(sink.to_jsonl(), "");
    }

    #[test]
    fn non_finite_values_serialize_as_null() {
        let mut sink = MetricsSink::new();
        sink.log(&[("bad", f64::NAN)]);
        assert_eq!(sink.to_jsonl(), "{\"step\":1,\"bad\":null}\n");
    }

    #[test]
    fn explicit_steps_are_preserved() {
        let mut sink = MetricsSink::new();
        sink.log_at(10, &[("x", 1.0)]);
        sink.log_at(20, &[("x", 2.0)]);
        assert_eq!(sink.series("x"), vec![(10, 1.0), (20, 2.0)]);
    }
}
