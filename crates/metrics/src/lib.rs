//! Run-level telemetry for the DOTA reproduction.
//!
//! `dota-trace` (PR 2) observes the *simulator* at cycle granularity; this
//! crate observes the *run*: the joint detector/model training loop
//! (`L = L_model + λ·L_MSE`, paper Sec. 3), value distributions, and the
//! provenance of every produced result file. Three pillars:
//!
//! * [`MetricsSink`] — an append-only time series of per-step training
//!   scalars (losses, detector MSE, gradient norms, per-layer retention,
//!   learning rate), exported as deterministic JSONL
//!   (`dota train --metrics-out`);
//! * [`Histogram`] — streaming, mergeable log-bucketed histograms with
//!   quantile queries, used for attention-score / detector-score
//!   distributions and for kernel wall-times (p50/p95/p99 in
//!   `bench_report`). A process-wide session-gated registry
//!   ([`hist_session`] / [`observe`]) lets instrumented hot paths feed
//!   named histograms with one relaxed atomic load of overhead when
//!   collection is off;
//! * [`Manifest`] — a provenance record (git sha, seed, config, thread
//!   count, features, counters, wall-clock, host) written next to every
//!   result file, consumed by `dota report diff` for cross-run regression
//!   checking.
//!
//! Like `dota-trace`, the registry is **off by default** and sessions are
//! exclusive ([`hist_session`] blocks until any other live guard drops; do
//! not nest sessions on one thread — that deadlocks by design rather than
//! silently mixing two recordings):
//!
//! ```
//! let hists = dota_metrics::hist_session("example");
//! dota_metrics::observe("attn.scores.L0", 0.25);
//! dota_metrics::observe("attn.scores.L0", 4.0);
//! let h = hists.histogram("attn.scores.L0").unwrap();
//! assert_eq!(h.count(), 2);
//! assert!(hists.summary_json().contains("attn.scores.L0"));
//! ```
//!
//! The crate is dependency-free; all JSON is emitted by hand so
//! instrumented crates do not pull serialization into their graphs.

#![deny(missing_docs)]

mod histogram;
mod manifest;
mod rolling;
mod sink;

pub use histogram::{Histogram, SUB_BUCKETS};
pub use manifest::Manifest;
pub use rolling::RollingWindow;
pub use sink::MetricsSink;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

static ENABLED: AtomicBool = AtomicBool::new(false);
static SESSION_GATE: Mutex<()> = Mutex::new(());
static STATE: Mutex<HistState> = Mutex::new(HistState::new());

#[derive(Debug)]
struct HistState {
    label: String,
    hists: BTreeMap<String, Histogram>,
}

impl HistState {
    const fn new() -> Self {
        Self {
            label: String::new(),
            hists: BTreeMap::new(),
        }
    }

    fn clear(&mut self, label: &str) {
        self.label.clear();
        self.label.push_str(label);
        self.hists.clear();
    }
}

fn lock_state() -> MutexGuard<'static, HistState> {
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether a histogram session is currently collecting. Instrumented code
/// uses this to skip materializing values (e.g. recomputing attention
/// scores) that exist only to be observed.
#[inline]
pub fn hist_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records one sample into the named histogram. A no-op (one relaxed
/// atomic load) outside a session. Bucket counts are commutative sums, so
/// the collected tables are independent of thread interleaving.
#[inline]
pub fn observe(name: &str, value: f64) {
    if !hist_enabled() {
        return;
    }
    let mut st = lock_state();
    st.hists.entry(name.to_owned()).or_default().record(value);
}

/// Records every sample of an iterator into the named histogram, taking
/// the registry lock once. A no-op outside a session; prefer gating the
/// construction of `values` on [`hist_enabled`].
pub fn observe_many(name: &str, values: impl IntoIterator<Item = f64>) {
    if !hist_enabled() {
        return;
    }
    let mut st = lock_state();
    st.hists
        .entry(name.to_owned())
        .or_default()
        .record_all(values);
}

/// A snapshot of every named histogram collected by the active session,
/// without needing the session's [`HistGuard`] (which the opening thread
/// owns). Empty when no session is live. Built for pull-based exporters —
/// the `/metrics` endpoint snapshots the registry from its accept thread
/// at scrape time.
pub fn hists_snapshot() -> BTreeMap<String, Histogram> {
    if !hist_enabled() {
        return BTreeMap::new();
    }
    lock_state().hists.clone()
}

/// Begins an exclusive histogram session: clears the registry, enables
/// collection, and returns a guard through which the histograms are read
/// and exported. Collection stops when the guard drops.
///
/// Blocks until any other live session ends. Do **not** begin a second
/// session from a thread that already holds one — that deadlocks (by
/// design: two interleaved recordings would corrupt each other).
pub fn hist_session(label: &str) -> HistGuard {
    let gate = SESSION_GATE.lock().unwrap_or_else(PoisonError::into_inner);
    lock_state().clear(label);
    ENABLED.store(true, Ordering::SeqCst);
    HistGuard { _gate: gate }
}

/// Exclusive handle on the active histogram session (see [`hist_session`]).
#[derive(Debug)]
pub struct HistGuard {
    _gate: MutexGuard<'static, ()>,
}

impl HistGuard {
    /// A clone of one named histogram (`None` if nothing was observed
    /// under that name).
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        lock_state().hists.get(name).cloned()
    }

    /// A snapshot of every named histogram collected so far.
    pub fn snapshot(&self) -> BTreeMap<String, Histogram> {
        lock_state().hists.clone()
    }

    /// The session's histograms as one JSON document:
    /// `{"label": ..., "histograms": {name: {count, min, max, mean, p50,
    /// p95, p99}, ...}}` with names in lexicographic order.
    pub fn summary_json(&self) -> String {
        let st = lock_state();
        let mut out = String::with_capacity(64 + st.hists.len() * 128);
        out.push_str("{\n  \"label\": ");
        write_json_string(&mut out, &st.label);
        out.push_str(",\n  \"histograms\": {");
        for (i, (name, h)) in st.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_json_string(&mut out, name);
            out.push_str(": ");
            out.push_str(&h.summary_json());
        }
        if !st.hists.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Writes the summary JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_summary(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.summary_json())
    }
}

impl Drop for HistGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
    }
}

/// Formats a finite `f64` with Rust's shortest round-trip `Display` — a
/// pure function of the bit pattern, so exported documents are
/// byte-deterministic. Non-finite inputs (filtered out by all callers)
/// print as `null` to stay valid JSON.
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

/// Appends `s` to `out` as a JSON string literal with the mandatory
/// escapes.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_disabled_by_default_and_collects_inside_session() {
        observe("free", 1.0); // outside any session: dropped
        let g = hist_session("s1");
        assert!(hist_enabled());
        observe("a", 1.0);
        observe("a", 2.0);
        observe_many("b", [3.0, 4.0, 5.0]);
        assert_eq!(g.histogram("a").unwrap().count(), 2);
        assert_eq!(g.histogram("b").unwrap().count(), 3);
        assert!(g.histogram("free").is_none(), "pre-session sample leaked");
        assert_eq!(g.snapshot().len(), 2);
        // The guard-free registry snapshot sees the same tables.
        assert_eq!(hists_snapshot(), g.snapshot());
        drop(g);
        assert!(!hist_enabled());
    }

    #[test]
    fn sessions_are_isolated() {
        {
            let g = hist_session("first");
            observe("x", 10.0);
            assert!(g.histogram("x").is_some());
        }
        let g = hist_session("second");
        assert!(g.histogram("x").is_none(), "stale histogram leaked");
    }

    #[test]
    fn summary_json_shape() {
        let g = hist_session("json \"quoted\"");
        observe("b.metric", 2.0);
        observe("a.metric", 1.0);
        let json = g.summary_json();
        assert!(json.contains("\"label\": \"json \\\"quoted\\\"\""));
        assert!(json.contains("\"p50\":"));
        // Lexicographic name order.
        let a = json.find("\"a.metric\"").unwrap();
        let b = json.find("\"b.metric\"").unwrap();
        assert!(a < b);
    }

    #[test]
    fn concurrent_observes_sum_exactly() {
        let g = hist_session("threads");
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..500 {
                        observe("hits", 1.0 + (i % 7) as f64);
                    }
                });
            }
        });
        assert_eq!(g.histogram("hits").unwrap().count(), 4000);
    }

    #[test]
    fn fmt_f64_is_shortest_round_trip() {
        assert_eq!(fmt_f64(12.0), "12");
        assert_eq!(fmt_f64(0.001), "0.001");
        assert_eq!(fmt_f64(f64::NAN), "null");
        let x = 0.1f64 + 0.2;
        assert_eq!(fmt_f64(x).parse::<f64>().unwrap(), x);
    }
}
