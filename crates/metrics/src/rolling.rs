//! Fixed-size rolling window over boolean-outcome samples.
//!
//! The serve SLO monitor needs "deadline-hit rate over the last N
//! completions" and "mean burn-rate over the last N completions" — classic
//! sliding-window statistics. [`RollingWindow`] keeps the last `capacity`
//! `(hit, value)` samples in a ring buffer and answers both queries in
//! O(1) by maintaining running sums; evicted samples are subtracted as
//! they fall out, so the window never rescans.
//!
//! Values are accumulated as `f64` sums. The serve engine's burn-rates are
//! small (order 1) and windows short (order 100), so the accumulated
//! rounding error is far below the monitor's reporting precision, and —
//! more importantly for this codebase — the same additions happen in the
//! same order on every run, keeping derived reports byte-deterministic.

/// A ring buffer of `(hit, value)` samples with O(1) windowed hit-rate and
/// mean queries.
#[derive(Debug, Clone)]
pub struct RollingWindow {
    capacity: usize,
    samples: Vec<(bool, f64)>,
    /// Next write position in the ring (wraps at `capacity`).
    head: usize,
    hits: usize,
    sum: f64,
}

impl RollingWindow {
    /// Creates a window over the last `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (an empty window answers nothing).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "rolling window needs capacity >= 1");
        Self {
            capacity,
            samples: Vec::with_capacity(capacity),
            head: 0,
            hits: 0,
            sum: 0.0,
        }
    }

    /// Pushes one sample, evicting the oldest once the window is full.
    pub fn push(&mut self, hit: bool, value: f64) {
        if self.samples.len() < self.capacity {
            self.samples.push((hit, value));
        } else {
            let (old_hit, old_value) = self.samples[self.head];
            if old_hit {
                self.hits -= 1;
            }
            self.sum -= old_value;
            self.samples[self.head] = (hit, value);
        }
        self.head = (self.head + 1) % self.capacity;
        if hit {
            self.hits += 1;
        }
        self.sum += value;
    }

    /// Samples currently in the window (`<= capacity`).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Whether the window has reached its capacity.
    pub fn is_full(&self) -> bool {
        self.samples.len() == self.capacity
    }

    /// Fraction of windowed samples with `hit == true` (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.hits as f64 / self.samples.len() as f64
        }
    }

    /// Mean of the windowed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum / self.samples.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_answers_zero() {
        let w = RollingWindow::new(4);
        assert!(w.is_empty());
        assert!(!w.is_full());
        assert_eq!(w.hit_rate(), 0.0);
        assert_eq!(w.mean(), 0.0);
    }

    #[test]
    fn partial_window_uses_actual_length() {
        let mut w = RollingWindow::new(8);
        w.push(true, 2.0);
        w.push(false, 4.0);
        assert_eq!(w.len(), 2);
        assert_eq!(w.hit_rate(), 0.5);
        assert_eq!(w.mean(), 3.0);
    }

    #[test]
    fn full_window_evicts_oldest() {
        let mut w = RollingWindow::new(3);
        w.push(true, 1.0);
        w.push(true, 2.0);
        w.push(false, 3.0);
        assert!(w.is_full());
        // Evicts (true, 1.0): hits 2->1 then +1, sum loses the 1.0.
        w.push(true, 4.0);
        assert_eq!(w.len(), 3);
        assert_eq!(w.hit_rate(), 2.0 / 3.0);
        assert_eq!(w.mean(), 3.0);
    }

    #[test]
    fn window_of_one_tracks_last_sample() {
        let mut w = RollingWindow::new(1);
        w.push(false, 10.0);
        assert_eq!(w.hit_rate(), 0.0);
        w.push(true, 0.5);
        assert_eq!(w.hit_rate(), 1.0);
        assert_eq!(w.mean(), 0.5);
    }

    #[test]
    fn long_stream_matches_direct_recount() {
        let mut w = RollingWindow::new(7);
        let mut all: Vec<(bool, f64)> = Vec::new();
        for i in 0..100u32 {
            let hit = i % 3 == 0;
            let v = f64::from(i % 11);
            w.push(hit, v);
            all.push((hit, v));
            let tail: Vec<_> = all.iter().rev().take(7).collect();
            let hits = tail.iter().filter(|(h, _)| *h).count();
            let sum: f64 = tail.iter().map(|(_, v)| v).sum();
            assert_eq!(w.hit_rate(), hits as f64 / tail.len() as f64);
            assert!((w.mean() - sum / tail.len() as f64).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = RollingWindow::new(0);
    }
}
