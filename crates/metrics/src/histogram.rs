//! Streaming log-bucketed histograms.
//!
//! A [`Histogram`] summarizes a value distribution with fixed logarithmic
//! buckets (HdrHistogram-style): each octave of magnitude splits into
//! [`SUB_BUCKETS`] geometric sub-buckets, so every recorded value lands in
//! a bucket whose width is a fixed *relative* error (~9% at 8 sub-buckets
//! per octave). Negative values mirror the positive buckets; exact zeros
//! (and magnitudes below 2⁻⁶⁴) share a dedicated zero bucket.
//!
//! Buckets are sparse `u64` counts, so histograms are:
//!
//! * **streaming** — `record` is O(log buckets) with no stored samples;
//! * **mergeable** — [`Histogram::merge`] adds bucket counts; the merged
//!   bucket table, count, min and max are independent of merge order and
//!   grouping (pure `u64`/min/max algebra), which the property tests pin;
//! * **quantile-ready** — [`Histogram::quantile`] walks the cumulative
//!   counts and answers within one bucket of the exact order statistic.

use std::collections::BTreeMap;

/// Geometric sub-buckets per octave (factor 2^(1/8) ≈ 1.09 between bucket
/// boundaries, i.e. ≤ ~9% relative quantization error).
pub const SUB_BUCKETS: i32 = 8;

/// Exponent index range: magnitudes in [2⁻⁶⁴, 2⁶⁴) get exact log bucketing;
/// smaller magnitudes fall into the zero bucket, larger ones clamp to the
/// top bucket.
const E_MIN: i32 = -64 * SUB_BUCKETS;
const E_MAX: i32 = 64 * SUB_BUCKETS - 1;

/// A streaming, mergeable, log-bucketed histogram of `f64` samples.
///
/// # Example
///
/// ```
/// use dota_metrics::Histogram;
/// let mut h = Histogram::new();
/// for v in [1.0, 2.0, 3.0, 50.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// let p50 = h.quantile(0.5).unwrap();
/// assert!((1.0..=3.0).contains(&p50));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    /// Sparse bucket table: signed bucket key (see [`Histogram::bucket_key`])
    /// → sample count. `BTreeMap` keeps keys in value order.
    buckets: BTreeMap<i32, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket key a value falls into. Keys are ordered like the values
    /// they represent: negative values map to negative keys (larger
    /// magnitude → smaller key), zero (and |v| < 2⁻⁶⁴) to key 0, positive
    /// values to positive keys.
    pub fn bucket_key(v: f64) -> i32 {
        let mag = v.abs();
        if mag < 2f64.powi(-64) || mag.is_nan() {
            // Zero, subnormal-tiny, or NaN magnitude.
            return 0;
        }
        let e = (mag.log2() * SUB_BUCKETS as f64).floor() as i32;
        let idx = e.clamp(E_MIN, E_MAX) - E_MIN + 1; // >= 1
        if v > 0.0 {
            idx
        } else {
            -idx
        }
    }

    /// The representative value of a bucket (its geometric midpoint), used
    /// when answering quantiles.
    fn bucket_value(key: i32) -> f64 {
        if key == 0 {
            return 0.0;
        }
        let e = key.abs() - 1 + E_MIN;
        let mid = 2f64.powf((e as f64 + 0.5) / SUB_BUCKETS as f64);
        if key > 0 {
            mid
        } else {
            -mid
        }
    }

    /// Records one sample. Non-finite samples are ignored (they carry no
    /// position on the value axis).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        *self.buckets.entry(Self::bucket_key(v)).or_insert(0) += 1;
    }

    /// Records every sample of an iterator.
    pub fn record_all(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.record(v);
        }
    }

    /// Merges another histogram into this one. Bucket counts, `count`,
    /// `min` and `max` combine associatively and commutatively (pure sums
    /// and min/max), so any merge tree over the same shards yields the
    /// same table; only `sum` (and hence `mean`) is subject to
    /// floating-point rounding in the merge order.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        for (&k, &c) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the recorded samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The sparse bucket table (key → count), for export and tests.
    pub fn buckets(&self) -> &BTreeMap<i32, u64> {
        &self.buckets
    }

    /// The least upper bound of a bucket's value range. Upper bounds are
    /// strictly increasing in the bucket key, so walking the sparse table
    /// in key order yields Prometheus-style ascending `le` boundaries.
    ///
    /// The top bucket is a clamp bucket: magnitudes at or above 2⁶⁴ all
    /// land in it, so samples there may exceed the nominal bound (the
    /// `+Inf` bucket of an exposition absorbs the discrepancy).
    pub fn bucket_upper(key: i32) -> f64 {
        if key == 0 {
            // Zero bucket: |v| < 2⁻⁶⁴.
            return 2f64.powi(-64);
        }
        let e = key.abs() - 1 + E_MIN;
        if key > 0 {
            // Positive bucket: v in [2^(e/S), 2^((e+1)/S)).
            2f64.powf((e + 1) as f64 / SUB_BUCKETS as f64)
        } else {
            // Negative bucket mirrors: v in (-2^((e+1)/S), -2^(e/S)].
            -(2f64.powf(e as f64 / SUB_BUCKETS as f64))
        }
    }

    /// Cumulative view of the occupied buckets as ascending
    /// `(upper_bound, cumulative_count)` pairs — the exact shape a
    /// Prometheus histogram exposition needs. Upper bounds are strictly
    /// increasing, cumulative counts non-decreasing, and the final count
    /// equals [`Histogram::count`]. Because the merged bucket table is
    /// independent of merge order, so is this view.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut cum = 0u64;
        self.buckets
            .iter()
            .map(|(&k, &c)| {
                cum += c;
                (Self::bucket_upper(k), cum)
            })
            .collect()
    }

    /// The `q`-quantile (nearest-rank on the bucket cumulative counts),
    /// `q` clamped to `[0, 1]`. `q = 0` and `q = 1` return the exact
    /// tracked `min`/`max`; interior quantiles return the containing
    /// bucket's representative value clamped to `[min, max]`, so the
    /// answer is within one bucket (~9% relative) of the true order
    /// statistic and exact for single-sample histograms. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The extremes are tracked exactly — answer them without bucket
        // quantization.
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        // Nearest-rank: the smallest rank r (1-based) with r >= q * count.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (&key, &c) in &self.buckets {
            cum += c;
            if cum >= target {
                return Some(Self::bucket_value(key).clamp(self.min, self.max));
            }
        }
        Some(self.max) // unreachable in practice (counts always cover)
    }

    /// `{count, min, max, mean, p50, p95, p99}` as a JSON object (values
    /// `null` when empty). Deterministic key order.
    pub fn summary_json(&self) -> String {
        let num = |v: Option<f64>| match v {
            Some(x) if x.is_finite() => crate::fmt_f64(x),
            _ => "null".to_owned(),
        };
        format!(
            "{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            self.count,
            num(self.min()),
            num(self.max()),
            num(self.mean()),
            num(self.quantile(0.5)),
            num(self.quantile(0.95)),
            num(self.quantile(0.99)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_edge_cases() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        // Merging empties is the identity in both directions.
        let mut a = Histogram::new();
        a.merge(&h);
        assert!(a.is_empty());
        let mut b = Histogram::new();
        b.record(2.0);
        let b0 = b.clone();
        b.merge(&h);
        assert_eq!(b, b0);
        let mut e = Histogram::new();
        e.merge(&b);
        assert_eq!(e, b);
        assert_eq!(h.summary_json(), "{\"count\":0,\"min\":null,\"max\":null,\"mean\":null,\"p50\":null,\"p95\":null,\"p99\":null}");
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(3.7);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(3.7), "q={q}");
        }
    }

    #[test]
    fn sign_and_zero_bucketing() {
        assert_eq!(Histogram::bucket_key(0.0), 0);
        assert_eq!(Histogram::bucket_key(1e-300), 0);
        assert!(Histogram::bucket_key(1.5) > 0);
        assert!(Histogram::bucket_key(-1.5) < 0);
        // Key order follows value order.
        assert!(Histogram::bucket_key(-8.0) < Histogram::bucket_key(-1.0));
        assert!(Histogram::bucket_key(-1.0) < Histogram::bucket_key(0.0));
        assert!(Histogram::bucket_key(0.5) < Histogram::bucket_key(2.0));
    }

    #[test]
    fn relative_bucket_error_is_bounded() {
        let width = 2f64.powf(1.0 / SUB_BUCKETS as f64);
        for &v in &[0.003, 0.9, 1.0, 17.0, 1234.5, 8e9] {
            let mut h = Histogram::new();
            h.record(v);
            h.record(v); // two samples so min/max clamping can't mask bucketing
            let p50 = h.quantile(0.5).unwrap();
            assert!(
                p50 / v < width && v / p50 < width,
                "p50 {p50} too far from {v}"
            );
        }
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert!(h.is_empty());
        h.record(1.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        a.record_all([1.0, 2.0]);
        let mut b = Histogram::new();
        b.record_all([-3.0, 4.0]);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), Some(-3.0));
        assert_eq!(a.max(), Some(4.0));
        assert_eq!(a.sum(), 4.0);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_cover_every_sample() {
        let mut h = Histogram::new();
        let samples = [
            -1234.5, -3.0, -0.004, 0.0, 1e-300, 0.25, 1.0, 1.5, 17.0, 8e9,
        ];
        h.record_all(samples);
        let cum = h.cumulative_buckets();
        assert!(!cum.is_empty());
        // Bounds strictly increase, counts never decrease, and the final
        // cumulative count is the total sample count.
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0, "bounds not increasing: {cum:?}");
            assert!(w[0].1 <= w[1].1, "counts decreased: {cum:?}");
        }
        assert_eq!(cum.last().unwrap().1, h.count());
        // Every in-range sample sits at or below its bucket's upper bound.
        for v in samples {
            let key = Histogram::bucket_key(v);
            assert!(
                v <= Histogram::bucket_upper(key),
                "{v} above bound {}",
                Histogram::bucket_upper(key)
            );
        }
        // Empty histogram: no buckets at all.
        assert!(Histogram::new().cumulative_buckets().is_empty());
    }

    #[test]
    fn cumulative_buckets_are_merge_consistent() {
        let xs = [0.1, 0.1, 2.5, -7.0, 40.0, 0.0];
        let ys = [2.5, 3.1, -7.0, 900.0];
        let mut direct = Histogram::new();
        direct.record_all(xs.iter().chain(&ys).copied());
        let mut a = Histogram::new();
        a.record_all(xs);
        let mut b = Histogram::new();
        b.record_all(ys);
        // Either merge direction yields the same cumulative view as
        // recording everything into one histogram.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.cumulative_buckets(), direct.cumulative_buckets());
        assert_eq!(ba.cumulative_buckets(), direct.cumulative_buckets());
        // And the exact _sum/_count accessors agree across the merge.
        assert_eq!(ab.count(), direct.count());
        assert_eq!(ab.count(), xs.len() as u64 + ys.len() as u64);
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let mut h = Histogram::new();
        // 90 small values, 10 large ones.
        for _ in 0..90 {
            h.record(1.0);
        }
        for _ in 0..10 {
            h.record(1000.0);
        }
        assert!(h.quantile(0.5).unwrap() < 2.0);
        assert!(h.quantile(0.99).unwrap() > 500.0);
    }
}
