//! Sample generators for the five synthetic benchmarks.
//!
//! All generators share a token-id convention:
//!
//! * `0` — separator (`SEP`);
//! * `1` — question marker (`QUERY`);
//! * `2` — recall marker (`RECALL`, LM only);
//! * `3` — copy marker (`COPY`, LM only);
//! * `4..16` — structure symbols (keys, markers, topics, sentiment);
//! * `16..vocab` — filler tokens carrying no label information.
//!
//! Every task's label depends on a handful of *distant token pairs*, so a
//! model that prunes weak attention keeps exactly the edges that matter.

use crate::{Sample, TaskSpec};
use dota_tensor::rng::SeededRng;

const SEP: usize = 0;
const QUERY: usize = 1;
const RECALL: usize = 2;
const COPY: usize = 3;
const SYM_BASE: usize = 4;
const FILLER_BASE: usize = 16;

fn filler(spec: &TaskSpec, rng: &mut SeededRng) -> usize {
    let base = FILLER_BASE.max(spec.structure_tokens());
    base + rng.below(spec.vocab_size - base)
}

/// QA: the sequence opens with `QUERY q`; somewhere in the body sits a
/// composite *fact token* `fact(q, answer)` for that question (among
/// distractor facts about other questions). The label is the answer encoded
/// in the matching fact. Solving it requires one precise long-range
/// attention hop from the question to its distant fact — the SQuAD-like
/// lookup dependency.
///
/// Token layout (see [`qa_fact_token`]): questions at `SYM_BASE..+n_keys`,
/// facts at `SYM_BASE + n_keys + q*n_classes + answer`.
pub fn qa(spec: &TaskSpec, rng: &mut SeededRng) -> Sample {
    let n = spec.seq_len;
    let n_keys = QA_KEYS;
    let mut ids: Vec<usize> = (0..n).map(|_| filler(spec, rng)).collect();

    let q = rng.below(n_keys);
    ids[0] = QUERY;
    ids[1] = SYM_BASE + q;

    let label = rng.below(spec.n_classes);
    // Plant the true fact and one distractor fact at distinct positions.
    let slots = rng.sample_indices(n - 4, 2);
    ids[4 + slots[0] % (n - 4)] = qa_fact_token(spec, q, label);
    let mut dq = rng.below(n_keys);
    if dq == q {
        dq = (dq + 1) % n_keys;
    }
    let d_pos = 4 + slots[1] % (n - 4);
    ids[d_pos] = qa_fact_token(spec, dq, rng.below(spec.n_classes));
    // Ensure the distractor did not overwrite the true fact.
    if slots[0] % (n - 4) == slots[1] % (n - 4) {
        ids[4 + slots[0] % (n - 4)] = qa_fact_token(spec, q, label);
    }
    Sample { ids, label }
}

/// Number of distinct question symbols in the QA task.
pub const QA_KEYS: usize = 4;

/// The composite fact token for `(question, answer)`.
pub fn qa_fact_token(spec: &TaskSpec, question: usize, answer: usize) -> usize {
    SYM_BASE + QA_KEYS + question * spec.n_classes + answer
}

/// Image: a mostly-dark "pixel" sequence with one bright class marker at a
/// random position plus a distractor "dim" marker; the label is the bright
/// marker's identity. Classifying requires locating one salient distant
/// pixel among noise (the LRA-image long-range dependency).
pub fn image(spec: &TaskSpec, rng: &mut SeededRng) -> Sample {
    let n = spec.seq_len;
    let mut ids: Vec<usize> = (0..n).map(|_| filler(spec, rng)).collect();
    let label = rng.below(spec.n_classes);
    let distractor = spec.n_classes + rng.below(8 - spec.n_classes.min(7));
    let pos = rng.sample_indices(n, 2);
    ids[pos[0]] = SYM_BASE + label;
    ids[pos[1]] = SYM_BASE + distractor;
    Sample { ids, label }
}

/// Text: a few salient sentiment tokens buried in filler; the label is the
/// majority sentiment. Queries must locate the sparse salient positions.
pub fn text(spec: &TaskSpec, rng: &mut SeededRng) -> Sample {
    const POS: usize = SYM_BASE;
    const NEG: usize = SYM_BASE + 1;
    let n = spec.seq_len;
    let mut ids: Vec<usize> = (0..n).map(|_| filler(spec, rng)).collect();
    // Odd total count guarantees a strict majority; a wide margin
    // (total-1 vs 1) keeps the task learnable by the tiny test models
    // while preserving the sparse-salient-token structure.
    let total = 5.min(n / 4) | 1;
    let label = rng.below(2);
    let majority = total - 1;
    let minority = total - majority;
    let positions = rng.sample_indices(n, total);
    for (i, &p) in positions.iter().enumerate() {
        let sentiment = if i < majority {
            if label == 1 {
                POS
            } else {
                NEG
            }
        } else if label == 1 {
            NEG
        } else {
            POS
        };
        ids[p] = sentiment;
        let _ = minority;
    }
    Sample { ids, label }
}

/// Number of distinct topic symbols in the Retrieval task.
pub const RETRIEVAL_TOPICS: usize = 4;

/// The composite fact token asserting `(topic, polarity)` in the left
/// document of the Retrieval task.
pub fn retrieval_fact_token(topic: usize, polarity: usize) -> usize {
    SYM_BASE + RETRIEVAL_TOPICS + topic * 2 + polarity
}

/// Retrieval: two documents separated by `SEP`. The left document contains
/// a fact about one topic (a composite `(topic, polarity)` token, plus a
/// distractor fact about another topic); the right document poses `QUERY
/// topic`. The label is the queried topic's polarity — deciding it
/// requires one precise attention hop *across the separator* from the query
/// to the matching fact, the AAN citation-link dependency. (The paper's
/// real task intersects topic sets; same-different set matching is beyond
/// the tiny trainable models used here, so this lookup variant keeps the
/// long-range cross-document edge that detection must preserve.)
pub fn retrieval(spec: &TaskSpec, rng: &mut SeededRng) -> Sample {
    let n = spec.seq_len;
    let mid = n / 2;
    let mut ids: Vec<usize> = (0..n).map(|_| filler(spec, rng)).collect();
    ids[mid] = SEP;

    let topic = rng.below(RETRIEVAL_TOPICS);
    let label = rng.below(2);
    // True fact and a distractor fact about a different topic, at random
    // positions in the left document.
    let pos = rng.sample_indices(mid, 2);
    ids[pos[0]] = retrieval_fact_token(topic, label);
    let other = (topic + 1 + rng.below(RETRIEVAL_TOPICS - 1)) % RETRIEVAL_TOPICS;
    ids[pos[1]] = retrieval_fact_token(other, rng.below(2));

    // The query in the right document.
    ids[mid + 1] = QUERY;
    ids[mid + 2] = SYM_BASE + topic;
    Sample { ids, label }
}

/// LM: a random token stream with a planted copy-recall pattern — `COPY x`
/// early, `RECALL` late, and the token after `RECALL` is `x`. The payload
/// `x` is drawn from a *quoted* vocabulary range that appears nowhere else
/// in the sequence, so predicting it requires one precise long-range
/// attention edge (from the recall point back to the quoted token); all
/// other positions are locally random (irreducible entropy).
pub fn lm(spec: &TaskSpec, rng: &mut SeededRng) -> Sample {
    let n = spec.seq_len;
    // Split the symbol space: quoted payload range vs filler range.
    let n_syms = spec.vocab_size - SYM_BASE;
    let n_quoted = n_syms / 2;
    let filler_base = SYM_BASE + n_quoted;
    let n_fillers = spec.vocab_size - filler_base;
    let mut ids: Vec<usize> = (0..n).map(|_| filler_base + rng.below(n_fillers)).collect();
    let x = SYM_BASE + rng.below(n_quoted);
    // COPY in the first third, RECALL in the last third.
    let copy_pos = 1 + rng.below((n / 3).max(1));
    let recall_pos = (2 * n / 3) + rng.below((n / 3 - 2).max(1));
    ids[copy_pos] = COPY;
    ids[copy_pos + 1] = x;
    ids[recall_pos] = RECALL;
    ids[recall_pos + 1] = x;
    Sample { ids, label: 0 }
}

/// Index of the predictable LM position (the token after `RECALL`), used to
/// score copy-recall accuracy separately from raw perplexity.
pub fn lm_recall_position(ids: &[usize]) -> Option<usize> {
    ids.iter()
        .rposition(|&t| t == RECALL)
        .filter(|&p| p + 1 < ids.len())
        .map(|p| p + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    fn spec(b: Benchmark) -> TaskSpec {
        TaskSpec::tiny(b, 48, 5)
    }

    #[test]
    fn qa_plants_matching_fact() {
        let s = spec(Benchmark::Qa);
        let mut rng = SeededRng::new(1);
        for _ in 0..50 {
            let sample = qa(&s, &mut rng);
            assert_eq!(sample.ids[0], QUERY);
            let q = sample.ids[1] - SYM_BASE;
            let want = qa_fact_token(&s, q, sample.label);
            assert!(
                sample.ids[2..].contains(&want),
                "true fact missing: {sample:?}"
            );
            // No *conflicting* fact for the same question.
            for answer in 0..s.n_classes {
                if answer != sample.label {
                    assert!(!sample.ids[2..].contains(&qa_fact_token(&s, q, answer)));
                }
            }
        }
    }

    #[test]
    fn image_label_from_bright_marker() {
        let s = spec(Benchmark::Image);
        let mut rng = SeededRng::new(2);
        for _ in 0..50 {
            let sample = image(&s, &mut rng);
            // Exactly one bright (class) marker and one distractor.
            let bright: Vec<usize> = sample
                .ids
                .iter()
                .filter(|&&t| (SYM_BASE..SYM_BASE + s.n_classes).contains(&t))
                .map(|&t| t - SYM_BASE)
                .collect();
            assert_eq!(bright.len(), 1, "{sample:?}");
            assert_eq!(bright[0], sample.label);
            let distractors = sample
                .ids
                .iter()
                .filter(|&&t| (SYM_BASE + s.n_classes..SYM_BASE + 8).contains(&t))
                .count();
            assert_eq!(distractors, 1, "{sample:?}");
        }
    }

    #[test]
    fn text_majority_matches_label() {
        let s = spec(Benchmark::Text);
        let mut rng = SeededRng::new(3);
        for _ in 0..50 {
            let sample = text(&s, &mut rng);
            let pos = sample.ids.iter().filter(|&&t| t == SYM_BASE).count();
            let neg = sample.ids.iter().filter(|&&t| t == SYM_BASE + 1).count();
            assert_ne!(pos, neg, "tie should be impossible");
            assert_eq!(sample.label, usize::from(pos > neg));
        }
    }

    #[test]
    fn retrieval_fact_matches_query_and_label() {
        let s = spec(Benchmark::Retrieval);
        let mut rng = SeededRng::new(4);
        for _ in 0..50 {
            let sample = retrieval(&s, &mut rng);
            let mid = s.seq_len / 2;
            assert_eq!(sample.ids[mid], SEP);
            assert_eq!(sample.ids[mid + 1], QUERY);
            let topic = sample.ids[mid + 2] - SYM_BASE;
            // The left doc contains the queried topic's fact with the
            // labeled polarity, and no conflicting fact.
            let want = retrieval_fact_token(topic, sample.label);
            assert!(sample.ids[..mid].contains(&want), "{sample:?}");
            let conflict = retrieval_fact_token(topic, 1 - sample.label);
            assert!(!sample.ids[..mid].contains(&conflict), "{sample:?}");
        }
    }

    #[test]
    fn lm_recall_token_matches_copied() {
        let s = spec(Benchmark::Lm);
        let mut rng = SeededRng::new(5);
        for _ in 0..50 {
            let sample = lm(&s, &mut rng);
            let copy_pos = sample.ids.iter().position(|&t| t == COPY).unwrap();
            let recall_next = lm_recall_position(&sample.ids).unwrap();
            assert_eq!(sample.ids[recall_next], sample.ids[copy_pos + 1]);
            assert!(recall_next > copy_pos + 1, "recall must come after copy");
            // The dependency is long-range: at least a third of the
            // sequence apart.
            assert!(recall_next - copy_pos >= s.seq_len / 3 - 2);
        }
    }

    #[test]
    fn lm_recall_position_none_when_absent() {
        assert_eq!(lm_recall_position(&[4, 5, 6]), None);
        assert_eq!(lm_recall_position(&[4, RECALL]), None);
        assert_eq!(lm_recall_position(&[RECALL, 9]), Some(1));
    }
}
