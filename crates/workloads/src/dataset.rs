use crate::generators;
use dota_tensor::rng::SeededRng;

/// The five benchmarks of the paper's evaluation (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Question answering (SQuAD-like answer lookup). Paper seq len: 384.
    Qa,
    /// Image classification (LRA CIFAR10-like marker pairing). Paper: 1K.
    Image,
    /// Text classification (IMDb-like salient-token majority). Paper: 2K.
    Text,
    /// Document retrieval (AAN-like cross-document matching). Paper: 4K.
    Retrieval,
    /// Causal language modeling (WikiText-like copy-recall). Paper: 4K.
    Lm,
}

impl Benchmark {
    /// All five benchmarks in the paper's presentation order.
    pub const ALL: [Benchmark; 5] = [
        Benchmark::Qa,
        Benchmark::Image,
        Benchmark::Text,
        Benchmark::Retrieval,
        Benchmark::Lm,
    ];

    /// Sequence length used in the paper's evaluation.
    pub fn paper_seq_len(self) -> usize {
        match self {
            Benchmark::Qa => 384,
            Benchmark::Image => 1024,
            Benchmark::Text => 2048,
            Benchmark::Retrieval => 4096,
            Benchmark::Lm => 4096,
        }
    }

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Qa => "QA",
            Benchmark::Image => "Image",
            Benchmark::Text => "Text",
            Benchmark::Retrieval => "Retrieval",
            Benchmark::Lm => "LM",
        }
    }

    /// `true` if the benchmark is causal language modeling (metric:
    /// perplexity, lower is better) rather than classification (accuracy).
    pub fn is_lm(self) -> bool {
        matches!(self, Benchmark::Lm)
    }
}

/// One example: a token sequence and (for classification) its label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Token ids.
    pub ids: Vec<usize>,
    /// Class label. For LM tasks this is 0 and unused — the targets are the
    /// shifted ids.
    pub label: usize,
}

/// Specification of a synthetic task instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Which benchmark shape to generate.
    pub benchmark: Benchmark,
    /// Sequence length of every sample.
    pub seq_len: usize,
    /// Vocabulary size (generators reserve the low ids for structure
    /// tokens).
    pub vocab_size: usize,
    /// Number of classes (ignored for LM).
    pub n_classes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TaskSpec {
    /// Number of low token ids reserved for structure (markers, symbols,
    /// facts) by this task's generator; fillers start above this.
    pub fn structure_tokens(&self) -> usize {
        match self.benchmark {
            // QUERY/SEP/etc + question symbols + composite fact tokens.
            Benchmark::Qa => 4 + crate::generators::QA_KEYS * (1 + self.n_classes),
            _ => 16,
        }
    }
}

impl TaskSpec {
    /// A scaled-down spec suitable for training the tiny models in tests
    /// and experiments: same structure as the paper task, shorter sequence.
    ///
    /// # Panics
    ///
    /// Panics if `seq_len < 16`.
    pub fn tiny(benchmark: Benchmark, seq_len: usize, seed: u64) -> Self {
        assert!(seq_len >= 16, "synthetic tasks need seq_len >= 16");
        let (vocab_size, n_classes) = match benchmark {
            Benchmark::Qa => (40, 4),
            Benchmark::Image => (32, 4),
            Benchmark::Text => (32, 2),
            Benchmark::Retrieval => (32, 2),
            Benchmark::Lm => (24, 24),
        };
        Self {
            benchmark,
            seq_len,
            vocab_size,
            n_classes,
            seed,
        }
    }

    /// The paper-scale spec (sequence length from §5.1) — used for
    /// simulator-side experiments where no training happens.
    pub fn paper(benchmark: Benchmark, seed: u64) -> Self {
        let mut spec = Self::tiny(benchmark, 16, seed);
        spec.seq_len = benchmark.paper_seq_len();
        spec
    }

    /// Generates a dataset of `n` samples.
    pub fn generate(&self, n: usize) -> Dataset {
        let mut rng = SeededRng::new(self.seed);
        let samples = (0..n)
            .map(|_| match self.benchmark {
                Benchmark::Qa => generators::qa(self, &mut rng),
                Benchmark::Image => generators::image(self, &mut rng),
                Benchmark::Text => generators::text(self, &mut rng),
                Benchmark::Retrieval => generators::retrieval(self, &mut rng),
                Benchmark::Lm => generators::lm(self, &mut rng),
            })
            .collect();
        Dataset {
            spec: self.clone(),
            samples,
        }
    }

    /// Generates a train/test pair with disjoint randomness.
    pub fn generate_split(&self, train: usize, test: usize) -> (Dataset, Dataset) {
        let train_ds = self.generate(train);
        let mut test_spec = self.clone();
        test_spec.seed = self.seed.wrapping_add(0x5eed_0001);
        let test_ds = test_spec.generate(test);
        (train_ds, test_ds)
    }
}

/// A generated dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    spec: TaskSpec,
    samples: Vec<Sample>,
}

impl Dataset {
    /// The generating spec.
    pub fn spec(&self) -> &TaskSpec {
        &self.spec
    }

    /// The samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterator over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_seq_lens_match_section_5_1() {
        assert_eq!(Benchmark::Qa.paper_seq_len(), 384);
        assert_eq!(Benchmark::Image.paper_seq_len(), 1024);
        assert_eq!(Benchmark::Text.paper_seq_len(), 2048);
        assert_eq!(Benchmark::Retrieval.paper_seq_len(), 4096);
        assert_eq!(Benchmark::Lm.paper_seq_len(), 4096);
    }

    #[test]
    fn generation_is_deterministic() {
        for b in Benchmark::ALL {
            let spec = TaskSpec::tiny(b, 32, 9);
            let a = spec.generate(5);
            let b2 = spec.generate(5);
            assert_eq!(a.samples(), b2.samples(), "{b:?}");
        }
    }

    #[test]
    fn all_samples_well_formed() {
        for b in Benchmark::ALL {
            let spec = TaskSpec::tiny(b, 48, 3);
            let ds = spec.generate(20);
            assert_eq!(ds.len(), 20);
            for s in &ds {
                assert_eq!(s.ids.len(), 48, "{b:?}");
                assert!(s.ids.iter().all(|&t| t < spec.vocab_size), "{b:?}");
                if !b.is_lm() {
                    assert!(s.label < spec.n_classes, "{b:?}");
                }
            }
        }
    }

    #[test]
    fn split_differs_between_train_and_test() {
        let spec = TaskSpec::tiny(Benchmark::Text, 32, 1);
        let (train, test) = spec.generate_split(10, 10);
        assert_ne!(train.samples(), test.samples());
    }

    #[test]
    fn labels_are_balanced_enough() {
        // A degenerate generator (all one class) would make accuracy
        // experiments meaningless.
        for b in [
            Benchmark::Qa,
            Benchmark::Image,
            Benchmark::Text,
            Benchmark::Retrieval,
        ] {
            let spec = TaskSpec::tiny(b, 32, 17);
            let ds = spec.generate(200);
            let mut counts = vec![0usize; spec.n_classes];
            for s in &ds {
                counts[s.label] += 1;
            }
            let max = *counts.iter().max().unwrap();
            assert!(
                max < 200 * 3 / 4,
                "{b:?} label distribution too skewed: {counts:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "seq_len >= 16")]
    fn tiny_rejects_short_sequences() {
        let _ = TaskSpec::tiny(Benchmark::Qa, 8, 0);
    }
}

impl Dataset {
    /// Returns a copy with the samples shuffled by a seeded RNG
    /// (deterministic per seed).
    pub fn shuffled(&self, seed: u64) -> Dataset {
        let mut rng = SeededRng::new(seed);
        let mut samples = self.samples.clone();
        rng.shuffle(&mut samples);
        Dataset {
            spec: self.spec.clone(),
            samples,
        }
    }

    /// Per-class sample counts (length `n_classes`). For LM datasets every
    /// sample counts toward class 0.
    pub fn label_histogram(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.spec.n_classes.max(1)];
        let top = counts.len() - 1;
        for s in &self.samples {
            counts[s.label.min(top)] += 1;
        }
        counts
    }

    /// Splits off the first `n` samples into a new dataset, leaving the
    /// rest (useful for carving a validation slice from a training set).
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn split_at(&self, n: usize) -> (Dataset, Dataset) {
        assert!(
            n <= self.samples.len(),
            "split {n} beyond {}",
            self.samples.len()
        );
        let (a, b) = self.samples.split_at(n);
        (
            Dataset {
                spec: self.spec.clone(),
                samples: a.to_vec(),
            },
            Dataset {
                spec: self.spec.clone(),
                samples: b.to_vec(),
            },
        )
    }

    /// Iterator over mini-batches of `size` samples (the final batch may be
    /// smaller).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn batches(&self, size: usize) -> impl Iterator<Item = &[Sample]> {
        assert!(size > 0, "batch size must be positive");
        self.samples.chunks(size)
    }
}

#[cfg(test)]
mod util_tests {
    use super::*;

    fn text_ds() -> Dataset {
        TaskSpec::tiny(Benchmark::Text, 24, 8).generate(50)
    }

    #[test]
    fn shuffle_is_seeded_permutation() {
        let ds = text_ds();
        let a = ds.shuffled(1);
        let b = ds.shuffled(1);
        let c = ds.shuffled(2);
        assert_eq!(a.samples(), b.samples());
        assert_ne!(a.samples(), c.samples());
        // Same multiset of samples.
        let mut orig: Vec<_> = ds.samples().to_vec();
        let mut shuf: Vec<_> = a.samples().to_vec();
        orig.sort_by(|x, y| x.ids.cmp(&y.ids));
        shuf.sort_by(|x, y| x.ids.cmp(&y.ids));
        assert_eq!(orig, shuf);
    }

    #[test]
    fn histogram_sums_to_len() {
        let ds = text_ds();
        let hist = ds.label_histogram();
        assert_eq!(hist.len(), 2);
        assert_eq!(hist.iter().sum::<usize>(), ds.len());
        assert!(hist.iter().all(|&c| c > 0), "degenerate labels {hist:?}");
    }

    #[test]
    fn split_preserves_order_and_counts() {
        let ds = text_ds();
        let (a, b) = ds.split_at(10);
        assert_eq!(a.len(), 10);
        assert_eq!(b.len(), 40);
        assert_eq!(a.samples()[0], ds.samples()[0]);
        assert_eq!(b.samples()[0], ds.samples()[10]);
    }

    #[test]
    fn batches_cover_everything() {
        let ds = text_ds();
        let total: usize = ds.batches(8).map(<[Sample]>::len).sum();
        assert_eq!(total, 50);
        let sizes: Vec<usize> = ds.batches(8).map(<[Sample]>::len).collect();
        assert_eq!(sizes.last(), Some(&2));
        assert!(sizes[..sizes.len() - 1].iter().all(|&s| s == 8));
    }

    #[test]
    #[should_panic(expected = "split 99 beyond")]
    fn split_checks_bounds() {
        let _ = text_ds().split_at(99);
    }
}
