//! Evaluation metrics: accuracy, macro-F1 and perplexity.
//!
//! The paper reports SQuAD F1 (Table 1), classification accuracy (Fig. 11,
//! Image/Text/Retrieval) and perplexity (Fig. 11, LM — lower is better).

/// Classification accuracy over `(predicted, actual)` pairs.
///
/// Returns 0 for an empty input.
///
/// # Example
///
/// ```
/// use dota_workloads::metrics::accuracy;
///
/// assert_eq!(accuracy(&[(0, 0), (1, 1), (1, 0)]), 2.0 / 3.0);
/// ```
pub fn accuracy(pairs: &[(usize, usize)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let hits = pairs.iter().filter(|(p, a)| p == a).count();
    hits as f64 / pairs.len() as f64
}

/// Macro-averaged F1 over `n_classes` classes — the QA benchmark's metric.
///
/// Classes that never appear as prediction or truth are skipped.
pub fn macro_f1(pairs: &[(usize, usize)], n_classes: usize) -> f64 {
    let mut f1_sum = 0.0;
    let mut counted = 0usize;
    for c in 0..n_classes {
        let tp = pairs.iter().filter(|(p, a)| *p == c && *a == c).count() as f64;
        let fp = pairs.iter().filter(|(p, a)| *p == c && *a != c).count() as f64;
        let fnn = pairs.iter().filter(|(p, a)| *p != c && *a == c).count() as f64;
        if tp + fp + fnn == 0.0 {
            continue;
        }
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let recall = if tp + fnn > 0.0 { tp / (tp + fnn) } else { 0.0 };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        f1_sum += f1;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        f1_sum / counted as f64
    }
}

/// Perplexity from a mean cross-entropy (nats): `exp(ce)`.
pub fn perplexity(mean_cross_entropy: f64) -> f64 {
    mean_cross_entropy.exp()
}

/// Mean negative log-likelihood of target tokens under row-wise logits,
/// the quantity [`perplexity`] exponentiates.
///
/// `logits` rows correspond to positions `0..targets.len()`.
///
/// # Panics
///
/// Panics if `targets.len()` exceeds `logits.rows()` or a target id is out
/// of range.
pub fn mean_nll(logits: &dota_tensor::Matrix, targets: &[usize]) -> f64 {
    assert!(
        targets.len() <= logits.rows(),
        "more targets than positions"
    );
    let probs = dota_tensor::ops::softmax_rows(logits);
    let mut acc = 0.0f64;
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < logits.cols(), "target {t} out of range");
        acc -= (probs[(r, t)].max(1e-12) as f64).ln();
    }
    acc / targets.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dota_tensor::Matrix;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[]), 0.0);
        assert_eq!(accuracy(&[(1, 1)]), 1.0);
        assert_eq!(accuracy(&[(0, 1), (1, 0)]), 0.0);
    }

    #[test]
    fn macro_f1_perfect_and_zero() {
        let perfect = [(0, 0), (1, 1), (0, 0)];
        assert!((macro_f1(&perfect, 2) - 1.0).abs() < 1e-12);
        let wrong = [(0, 1), (1, 0)];
        assert_eq!(macro_f1(&wrong, 2), 0.0);
    }

    #[test]
    fn macro_f1_penalizes_majority_guessing() {
        // 3 of class 0, 1 of class 1, always predicting 0.
        let pairs = [(0, 0), (0, 0), (0, 0), (0, 1)];
        let acc = accuracy(&pairs);
        let f1 = macro_f1(&pairs, 2);
        assert!(f1 < acc, "macro-F1 {f1} vs accuracy {acc}");
    }

    #[test]
    fn perplexity_of_uniform_model() {
        // Uniform over V classes → CE = ln V → PPL = V.
        let v = 16.0f64;
        assert!((perplexity(v.ln()) - v).abs() < 1e-9);
    }

    #[test]
    fn mean_nll_matches_hand_computation() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0], &[10.0, 0.0]]).unwrap();
        let nll = mean_nll(&logits, &[0, 0]);
        // Row 0: -ln(0.5); row 1: ~0.
        let expect = (0.5f64.ln().abs() + 0.0) / 2.0;
        assert!((nll - expect).abs() < 1e-3, "{nll} vs {expect}");
    }

    #[test]
    #[should_panic(expected = "more targets")]
    fn mean_nll_rejects_excess_targets() {
        let logits = Matrix::zeros(1, 2);
        let _ = mean_nll(&logits, &[0, 1]);
    }
}
