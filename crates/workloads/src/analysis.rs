//! Attention-distribution analysis (paper §2.2 / Fig. 1 motivation).
//!
//! The paper's premise is that trained attention rows are *concentrated*:
//! a few connections carry almost all probability mass, so most edges can
//! be omitted. These statistics quantify that on real attention matrices:
//! row entropy, the mass captured by the top-k connections, the effective
//! connection count (participation ratio), and positional locality.

use dota_tensor::{topk, Matrix};

/// Summary statistics of one attention matrix (rows = queries, each row a
/// probability distribution).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttentionStats {
    /// Mean row entropy in nats (uniform over `n` keys = `ln n`).
    pub mean_entropy: f64,
    /// Mean fraction of each row's mass captured by its top 10% entries.
    pub top10pct_mass: f64,
    /// Mean participation ratio `1 / Σ p²` — the "effective number" of
    /// attended keys per query.
    pub effective_connections: f64,
    /// Mean attended distance `Σ p·|i - j|` — positional locality.
    pub mean_distance: f64,
}

/// Computes [`AttentionStats`] for a row-stochastic attention matrix.
///
/// # Panics
///
/// Panics if the matrix is empty.
pub fn attention_stats(attn: &Matrix) -> AttentionStats {
    assert!(!attn.is_empty(), "empty attention matrix");
    let n = attn.cols();
    let top_k = (n / 10).max(1);
    let mut entropy = 0.0f64;
    let mut top_mass = 0.0f64;
    let mut eff = 0.0f64;
    let mut dist = 0.0f64;
    for (i, row) in attn.rows_iter().enumerate() {
        let mut h = 0.0f64;
        let mut sq = 0.0f64;
        let mut d = 0.0f64;
        for (j, &p) in row.iter().enumerate() {
            let p = p as f64;
            if p > 1e-12 {
                h -= p * p.ln();
            }
            sq += p * p;
            d += p * (i as f64 - j as f64).abs();
        }
        entropy += h;
        eff += if sq > 0.0 { 1.0 / sq } else { 0.0 };
        dist += d;
        let idx = topk::top_k_indices(row, top_k);
        top_mass += idx.iter().map(|&j| row[j] as f64).sum::<f64>();
    }
    let rows = attn.rows() as f64;
    AttentionStats {
        mean_entropy: entropy / rows,
        top10pct_mass: top_mass / rows,
        effective_connections: eff / rows,
        mean_distance: dist / rows,
    }
}

/// Fraction of total attention mass the strongest `retention` of
/// connections captures, per row (the quantity behind Table 1: if this is
/// near 1, omission is nearly free).
pub fn mass_at_retention(attn: &Matrix, retention: f64) -> f64 {
    assert!(
        retention > 0.0 && retention <= 1.0,
        "retention {retention} out of range"
    );
    let n = attn.cols();
    let k = ((retention * n as f64).round() as usize).clamp(1, n);
    let mut acc = 0.0f64;
    for row in attn.rows_iter() {
        let idx = topk::top_k_indices(row, k);
        acc += idx.iter().map(|&j| row[j] as f64).sum::<f64>();
    }
    acc / attn.rows() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dota_tensor::ops;
    use dota_tensor::rng::SeededRng;

    #[test]
    fn uniform_attention_has_max_entropy_and_full_spread() {
        let n = 16;
        let attn = Matrix::filled(n, n, 1.0 / n as f32);
        let s = attention_stats(&attn);
        assert!((s.mean_entropy - (n as f64).ln()).abs() < 1e-6);
        assert!((s.effective_connections - n as f64).abs() < 1e-3);
        assert!((s.top10pct_mass - 1.0 / 10.0).abs() < 0.05);
    }

    #[test]
    fn one_hot_attention_is_fully_concentrated() {
        let n = 8;
        let attn = Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 });
        let s = attention_stats(&attn);
        assert!(s.mean_entropy < 1e-9);
        assert!((s.effective_connections - 1.0).abs() < 1e-9);
        assert!((s.top10pct_mass - 1.0).abs() < 1e-9);
        assert_eq!(s.mean_distance, 0.0);
    }

    #[test]
    fn peaked_softmax_concentrates_mass() {
        let mut rng = SeededRng::new(1);
        let logits = rng.normal_matrix(32, 32, 1.0);
        let soft = ops::softmax_rows(&logits);
        let sharp = ops::softmax_rows(&logits.scale(8.0));
        let s_soft = attention_stats(&soft);
        let s_sharp = attention_stats(&sharp);
        assert!(s_sharp.mean_entropy < s_soft.mean_entropy);
        assert!(s_sharp.top10pct_mass > s_soft.top10pct_mass);
        assert!(s_sharp.effective_connections < s_soft.effective_connections);
    }

    #[test]
    fn mass_at_retention_monotone() {
        let mut rng = SeededRng::new(2);
        let attn = ops::softmax_rows(&rng.normal_matrix(16, 16, 2.0));
        let m05 = mass_at_retention(&attn, 0.05);
        let m20 = mass_at_retention(&attn, 0.20);
        let m100 = mass_at_retention(&attn, 1.0);
        assert!(m05 < m20 && m20 < m100);
        assert!((m100 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn local_window_attention_has_small_distance() {
        let n = 32;
        let local = Matrix::from_fn(n, n, |i, j| {
            if (i as i64 - j as i64).abs() <= 1 {
                1.0
            } else {
                0.0
            }
        });
        let norm = ops::softmax_rows(&local.scale(100.0));
        let s = attention_stats(&norm);
        assert!(s.mean_distance < 1.5, "distance {}", s.mean_distance);
    }
}
