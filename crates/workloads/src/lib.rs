//! Synthetic long-sequence benchmark tasks mirroring the paper's workloads.
//!
//! The paper evaluates on SQuAD (QA, seq 384), three Long-Range-Arena tasks
//! (Image 1K, Text 2K, Retrieval 4K) and WikiText-103 causal LM (4K). Those
//! datasets and their pretrained models are not available here, so each is
//! replaced by a *synthetic task with planted long-range structure*: the
//! label (or next token) depends on a small number of distant token pairs,
//! so (a) a Transformer must use long-range attention to solve it, and
//! (b) only a few attention connections per query actually matter — the
//! property DOTA exploits. This preserves the paper's accuracy-vs-retention
//! experiment shape (dense ≈ sparse at low retention; learned detection ≻
//! training-free approximation).
//!
//! | Paper benchmark | Synthetic counterpart |
//! |---|---|
//! | QA (SQuAD, 384) | [`Benchmark::Qa`] — fact lookup: the opening question symbol must be matched to its distant composite fact token to read the answer |
//! | Image (CIFAR10 as 1K pixels) | [`Benchmark::Image`] — one bright class marker among dark pixels and a distractor; the label is the marker identity |
//! | Text (IMDb, 2K) | [`Benchmark::Text`] — majority sentiment over a few salient tokens in filler |
//! | Retrieval (AAN, 4K) | [`Benchmark::Retrieval`] — a query topic in one document must be matched to its fact in the other, across the separator |
//! | LM (WikiText-103, 4K) | [`Benchmark::Lm`] — causal copy-recall: a quoted token must be reproduced at a distant recall point |

#![deny(missing_docs)]

pub mod analysis;
mod dataset;
pub mod generators;
pub mod metrics;

pub use dataset::{Benchmark, Dataset, Sample, TaskSpec};
