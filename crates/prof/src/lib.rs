//! Host-side profiling for the DOTA reproduction.
//!
//! `dota-trace` and `dota-metrics` made the *simulated* accelerator
//! observable; this crate makes the Rust stack itself observable:
//!
//! * **Scoped wall-clock span timers** ([`span`]) with per-thread stacks.
//!   Spans form a call tree (interned frame-by-frame), exportable as a
//!   collapsed-stack flamegraph (`.folded`, one `a;b;c count` line per
//!   stack) and as canonical profile JSON. Every span also mirrors itself
//!   into the Chrome-trace stream via [`dota_trace::host_span`], so host
//!   spans appear alongside simulated lane events whenever a trace session
//!   is live.
//! * **Allocation counters** ([`record_alloc`]/[`record_dealloc`]) tracking
//!   bytes allocated/freed and peak usage, attributed to the innermost
//!   live span of the allocating thread. The `prof-alloc` cargo feature
//!   installs a counting `#[global_allocator]` that feeds these hooks;
//!   without it the counters stay at zero unless fed manually (tests).
//! * **Kernel latency histograms**: every span name accumulates a
//!   [`dota_metrics::Histogram`] of its duration in milliseconds, so hot
//!   kernels (GEMM, attention, detector score) get p50/p95/p99 for free.
//!
//! Collection follows the `dota-trace` discipline: a relaxed atomic no-op
//! unless a [`session`] is live, sessions are globally exclusive, and the
//! recording is read through the guard. With no session *and* no trace
//! session, [`span`] costs two relaxed loads and no allocation.

use dota_metrics::{fmt_f64, write_json_string, Histogram};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Per-span allocation attribution is kept in fixed atomic arrays so the
/// allocator hook never allocates. Spans interned beyond this many distinct
/// frames fold their allocation counts into the root slot (slot 0).
pub const MAX_ALLOC_NODES: usize = 512;

const ROOT: u32 = 0;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SESSION_GATE: Mutex<()> = Mutex::new(());
static STATE: Mutex<ProfState> = Mutex::new(ProfState::new());

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
// Net live bytes can go negative when memory allocated before the session
// is freed during it, hence signed.
static NET_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_U64: AtomicU64 = AtomicU64::new(0);
static NODE_ALLOC_BYTES: [AtomicU64; MAX_ALLOC_NODES] = [ZERO_U64; MAX_ALLOC_NODES];
static NODE_ALLOC_CALLS: [AtomicU64; MAX_ALLOC_NODES] = [ZERO_U64; MAX_ALLOC_NODES];

thread_local! {
    /// Innermost live span of this thread (`ROOT` when none). `Cell` with a
    /// const initializer so the allocator hook can read it without ever
    /// triggering a lazy TLS initializer (which could allocate).
    static CURRENT_NODE: Cell<u32> = const { Cell::new(ROOT) };
    /// This thread's open-span stack.
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

#[derive(Clone, Copy)]
struct Frame {
    node: u32,
    /// Nanoseconds spent in already-closed direct children, accumulated so
    /// the parent can compute its self time on close.
    child_ns: u64,
}

struct Node {
    parent: u32,
    name: String,
}

#[derive(Clone, Copy, Default)]
struct NodeStat {
    count: u64,
    total_ns: u64,
    self_ns: u64,
}

struct ProfState {
    label: String,
    /// Interned frame tree; index 0 is the reserved root sentinel.
    nodes: Vec<Node>,
    index: BTreeMap<(u32, String), u32>,
    stats: Vec<NodeStat>,
    /// Span-duration histograms (milliseconds) keyed by span name.
    hists: BTreeMap<String, Histogram>,
    /// Incremented on every session start; spans record it at open and are
    /// discarded at close if a different session is live by then.
    session: u64,
}

impl ProfState {
    const fn new() -> Self {
        ProfState {
            label: String::new(),
            nodes: Vec::new(),
            index: BTreeMap::new(),
            stats: Vec::new(),
            hists: BTreeMap::new(),
            session: 0,
        }
    }

    fn clear(&mut self, label: &str) {
        self.label = label.to_owned();
        self.nodes.clear();
        self.nodes.push(Node {
            parent: ROOT,
            name: String::new(),
        });
        self.index.clear();
        self.stats.clear();
        self.stats.push(NodeStat::default());
        self.hists.clear();
        self.session += 1;
    }

    fn intern(&mut self, parent: u32, name: &str) -> u32 {
        if let Some(&id) = self.index.get(&(parent, name.to_owned())) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            parent,
            name: name.to_owned(),
        });
        self.stats.push(NodeStat::default());
        self.index.insert((parent, name.to_owned()), id);
        id
    }

    /// Root-to-node frame path joined with `;` (collapsed-stack syntax).
    fn path(&self, mut node: u32) -> String {
        let mut names: Vec<&str> = Vec::new();
        while node != ROOT {
            names.push(&self.nodes[node as usize].name);
            node = self.nodes[node as usize].parent;
        }
        names.reverse();
        names.join(";")
    }
}

fn lock_state() -> MutexGuard<'static, ProfState> {
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether a profiling session is currently live (relaxed load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Opens a scoped wall-clock span on the calling thread; timing is recorded
/// when the returned guard drops. Spans nest per thread by construction
/// (RAII). The span is always mirrored to [`dota_trace::host_span`], so it
/// shows up in Chrome traces even when no profiling session is live.
///
/// Worker threads (e.g. the `dota-parallel` pool) start from an empty
/// stack, so their spans root at the top level of the profile rather than
/// under the span that spawned the work — profiles are per-thread-honest.
pub fn span(name: &str) -> ProfSpan {
    let trace = dota_trace::host_span(name);
    if !enabled() {
        return ProfSpan {
            _trace: trace,
            start: None,
            node: ROOT,
            session: 0,
        };
    }
    let parent = CURRENT_NODE.with(Cell::get);
    let (node, session) = {
        let mut st = lock_state();
        (st.intern(parent, name), st.session)
    };
    STACK.with(|s| s.borrow_mut().push(Frame { node, child_ns: 0 }));
    CURRENT_NODE.with(|c| c.set(node));
    ProfSpan {
        _trace: trace,
        start: Some(Instant::now()),
        node,
        session,
    }
}

/// Guard for a scoped wall-clock span (see [`span`]).
#[derive(Debug)]
pub struct ProfSpan {
    _trace: dota_trace::HostSpan,
    start: Option<Instant>,
    node: u32,
    session: u64,
}

impl Drop for ProfSpan {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        let elapsed_ns = elapsed.as_nanos() as u64;
        // Unwind this thread's stack even if the session ended while the
        // span was open, so a later session starts from a clean stack.
        let child_ns = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let mut child = 0;
            while let Some(f) = s.pop() {
                if f.node == self.node {
                    child = f.child_ns;
                    break;
                }
            }
            if let Some(parent) = s.last_mut() {
                parent.child_ns += elapsed_ns;
            }
            CURRENT_NODE.with(|c| c.set(s.last().map_or(ROOT, |f| f.node)));
            child
        });
        if !enabled() {
            return;
        }
        let mut st = lock_state();
        if st.session != self.session {
            return;
        }
        let stat = &mut st.stats[self.node as usize];
        stat.count += 1;
        stat.total_ns += elapsed_ns;
        stat.self_ns += elapsed_ns.saturating_sub(child_ns);
        let name = st.nodes[self.node as usize].name.clone();
        st.hists
            .entry(name)
            .or_default()
            .record(elapsed.as_secs_f64() * 1e3);
    }
}

// --- Allocation accounting. ---

/// Records an allocation of `bytes`, attributed to the calling thread's
/// innermost live span. No-op without a live session. Called by the
/// `prof-alloc` global allocator; safe to call directly (tests do).
///
/// Never allocates — a hard requirement since it runs inside the allocator.
#[inline]
pub fn record_alloc(bytes: u64) {
    if !enabled() {
        return;
    }
    ALLOC_BYTES.fetch_add(bytes, Ordering::Relaxed);
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    let net = NET_BYTES.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
    PEAK_BYTES.fetch_max(net, Ordering::Relaxed);
    // `try_with` guards against TLS teardown; unattributable allocations
    // fold into the root slot.
    let node = CURRENT_NODE.try_with(Cell::get).unwrap_or(ROOT) as usize;
    let slot = if node < MAX_ALLOC_NODES { node } else { 0 };
    NODE_ALLOC_BYTES[slot].fetch_add(bytes, Ordering::Relaxed);
    NODE_ALLOC_CALLS[slot].fetch_add(1, Ordering::Relaxed);
}

/// Records a deallocation of `bytes`. No-op without a live session.
#[inline]
pub fn record_dealloc(bytes: u64) {
    if !enabled() {
        return;
    }
    FREED_BYTES.fetch_add(bytes, Ordering::Relaxed);
    NET_BYTES.fetch_sub(bytes as i64, Ordering::Relaxed);
}

/// Aggregate allocation counters for the live (or just-ended) session.
/// All zeros unless the `prof-alloc` allocator is installed or the hooks
/// were fed manually.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Total bytes allocated during the session.
    pub allocated_bytes: u64,
    /// Number of allocation calls during the session.
    pub allocation_calls: u64,
    /// Total bytes freed during the session (may exceed `allocated_bytes`
    /// when pre-session memory is released).
    pub freed_bytes: u64,
    /// Peak net bytes live during the session (relative to session start).
    pub peak_bytes: u64,
    /// Net bytes still live at snapshot time (clamped at zero).
    pub live_bytes: u64,
}

/// Snapshot of the aggregate allocation counters.
pub fn alloc_stats() -> AllocStats {
    AllocStats {
        allocated_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        allocation_calls: ALLOC_CALLS.load(Ordering::Relaxed),
        freed_bytes: FREED_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed).max(0) as u64,
        live_bytes: NET_BYTES.load(Ordering::Relaxed).max(0) as u64,
    }
}

/// Resets the peak-bytes watermark to the current net level. Benchmarks
/// call this between kernels to get a per-kernel peak.
pub fn reset_peak() {
    PEAK_BYTES.store(NET_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

fn reset_alloc_counters() {
    ALLOC_BYTES.store(0, Ordering::Relaxed);
    ALLOC_CALLS.store(0, Ordering::Relaxed);
    FREED_BYTES.store(0, Ordering::Relaxed);
    NET_BYTES.store(0, Ordering::Relaxed);
    PEAK_BYTES.store(0, Ordering::Relaxed);
    for slot in 0..MAX_ALLOC_NODES {
        NODE_ALLOC_BYTES[slot].store(0, Ordering::Relaxed);
        NODE_ALLOC_CALLS[slot].store(0, Ordering::Relaxed);
    }
}

// --- Sessions and export. ---

/// Begins an exclusive profiling session: clears the recording, enables
/// collection, and returns a guard through which the profile is read and
/// exported. Collection stops when the guard drops.
///
/// Blocks until any other live profiling session ends (same contract as
/// [`dota_trace::session`], but on an independent gate — a profiling
/// session can coexist with a trace session).
pub fn session(label: &str) -> ProfGuard {
    let gate = SESSION_GATE.lock().unwrap_or_else(PoisonError::into_inner);
    lock_state().clear(label);
    reset_alloc_counters();
    ENABLED.store(true, Ordering::SeqCst);
    ProfGuard { _gate: gate }
}

/// Exclusive handle on the active profiling session (see [`session`]).
#[derive(Debug)]
pub struct ProfGuard {
    _gate: MutexGuard<'static, ()>,
}

impl Drop for ProfGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
    }
}

impl ProfGuard {
    /// The session label.
    pub fn label(&self) -> String {
        lock_state().label.clone()
    }

    /// Per-span aggregate statistics (see [`spans_snapshot`]).
    pub fn spans(&self) -> Vec<SpanStat> {
        spans_snapshot()
    }

    /// Aggregate allocation counters (see [`alloc_stats`]).
    pub fn alloc(&self) -> AllocStats {
        alloc_stats()
    }

    /// The profile as collapsed flamegraph stacks: one
    /// `frame;frame;frame self_microseconds` line per observed stack,
    /// lexicographically sorted (deterministic for a given span set).
    /// Render with any flamegraph tool that accepts folded stacks.
    pub fn folded(&self) -> String {
        let mut lines: Vec<String> = spans_snapshot()
            .iter()
            .filter(|s| s.count > 0)
            .map(|s| format!("{} {}", s.path, (s.self_ns / 1_000).max(1)))
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// The profile as a canonical JSON document: label, per-span stats
    /// (sorted by path), kernel latency histogram summaries, and aggregate
    /// allocation counters.
    pub fn profile_json(&self) -> String {
        let spans = spans_snapshot();
        let alloc = alloc_stats();
        let (label, hist_entries) = {
            let st = lock_state();
            let hists: Vec<(String, String)> = st
                .hists
                .iter()
                .filter(|(_, h)| !h.is_empty())
                .map(|(k, h)| (k.clone(), h.summary_json()))
                .collect();
            (st.label.clone(), hists)
        };
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"label\": ");
        write_json_string(&mut out, &label);
        out.push_str(",\n  \"schema\": \"dota-prof-v1\",\n  \"spans\": [");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"path\": ");
            write_json_string(&mut out, &s.path);
            out.push_str(&format!(
                ", \"count\": {}, \"total_ms\": {}, \"self_ms\": {}, \"alloc_bytes\": {}, \"alloc_calls\": {}}}",
                s.count,
                fmt_f64(s.total_ns as f64 / 1e6),
                fmt_f64(s.self_ns as f64 / 1e6),
                s.alloc_bytes,
                s.alloc_calls,
            ));
        }
        if !spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"kernels\": {");
        for (i, (name, json)) in hist_entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_json_string(&mut out, name);
            out.push_str(": ");
            out.push_str(json.trim_end());
        }
        if !hist_entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "}},\n  \"alloc\": {{\"allocated_bytes\": {}, \"allocation_calls\": {}, \"freed_bytes\": {}, \"peak_bytes\": {}, \"live_bytes\": {}}}\n}}\n",
            alloc.allocated_bytes,
            alloc.allocation_calls,
            alloc.freed_bytes,
            alloc.peak_bytes,
            alloc.live_bytes,
        ));
        out
    }

    /// Writes [`ProfGuard::folded`] to `path`.
    pub fn write_folded(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.folded())
    }

    /// Writes [`ProfGuard::profile_json`] to `path`.
    pub fn write_profile(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.profile_json())
    }
}

/// Aggregate statistics of one interned span frame (a node in the call
/// tree, identified by its root-to-frame path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Root-to-frame path, `;`-joined (collapsed-stack syntax).
    pub path: String,
    /// The frame's own name (last path segment).
    pub name: String,
    /// Number of ancestor frames (0 for root-level spans).
    pub depth: usize,
    /// Completed activations.
    pub count: u64,
    /// Total wall-clock nanoseconds (including children).
    pub total_ns: u64,
    /// Wall-clock nanoseconds minus time in child spans.
    pub self_ns: u64,
    /// Bytes allocated while this frame was innermost.
    pub alloc_bytes: u64,
    /// Allocation calls while this frame was innermost.
    pub alloc_calls: u64,
}

/// Snapshot of per-span statistics for the live session, sorted by path.
/// Frames with zero completed activations (still open) are included so
/// their allocation attribution isn't lost.
pub fn spans_snapshot() -> Vec<SpanStat> {
    let st = lock_state();
    let mut out: Vec<SpanStat> = (1..st.nodes.len())
        .map(|i| {
            let mut depth = 0;
            let mut node = st.nodes[i].parent;
            while node != ROOT {
                depth += 1;
                node = st.nodes[node as usize].parent;
            }
            let (alloc_bytes, alloc_calls) = if i < MAX_ALLOC_NODES {
                (
                    NODE_ALLOC_BYTES[i].load(Ordering::Relaxed),
                    NODE_ALLOC_CALLS[i].load(Ordering::Relaxed),
                )
            } else {
                (0, 0)
            };
            SpanStat {
                path: st.path(i as u32),
                name: st.nodes[i].name.clone(),
                depth,
                count: st.stats[i].count,
                total_ns: st.stats[i].total_ns,
                self_ns: st.stats[i].self_ns,
                alloc_bytes,
                alloc_calls,
            }
        })
        .collect();
    out.sort_by(|a, b| a.path.cmp(&b.path));
    out
}

// --- Counting global allocator (feature-gated). ---

/// A `System`-wrapping allocator that feeds [`record_alloc`] /
/// [`record_dealloc`]. Installed as `#[global_allocator]` by the
/// `prof-alloc` feature; exported so binaries can install it themselves if
/// they prefer.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the bookkeeping hooks never
// allocate and never panic.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        let p = std::alloc::System.alloc(layout);
        if !p.is_null() {
            record_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        let p = std::alloc::System.alloc_zeroed(layout);
        if !p.is_null() {
            record_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::System.dealloc(ptr, layout);
        record_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        let p = std::alloc::System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            record_dealloc(layout.size() as u64);
            record_alloc(new_size as u64);
        }
        p
    }
}

#[cfg(feature = "prof-alloc")]
#[global_allocator]
static COUNTING_ALLOC: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    // Sessions are globally exclusive, so tests that open one serialize
    // through the gate automatically; assertions about global state stay
    // race-free.

    #[test]
    fn disabled_spans_are_inert() {
        assert!(!enabled());
        let before = alloc_stats();
        {
            let _s = span("idle.outer");
            let _t = span("idle.inner");
            record_alloc(1024);
        }
        assert_eq!(alloc_stats(), before);
        let g = session("empty");
        assert!(g.spans().is_empty());
        assert_eq!(g.folded(), "");
    }

    #[test]
    fn spans_nest_and_attribute_self_time() {
        let g = session("nesting");
        {
            let _a = span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _b = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            {
                let _b = span("inner");
            }
        }
        let spans = g.spans();
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.path == "outer").unwrap();
        let inner = spans.iter().find(|s| s.path == "outer;inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        assert_eq!(inner.depth, 1);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(
            outer.self_ns <= outer.total_ns - inner.total_ns,
            "self excludes children: self {} total {} child {}",
            outer.self_ns,
            outer.total_ns,
            inner.total_ns
        );
    }

    #[test]
    fn folded_lines_are_well_formed_and_sorted() {
        let g = session("folded");
        {
            let _a = span("alpha");
            let _b = span("beta");
            let _c = span("gamma");
        }
        {
            let _a = span("alpha");
        }
        let folded = g.folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 3);
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "folded output is sorted");
        for line in &lines {
            let (stack, count) = line.rsplit_once(' ').expect("stack<space>count");
            assert!(!stack.is_empty());
            for frame in stack.split(';') {
                assert!(!frame.is_empty(), "empty frame in {line:?}");
            }
            let n: u64 = count.parse().expect("count parses");
            assert!(n > 0, "count positive in {line:?}");
        }
        assert!(lines.iter().any(|l| l.starts_with("alpha;beta;gamma ")));
    }

    // With `prof-alloc` on, the global allocator feeds the same counters
    // the exactness tests feed manually, so their byte-for-byte assertions
    // only hold without the feature. The feature build gets its own test
    // below proving real allocations are observed.
    #[cfg(not(feature = "prof-alloc"))]
    #[test]
    fn alloc_counters_are_exact_and_monotone() {
        let g = session("alloc");
        {
            let _a = span("worker");
            record_alloc(100);
            record_alloc(50);
            record_dealloc(30);
        }
        let s1 = g.alloc();
        assert_eq!(s1.allocated_bytes, 150);
        assert_eq!(s1.allocation_calls, 2);
        assert_eq!(s1.freed_bytes, 30);
        assert_eq!(s1.peak_bytes, 150);
        assert_eq!(s1.live_bytes, 120);
        record_alloc(10);
        let s2 = g.alloc();
        assert!(s2.allocated_bytes > s1.allocated_bytes, "monotone");
        let spans = g.spans();
        let worker = spans.iter().find(|s| s.path == "worker").unwrap();
        assert_eq!(worker.alloc_bytes, 150);
        assert_eq!(worker.alloc_calls, 2);
    }

    #[cfg(not(feature = "prof-alloc"))]
    #[test]
    fn alloc_counters_exact_across_threads() {
        for threads in [1usize, 8] {
            let g = session("alloc_threads");
            let handles: Vec<_> = (0..threads)
                .map(|i| {
                    std::thread::spawn(move || {
                        let _s = span("thread.work");
                        for _ in 0..100 {
                            record_alloc(8 + i as u64);
                        }
                        for _ in 0..100 {
                            record_dealloc(8 + i as u64);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let expect: u64 = (0..threads as u64).map(|i| 100 * (8 + i)).sum();
            let s = g.alloc();
            assert_eq!(s.allocated_bytes, expect, "{threads} threads exact");
            assert_eq!(s.freed_bytes, expect);
            assert_eq!(s.allocation_calls, 100 * threads as u64);
            let spans = g.spans();
            let w = spans.iter().find(|s| s.path == "thread.work").unwrap();
            assert_eq!(w.alloc_bytes, expect);
            assert_eq!(w.count, threads as u64);
        }
    }

    #[cfg(not(feature = "prof-alloc"))]
    #[test]
    fn peak_tracks_high_water_mark_and_resets() {
        let _g = session("peak");
        record_alloc(1000);
        record_dealloc(900);
        record_alloc(200);
        let s = alloc_stats();
        assert_eq!(s.peak_bytes, 1000);
        assert_eq!(s.live_bytes, 300);
        reset_peak();
        record_alloc(50);
        let s = alloc_stats();
        assert_eq!(s.peak_bytes, 350, "peak re-anchored at current net");
    }

    #[test]
    fn profile_json_is_canonical() {
        let g = session("json");
        {
            let _a = span("k");
            record_alloc(64);
        }
        let a = g.profile_json();
        // Re-rendering is byte-identical — except under `prof-alloc`, where
        // rendering itself allocates and legitimately moves the counters.
        #[cfg(not(feature = "prof-alloc"))]
        {
            assert_eq!(a, g.profile_json());
            assert!(a.contains("\"alloc_bytes\": 64"));
        }
        assert!(a.contains("\"label\": \"json\""));
        assert!(a.contains("\"schema\": \"dota-prof-v1\""));
        assert!(a.contains("\"path\": \"k\""));
        assert!(a.contains("\"kernels\""));
    }

    /// With the counting allocator installed, real heap traffic shows up
    /// in the counters without any manual feeding.
    #[cfg(feature = "prof-alloc")]
    #[test]
    fn real_allocations_are_counted() {
        let g = session("real_alloc");
        let before = g.alloc();
        {
            let _s = span("alloc.heavy");
            let v: Vec<u64> = vec![0; 1 << 16];
            std::hint::black_box(&v);
        }
        let after = g.alloc();
        assert!(
            after.allocated_bytes >= before.allocated_bytes + (1 << 19),
            "vec of 64Ki u64 counted: {} -> {}",
            before.allocated_bytes,
            after.allocated_bytes
        );
        assert!(after.peak_bytes >= 1 << 19);
        let spans = g.spans();
        let s = spans.iter().find(|s| s.path == "alloc.heavy").unwrap();
        assert!(s.alloc_bytes >= 1 << 19, "attributed to innermost span");
    }

    #[test]
    fn sessions_reset_state() {
        {
            let g = session("first");
            let _s = span("only.in.first");
            drop(_s);
            assert_eq!(g.spans().len(), 1);
            record_alloc(7);
        }
        let g = session("second");
        assert!(g.spans().is_empty());
        #[cfg(not(feature = "prof-alloc"))]
        assert_eq!(g.alloc(), AllocStats::default());
        assert_eq!(g.label(), "second");
    }
}
