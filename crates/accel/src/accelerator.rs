use crate::energy;
use crate::fault::SimFault;
use crate::memory::{DramModel, SramModel};
use crate::sched;
use crate::synth::{sample_selection, SelectionProfile};
use dota_faults::FaultSite;
use dota_quant::rmmu::RmmuConfig;
use dota_quant::Precision;
use dota_tensor::rng::SeededRng;
use dota_transformer::{ForwardTrace, TransformerConfig};

/// Configuration of one DOTA accelerator (paper Table 2 defaults).
#[derive(Debug, Clone)]
pub struct AccelConfig {
    /// Number of compute Lanes (paper: 4, the LCM of head counts §4.1).
    pub lanes: usize,
    /// Per-Lane RMMU shape/precision configuration.
    pub rmmu: RmmuConfig,
    /// Queries processed in parallel per head (paper: 4, §5.5).
    pub token_parallelism: usize,
    /// Sustained DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Precision of the detection computation.
    pub detect_precision: Precision,
    /// Precision of the parameterized GEMMs (linear transformations and
    /// FFN). FX16 by default; §5.3 suggests INT8 weight quantization once
    /// detection has made these stages the bottleneck, which the RMMU runs
    /// 4× faster on the same PEs.
    pub linear_precision: Precision,
    /// Locality-aware out-of-order scheduling enabled (ablation toggle).
    pub out_of_order: bool,
    /// Compute scale factor: 1.0 is the 2 TOPS Table 2 design; 6.0 matches
    /// the GPU-comparable 12 TOPS build used in §5.3's comparison.
    pub scale: f64,
    /// Sustained PE utilization (pipeline fill, drain and tail-imbalance
    /// losses). Applied to all compute rates.
    pub utilization: f64,
}

impl Default for AccelConfig {
    fn default() -> Self {
        Self {
            lanes: 4,
            rmmu: RmmuConfig::uniform(Precision::Fx16),
            token_parallelism: 4,
            dram_gbps: 128.0,
            detect_precision: Precision::Int4,
            linear_precision: Precision::Fx16,
            out_of_order: true,
            scale: 1.0,
            utilization: 0.75,
        }
    }
}

impl AccelConfig {
    /// The 12 TOPS build scaled to V100-comparable peak throughput (§5.3).
    pub fn gpu_comparable() -> Self {
        Self {
            scale: 6.0,
            dram_gbps: 768.0,
            ..Self::default()
        }
    }

    /// Effective FX16 MACs per cycle across all lanes (with scaling and
    /// sustained utilization).
    pub fn fx16_macs_per_cycle(&self) -> f64 {
        self.lanes as f64
            * self.rmmu.macs_per_cycle(Precision::Fx16) as f64
            * self.scale
            * self.utilization
    }

    /// Effective MACs per cycle at the detection precision when the array
    /// is reconfigured for detection work.
    pub fn detect_macs_per_cycle(&self) -> f64 {
        self.reconfigured_macs_per_cycle(self.detect_precision)
    }

    /// Effective MACs per cycle at the linear-stage precision.
    pub fn linear_macs_per_cycle(&self) -> f64 {
        self.reconfigured_macs_per_cycle(self.linear_precision)
    }

    /// MACs per cycle with the whole array reconfigured to `precision`.
    fn reconfigured_macs_per_cycle(&self, precision: Precision) -> f64 {
        let per_lane = self.rmmu.cols() as f64
            * self.rmmu.rows() as f64
            * precision.throughput_multiplier() as f64;
        self.lanes as f64 * per_lane * self.scale * self.utilization
    }
}

/// Cycle counts of the four pipeline stages of one encoder pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageLatency {
    /// Linear transformation (QKV + output projections).
    pub linear: u64,
    /// Attention detection (low-precision estimate + threshold + schedule).
    pub detection: u64,
    /// Sparse attention computation (scores, softmax, aggregation).
    pub attention: u64,
    /// Feed-forward network.
    pub ffn: u64,
}

impl StageLatency {
    /// Total cycles.
    pub fn total(&self) -> u64 {
        self.linear + self.detection + self.attention + self.ffn
    }

    /// Cycles of the attention block (detection + attention), the quantity
    /// Figure 12a compares.
    pub fn attention_block(&self) -> u64 {
        self.detection + self.attention
    }

    /// Element-wise sum.
    pub fn add(&self, other: &StageLatency) -> StageLatency {
        StageLatency {
            linear: self.linear + other.linear,
            detection: self.detection + other.detection,
            attention: self.attention + other.attention,
            ffn: self.ffn + other.ffn,
        }
    }
}

/// Energy breakdown in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// RMMU MAC energy.
    pub rmmu_pj: f64,
    /// Multi-Function Unit (softmax, GELU, (de)quantize).
    pub mfu_pj: f64,
    /// Scheduler / Filter.
    pub scheduler_pj: f64,
    /// Cross-lane Accumulator.
    pub accumulator_pj: f64,
    /// On-chip SRAM traffic.
    pub sram_pj: f64,
    /// Off-chip DRAM traffic.
    pub dram_pj: f64,
    /// SRAM leakage over the run.
    pub leakage_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.rmmu_pj
            + self.mfu_pj
            + self.scheduler_pj
            + self.accumulator_pj
            + self.sram_pj
            + self.dram_pj
            + self.leakage_pj
    }

    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.total_pj() * 1e-12
    }

    /// Element-wise sum.
    pub fn add(&self, o: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            rmmu_pj: self.rmmu_pj + o.rmmu_pj,
            mfu_pj: self.mfu_pj + o.mfu_pj,
            scheduler_pj: self.scheduler_pj + o.scheduler_pj,
            accumulator_pj: self.accumulator_pj + o.accumulator_pj,
            sram_pj: self.sram_pj + o.sram_pj,
            dram_pj: self.dram_pj + o.dram_pj,
            leakage_pj: self.leakage_pj + o.leakage_pj,
        }
    }
}

/// Result of simulating a model pass on the accelerator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfReport {
    /// Stage cycle counts.
    pub cycles: StageLatency,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// K/V vector loads performed by the token-parallel scheduler.
    pub key_loads: u64,
    /// K/V vector loads a row-by-row dataflow would have performed.
    pub key_loads_row_by_row: u64,
    /// Attention retention this run executed at.
    pub retention: f64,
    /// Energy of the attention block alone (detection estimate, scheduler,
    /// sparse attention MACs, softmax, K/V traffic), in pJ — the quantity
    /// Figure 13's ELSA comparison needs.
    pub attention_energy_pj: f64,
}

impl PerfReport {
    /// Wall-clock seconds at the modeled frequency.
    pub fn seconds(&self) -> f64 {
        self.cycles.total() as f64 / (energy::FREQ_GHZ * 1e9)
    }

    /// Seconds spent in the attention block only.
    pub fn attention_seconds(&self) -> f64 {
        self.cycles.attention_block() as f64 / (energy::FREQ_GHZ * 1e9)
    }

    /// Accumulates another report (e.g. per-layer into per-model).
    pub fn add(&self, o: &PerfReport) -> PerfReport {
        PerfReport {
            cycles: self.cycles.add(&o.cycles),
            energy: self.energy.add(&o.energy),
            key_loads: self.key_loads + o.key_loads,
            key_loads_row_by_row: self.key_loads_row_by_row + o.key_loads_row_by_row,
            retention: o.retention, // last writer wins; uniform in practice
            attention_energy_pj: self.attention_energy_pj + o.attention_energy_pj,
        }
    }
}

/// Emits one Chrome-trace event per pipeline stage of layer `l` on the
/// simulated `encoder` track, starting at `cursor` cycles; returns the new
/// cursor (the coarse model is additive, so stages lay end to end).
fn emit_stage_events(l: u64, cursor: u64, cycles: &StageLatency) -> u64 {
    let mut t = cursor;
    for (stage, dur) in [
        ("linear", cycles.linear),
        ("detection", cycles.detection),
        ("attention", cycles.attention),
        ("ffn", cycles.ffn),
    ] {
        dota_trace::sim_event("encoder", &format!("L{l}.{stage}"), t, dur);
        t += dur;
    }
    t
}

/// The DOTA accelerator simulator.
#[derive(Debug, Clone)]
pub struct Accelerator {
    config: AccelConfig,
}

impl Accelerator {
    /// Creates a simulator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if lanes, token parallelism or scale are non-positive.
    pub fn new(config: AccelConfig) -> Self {
        assert!(config.lanes > 0, "need at least one lane");
        assert!(
            config.token_parallelism > 0,
            "token parallelism must be positive"
        );
        assert!(config.scale > 0.0, "scale must be positive");
        assert!(
            config.utilization > 0.0 && config.utilization <= 1.0,
            "utilization must be in (0, 1]"
        );
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// Simulates one full model pass analytically for a model shape at
    /// sequence length `n`, keeping `retention` of attention connections,
    /// detecting with dimension-reduction factor `sigma` (`retention = 1.0`
    /// and `sigma = 0` model DOTA-F: full attention, no detection).
    ///
    /// Key/value memory behaviour comes from one representative head's
    /// synthetic selection (profile-controlled locality), scaled to all
    /// heads and layers.
    ///
    /// # Panics
    ///
    /// Panics if `retention` is outside `(0, 1]`.
    pub fn simulate_shape(
        &self,
        model: &TransformerConfig,
        n: usize,
        retention: f64,
        sigma: f64,
        profile: &SelectionProfile,
    ) -> PerfReport {
        match self.simulate_shape_impl(model, n, retention, sigma, profile, false) {
            Ok(report) => report,
            // With injection off the impl has no error source.
            Err(_) => unreachable!("fault-free simulation cannot fail"),
        }
    }

    /// Fault-aware variant of [`simulate_shape`](Accelerator::simulate_shape):
    /// inside a [`dota_faults`] session, injected SRAM bit-flips and DRAM
    /// transient-read errors are absorbed (ECC replay / bounded retry,
    /// counted under `faults.*`) and stuck lanes are routed around at
    /// reduced throughput; unabsorbable faults (retry exhaustion, every
    /// lane down) surface as a typed [`SimFault`]. Identical to
    /// `simulate_shape` when no fault session is active.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimFault`] the modeled machine cannot recover
    /// from.
    ///
    /// # Panics
    ///
    /// Panics if `retention` is outside `(0, 1]`.
    pub fn try_simulate_shape(
        &self,
        model: &TransformerConfig,
        n: usize,
        retention: f64,
        sigma: f64,
        profile: &SelectionProfile,
    ) -> Result<PerfReport, SimFault> {
        self.simulate_shape_impl(model, n, retention, sigma, profile, true)
    }

    fn simulate_shape_impl(
        &self,
        model: &TransformerConfig,
        n: usize,
        retention: f64,
        sigma: f64,
        profile: &SelectionProfile,
        faults: bool,
    ) -> Result<PerfReport, SimFault> {
        let _prof = dota_prof::span("accel.simulate_shape");
        assert!(
            retention > 0.0 && retention <= 1.0,
            "retention {retention} out of range"
        );
        let heads = model.n_heads as u64;
        let layers = model.n_layers as u64;
        let k_per_row = ((retention * n as f64).round() as usize).clamp(1, n);

        // One representative head's K/V schedule.
        let mut rng = SeededRng::new(0xacce1);
        let (key_loads_head, rbr_head) = if retention < 1.0 {
            let sel = sample_selection(n, k_per_row, profile, &mut rng);
            let s = sched::schedule_matrix(
                &sel,
                self.config.token_parallelism,
                self.config.out_of_order,
            );
            (s.total_loads(), sched::row_by_row_loads(&sel))
        } else {
            // Dense attention streams each K/V once per token-parallel group.
            let groups = (n as u64).div_ceil(self.config.token_parallelism as u64);
            ((n as u64) * groups, (n as u64) * (n as u64))
        };
        let key_loads = key_loads_head * heads * layers;
        let key_loads_rbr = rbr_head * heads * layers;

        // One layer_report call per layer (identical arithmetic to computing
        // one representative layer and adding it `layers` times, since the
        // model is pure) so memory/MAC counters accumulate whole-model
        // totals and the trace shows every layer's stages.
        let exec = self.degraded(faults)?;
        let mut report = PerfReport::default();
        let mut cursor = 0u64;
        for l in 0..layers {
            let layer = exec.layer_report(
                model,
                n,
                k_per_row,
                retention,
                sigma,
                key_loads_head,
                rbr_head,
                l,
                faults,
            )?;
            if dota_trace::enabled() {
                cursor = emit_stage_events(l, cursor, &layer.cycles);
            }
            report = report.add(&layer);
        }
        report.key_loads = key_loads;
        report.key_loads_row_by_row = key_loads_rbr;
        report.retention = retention;
        Ok(report)
    }

    /// Routes around stuck lanes: inside a fault session, each configured
    /// lane is tested against site `lane.stuck`; dropped lanes are counted
    /// (`faults.lane.dropped`) and the returned executor runs on the
    /// survivors at proportionally reduced throughput. All lanes down is a
    /// typed error. Returns an unmodified clone when `faults` is false or
    /// no session is active.
    fn degraded(&self, faults: bool) -> Result<Accelerator, SimFault> {
        if !faults || !dota_faults::enabled() {
            return Ok(self.clone());
        }
        let mut up = 0usize;
        for lane in 0..self.config.lanes {
            if dota_faults::should_inject(FaultSite::LaneStuck, &[lane as u64]) {
                dota_faults::record("faults.lane.dropped", 1);
                dota_trace::count("faults.lane.dropped", 1);
            } else {
                up += 1;
            }
        }
        if up == 0 {
            return Err(SimFault::AllLanesDown {
                lanes: self.config.lanes,
            });
        }
        let mut config = self.config.clone();
        config.lanes = up;
        Ok(Accelerator { config })
    }

    /// Simulates a replayed [`ForwardTrace`] from a real model inference:
    /// the exact per-head selections drive the scheduler and the sparse
    /// attention cost.
    pub fn simulate_trace(&self, model: &TransformerConfig, trace: &ForwardTrace) -> PerfReport {
        match self.simulate_trace_impl(model, trace, false) {
            Ok(report) => report,
            // With injection off the impl has no error source.
            Err(_) => unreachable!("fault-free simulation cannot fail"),
        }
    }

    /// Fault-aware variant of [`simulate_trace`](Accelerator::simulate_trace)
    /// with the same absorb-or-typed-error semantics as
    /// [`try_simulate_shape`](Accelerator::try_simulate_shape).
    ///
    /// # Errors
    ///
    /// Returns the first [`SimFault`] the modeled machine cannot recover
    /// from.
    pub fn try_simulate_trace(
        &self,
        model: &TransformerConfig,
        trace: &ForwardTrace,
    ) -> Result<PerfReport, SimFault> {
        self.simulate_trace_impl(model, trace, true)
    }

    fn simulate_trace_impl(
        &self,
        model: &TransformerConfig,
        trace: &ForwardTrace,
        faults: bool,
    ) -> Result<PerfReport, SimFault> {
        let _prof = dota_prof::span("accel.simulate_trace");
        let exec = self.degraded(faults)?;
        let mut total = PerfReport::default();
        let n = trace.layers[0].heads[0].q.rows();
        let sigma = 0.0; // detection cost is folded per-head below
        let mut cursor = 0u64;
        for (l, layer) in trace.layers.iter().enumerate() {
            let mut kept_sum = 0u64;
            let mut key_loads = 0u64;
            let mut rbr = 0u64;
            for head in &layer.heads {
                let kept = head.kept_connections();
                kept_sum += kept;
                if let Some(sel) = &head.selected {
                    let s = sched::schedule_matrix(
                        sel,
                        self.config.token_parallelism,
                        self.config.out_of_order,
                    );
                    key_loads += s.total_loads();
                    rbr += sched::row_by_row_loads(sel);
                } else {
                    let groups = (n as u64).div_ceil(self.config.token_parallelism as u64);
                    key_loads += n as u64 * groups;
                    rbr += (n * n) as u64;
                }
            }
            let heads = layer.heads.len() as u64;
            let retention = kept_sum as f64 / (heads * (n * n) as u64) as f64;
            let k_per_row = (kept_sum as f64 / (heads as f64 * n as f64)).round() as usize;
            let mut rep = exec.layer_report(
                model,
                n,
                k_per_row.max(1),
                retention,
                sigma,
                key_loads / heads.max(1),
                rbr / heads.max(1),
                l as u64,
                faults,
            )?;
            rep.key_loads = key_loads;
            rep.key_loads_row_by_row = rbr;
            rep.retention = retention;
            if dota_trace::enabled() {
                cursor = emit_stage_events(l as u64, cursor, &rep.cycles);
            }
            total = total.add(&rep);
        }
        Ok(total)
    }

    /// Cycle/energy model of a single encoder layer. `l` is the layer's
    /// index (stable fault coordinate); with `faults` set, memory accesses
    /// go through the fault-aware paths and may surface a [`SimFault`].
    #[allow(clippy::too_many_arguments)]
    fn layer_report(
        &self,
        model: &TransformerConfig,
        n: usize,
        k_per_row: usize,
        retention: f64,
        sigma: f64,
        key_loads_head: u64,
        rbr_head: u64,
        l: u64,
        faults: bool,
    ) -> Result<PerfReport, SimFault> {
        let cfg = &self.config;
        let d = model.d_model as u64;
        let d_ff = model.d_ff as u64;
        let hd = model.head_dim() as u64;
        let heads = model.n_heads as u64;
        let nn = n as u64;
        let kept = heads * nn * k_per_row as u64;
        let fx_rate = cfg.fx16_macs_per_cycle();
        let detect_rate = cfg.detect_macs_per_cycle();
        let bytes = 2u64; // FX16 operands

        let mut dram = DramModel::new(cfg.dram_gbps);
        let mut sram = SramModel::lane_default();

        // --- Linear transformation stage: X(Wq|Wk|Wv) + Wo. ---
        let linear_rate = cfg.linear_macs_per_cycle();
        let linear_macs = nn * d * d * 4;
        let linear_compute = (linear_macs as f64 / linear_rate).ceil() as u64;
        let linear_dram = if faults {
            dram.read_checked(4 * d * d * bytes, "linear.weights", 0, l)?
                + dram.read_checked(nn * d * bytes, "linear.activations", 1, l)?
        } else {
            dram.read(4 * d * d * bytes) + dram.read(nn * d * bytes)
        };
        let linear = linear_compute.max(linear_dram);

        // --- Detection stage (skipped when sigma == 0). ---
        let (detection, detect_macs, sched_ids) = if sigma > 0.0 {
            let k_rank = ((hd as f64 * sigma).floor() as u64).max(1);
            let est_macs = heads * (nn * d * k_rank + 2 * nn * k_rank * k_rank + nn * k_rank * nn);
            let est_cycles = (est_macs as f64 / detect_rate).ceil() as u64;
            // Threshold compare + scheduling: the Scheduler issues 4 IDs
            // per cycle per lane, ahead of the consuming RMMU. Issue is
            // pipelined with the attention computation, so only the part
            // that outruns the RMMU's consumption shows up as latency.
            let ids = kept;
            let issue_cycles = ids.div_ceil(4 * cfg.lanes as u64 * cfg.scale.ceil() as u64);
            let consume_cycles = ((2 * kept * hd) as f64 / fx_rate).ceil() as u64;
            let sched_exposed = issue_cycles.saturating_sub(consume_cycles);
            (est_cycles + sched_exposed, est_macs, ids)
        } else {
            (0, 0, 0)
        };

        // --- Sparse attention stage: scores + softmax + aggregation. ---
        let attn_macs = 2 * kept * hd;
        let attn_compute = (attn_macs as f64 / fx_rate).ceil() as u64;
        // MFU: one exp + one divide per kept weight, 16+16 units per lane.
        let mfu_ops = 2 * kept;
        let mfu_cycles = mfu_ops.div_ceil(32 * cfg.lanes as u64 * cfg.scale.ceil() as u64);
        // K/V SRAM traffic follows the schedule (K and V vectors, FX16).
        // Heads are distributed across lanes, each with its own SRAM, and
        // the scaled build widens every lane's banks proportionally.
        let kv_bytes = key_loads_head * heads * 2 * hd * bytes;
        let kv_per_lane = (kv_bytes as f64 / (cfg.lanes as f64 * cfg.scale)).ceil() as u64;
        let kv_cycles = if faults {
            sram.access_checked(kv_per_lane, 0, l)
        } else {
            sram.access(kv_per_lane)
        };
        // Pipelined: RMMU, MFU and SRAM streams overlap.
        let attention = attn_compute.max(mfu_cycles).max(kv_cycles);

        // --- FFN stage. ---
        let ffn_macs = 2 * nn * d * d_ff;
        let ffn_compute = (ffn_macs as f64 / linear_rate).ceil() as u64;
        let ffn_dram = if faults {
            dram.read_checked(2 * d * d_ff * bytes, "ffn.weights", 2, l)?
        } else {
            dram.read(2 * d * d_ff * bytes)
        };
        let gelu_cycles = (nn * d_ff).div_ceil(32 * cfg.lanes as u64 * cfg.scale.ceil() as u64);
        let ffn = ffn_compute.max(ffn_dram) + gelu_cycles;

        let cycles = StageLatency {
            linear,
            detection,
            attention,
            ffn,
        };

        // --- Energy. ---
        let fx_macs = linear_macs + attn_macs + ffn_macs;
        // Activation streams through SRAM: inputs and outputs of each GEMM.
        let act_bytes = (nn * d * 8 + nn * d_ff * 2) * bytes;
        if faults {
            sram.access_checked(act_bytes, 1, l);
        } else {
            sram.access(act_bytes);
        }
        let accum_ops = nn * d * 4 + kept + nn * d_ff + nn * d;
        let mfu_total = mfu_ops + nn * d_ff; // softmax + GELU
        let seconds = cycles.total() as f64 / (energy::FREQ_GHZ * 1e9);
        let attention_energy_pj = attn_macs as f64 * energy::mac_pj(Precision::Fx16)
            + detect_macs as f64 * energy::mac_pj(cfg.detect_precision)
            + sched_ids as f64 * energy::SCHED_ID_PJ
            + mfu_ops as f64 * energy::MFU_OP_PJ
            + kv_bytes as f64 * energy::SRAM_PJ_PER_BYTE;
        let linear_stage_macs = linear_macs + ffn_macs;
        let attn_stage_macs = fx_macs - linear_stage_macs;
        let energy = EnergyBreakdown {
            rmmu_pj: attn_stage_macs as f64 * energy::mac_pj(Precision::Fx16)
                + linear_stage_macs as f64 * energy::mac_pj(cfg.linear_precision)
                + detect_macs as f64 * energy::mac_pj(cfg.detect_precision),
            mfu_pj: mfu_total as f64 * energy::MFU_OP_PJ,
            scheduler_pj: sched_ids as f64 * energy::SCHED_ID_PJ,
            accumulator_pj: accum_ops as f64 * energy::ACCUM_PJ,
            sram_pj: sram.energy_pj(),
            dram_pj: dram.energy_pj(),
            leakage_pj: energy::SRAM_LEAKAGE_MW * 1e-3 * seconds * 1e12,
        };

        if dota_trace::enabled() {
            dota_trace::count("accel.layers", 1);
            dota_trace::count("accel.kept_connections", kept);
            dota_trace::count("accel.cycles.linear", linear);
            dota_trace::count("accel.cycles.detection", detection);
            dota_trace::count("accel.cycles.attention", attention);
            dota_trace::count("accel.cycles.ffn", ffn);
            dota_trace::count(&format!("rmmu.macs.{}", Precision::Fx16), attn_stage_macs);
            dota_trace::count(
                &format!("rmmu.macs.{}", cfg.linear_precision),
                linear_stage_macs,
            );
            if detect_macs > 0 {
                dota_trace::count(
                    &format!("rmmu.detect_macs.{}", cfg.detect_precision),
                    detect_macs,
                );
            }
            dota_trace::count("mfu.ops", mfu_total);
            dota_trace::count("sched.ids_issued", sched_ids);
            dota_trace::count("accel.key_loads", key_loads_head * heads);
            dota_trace::count("accel.key_loads_row_by_row", rbr_head * heads);
        }

        Ok(PerfReport {
            cycles,
            energy,
            key_loads: key_loads_head * heads,
            key_loads_row_by_row: rbr_head * heads,
            retention,
            attention_energy_pj,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lra() -> TransformerConfig {
        TransformerConfig::lra(2048, 2)
    }

    #[test]
    fn sparse_attention_much_faster_than_dense() {
        let acc = Accelerator::new(AccelConfig::default());
        let profile = SelectionProfile::default();
        let dense = acc.simulate_shape(&lra(), 512, 1.0, 0.0, &profile);
        let sparse = acc.simulate_shape(&lra(), 512, 0.1, 0.2, &profile);
        let speedup =
            dense.cycles.attention_block() as f64 / sparse.cycles.attention_block() as f64;
        assert!(speedup > 4.0, "attention speedup {speedup}");
        // End-to-end also improves, but less (Amdahl).
        let e2e = dense.cycles.total() as f64 / sparse.cycles.total() as f64;
        assert!(
            e2e > 1.0 && e2e < speedup,
            "e2e {e2e} vs attention {speedup}"
        );
    }

    #[test]
    fn detection_overhead_is_small_fraction() {
        let acc = Accelerator::new(AccelConfig::default());
        let rep = acc.simulate_shape(&lra(), 2048, 0.1, 0.2, &SelectionProfile::default());
        let frac = rep.cycles.detection as f64 / rep.cycles.total() as f64;
        assert!(frac < 0.2, "detection fraction {frac}");
        assert!(rep.cycles.detection > 0);
    }

    #[test]
    fn energy_dominated_by_fc_after_detection() {
        // §5.4: with effective attention reduction, the FC layers dominate
        // energy while detection is well under 1%.
        let acc = Accelerator::new(AccelConfig::default());
        let rep = acc.simulate_shape(&lra(), 2048, 0.05, 0.2, &SelectionProfile::default());
        let sched_frac = rep.energy.scheduler_pj / rep.energy.total_pj();
        assert!(sched_frac < 0.05, "scheduler energy fraction {sched_frac}");
    }

    #[test]
    fn out_of_order_reduces_key_loads() {
        let in_order = Accelerator::new(AccelConfig {
            out_of_order: false,
            ..Default::default()
        });
        let ooo = Accelerator::new(AccelConfig::default());
        let prof = SelectionProfile::default();
        let a = in_order.simulate_shape(&lra(), 512, 0.1, 0.2, &prof);
        let b = ooo.simulate_shape(&lra(), 512, 0.1, 0.2, &prof);
        assert!(
            b.key_loads <= a.key_loads,
            "{} vs {}",
            b.key_loads,
            a.key_loads
        );
        assert!(b.key_loads < b.key_loads_row_by_row);
    }

    #[test]
    fn retention_scales_attention_cycles() {
        let acc = Accelerator::new(AccelConfig::default());
        let prof = SelectionProfile::default();
        let r20 = acc.simulate_shape(&lra(), 1024, 0.2, 0.2, &prof);
        let r05 = acc.simulate_shape(&lra(), 1024, 0.05, 0.2, &prof);
        let ratio = r20.cycles.attention as f64 / r05.cycles.attention as f64;
        assert!(ratio > 2.0 && ratio < 6.0, "ratio {ratio}");
    }

    #[test]
    fn gpu_comparable_build_is_faster() {
        let base = Accelerator::new(AccelConfig::default());
        let big = Accelerator::new(AccelConfig::gpu_comparable());
        let prof = SelectionProfile::default();
        let a = base.simulate_shape(&lra(), 1024, 0.1, 0.2, &prof);
        let b = big.simulate_shape(&lra(), 1024, 0.1, 0.2, &prof);
        assert!(b.cycles.total() < a.cycles.total());
    }

    #[test]
    fn trace_replay_matches_shape_roughly() {
        use dota_autograd::ParamSet;
        use dota_transformer::Model;
        let mut params = ParamSet::new();
        let tiny = TransformerConfig::tiny(32, 8, 2);
        let model = Model::init(tiny.clone(), &mut params, 1);
        let ids: Vec<usize> = (0..32).map(|i| i % 8).collect();
        let trace = model.infer(&params, &ids, &dota_transformer::NoHook);
        let acc = Accelerator::new(AccelConfig::default());
        let rep = acc.simulate_trace(&tiny, &trace);
        assert!(rep.cycles.total() > 0);
        assert_eq!(rep.retention, 1.0);
        assert!(rep.energy.total_pj() > 0.0);
    }

    #[test]
    fn report_add_accumulates() {
        let a = PerfReport {
            cycles: StageLatency {
                linear: 1,
                detection: 2,
                attention: 3,
                ffn: 4,
            },
            key_loads: 10,
            ..Default::default()
        };
        let sum = a.add(&a);
        assert_eq!(sum.cycles.total(), 20);
        assert_eq!(sum.key_loads, 20);
    }

    #[test]
    #[should_panic(expected = "retention")]
    fn rejects_zero_retention() {
        let acc = Accelerator::new(AccelConfig::default());
        let _ = acc.simulate_shape(&lra(), 128, 0.0, 0.2, &SelectionProfile::default());
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use dota_faults::{FaultPlan, FaultSite};

    fn lra() -> TransformerConfig {
        TransformerConfig::lra(2048, 2)
    }

    #[test]
    fn try_simulate_matches_infallible_without_session() {
        let acc = Accelerator::new(AccelConfig::default());
        let prof = SelectionProfile::default();
        let a = acc.simulate_shape(&lra(), 256, 0.1, 0.2, &prof);
        let b = acc
            .try_simulate_shape(&lra(), 256, 0.1, 0.2, &prof)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sram_bitflips_absorbed_with_extra_cycles() {
        let acc = Accelerator::new(AccelConfig::default());
        let prof = SelectionProfile::default();
        let clean = acc.simulate_shape(&lra(), 256, 0.1, 0.2, &prof);
        let guard = dota_faults::session(FaultPlan::new(3).with_rate(FaultSite::SramBitFlip, 1.0));
        let faulty = acc
            .try_simulate_shape(&lra(), 256, 0.1, 0.2, &prof)
            .expect("bit flips are always absorbed");
        assert!(guard.counter("faults.sram.bitflips") > 0);
        assert!(
            faulty.cycles.total() >= clean.cycles.total(),
            "ECC replay cannot make the run faster"
        );
        // Legacy entry point stays fault-free even inside the session.
        let legacy = acc.simulate_shape(&lra(), 256, 0.1, 0.2, &prof);
        assert_eq!(legacy, clean);
    }

    #[test]
    fn dram_read_faults_retry_then_fail() {
        let acc = Accelerator::new(AccelConfig::default());
        let prof = SelectionProfile::default();
        // Rate 1.0: every retry also faults, so the read must fail.
        let guard = dota_faults::session(FaultPlan::new(4).with_rate(FaultSite::DramRead, 1.0));
        let err = acc
            .try_simulate_shape(&lra(), 256, 0.1, 0.2, &prof)
            .unwrap_err();
        assert!(matches!(err, SimFault::DramReadFailed { .. }), "{err}");
        assert!(guard.counter("faults.dram.retries") > 0);
        assert!(guard.counter("faults.dram.failed_reads") > 0);
        drop(guard);
        // A low rate is absorbed by the bounded retry.
        let guard = dota_faults::session(FaultPlan::new(4).with_rate(FaultSite::DramRead, 0.05));
        let clean = acc.simulate_shape(&lra(), 256, 0.1, 0.2, &prof);
        let faulty = acc
            .try_simulate_shape(&lra(), 256, 0.1, 0.2, &prof)
            .expect("rate 0.05 faults absorbed by retry");
        assert!(guard.counter("faults.dram.retries") > 0);
        assert!(faulty.cycles.total() >= clean.cycles.total());
    }

    #[test]
    fn all_lanes_stuck_is_typed_error() {
        let acc = Accelerator::new(AccelConfig::default());
        let prof = SelectionProfile::default();
        let _guard = dota_faults::session(FaultPlan::new(5).with_rate(FaultSite::LaneStuck, 1.0));
        let err = acc
            .try_simulate_shape(&lra(), 256, 0.1, 0.2, &prof)
            .unwrap_err();
        assert_eq!(err, SimFault::AllLanesDown { lanes: 4 });
    }

    #[test]
    fn partial_lane_drop_degrades_throughput() {
        let acc = Accelerator::new(AccelConfig::default());
        let prof = SelectionProfile::default();
        let clean = acc.simulate_shape(&lra(), 512, 0.1, 0.2, &prof);
        // Find a seed where some but not all lanes survive (deterministic
        // per seed, so scan a few).
        for seed in 0..64u64 {
            let guard =
                dota_faults::session(FaultPlan::new(seed).with_rate(FaultSite::LaneStuck, 0.5));
            let result = acc.try_simulate_shape(&lra(), 512, 0.1, 0.2, &prof);
            let dropped = guard.counter("faults.lane.dropped");
            drop(guard);
            if let Ok(report) = result {
                if dropped > 0 {
                    assert!(
                        report.cycles.total() > clean.cycles.total(),
                        "losing {dropped} lanes must slow the run"
                    );
                    return;
                }
            }
        }
        panic!("no seed in 0..64 dropped a strict subset of lanes");
    }
}

impl Accelerator {
    /// Pipelined variant of [`simulate_shape`](Accelerator::simulate_shape):
    /// the same per-stage work is scheduled through the event-driven
    /// [`lane`](crate::lane) tile model, so layer `l+1`'s weight stream
    /// overlaps layer `l`'s compute and the Detector's low-precision rows
    /// run concurrently with FX16 work. Returns the overlapped report plus
    /// the pipeline's resource view.
    ///
    /// # Panics
    ///
    /// Panics if `retention` is outside `(0, 1]`.
    pub fn simulate_shape_pipelined(
        &self,
        model: &TransformerConfig,
        n: usize,
        retention: f64,
        sigma: f64,
        profile: &SelectionProfile,
    ) -> (PerfReport, crate::lane::PipelineReport) {
        let sequential = self.simulate_shape(model, n, retention, sigma, profile);
        let layers = model.n_layers as u64;
        // Per-layer stage cycles from the sequential report.
        let per = |x: u64| x / layers.max(1);
        let d = model.d_model as u64;
        let d_ff = model.d_ff as u64;
        let weight_bytes = (4 * d * d + 2 * d * d_ff) * 2;
        let weight_cycles = (weight_bytes as f64 / self.config.dram_gbps).ceil() as u64;
        // Attention-stage MFU work rides with the attention tile; K/V
        // streaming gets its own SRAM tile sized from the key loads.
        let kv_bytes = sequential.key_loads / layers.max(1) * 2 * model.head_dim() as u64 * 2;
        let kv_cycles = (kv_bytes as f64
            / (64.0 * 10.0 * self.config.lanes as f64 * self.config.scale))
            .ceil() as u64;
        let tiles = crate::lane::encoder_tiles(
            model.n_layers,
            weight_cycles,
            per(sequential.cycles.linear),
            per(sequential.cycles.detection),
            per(sequential.cycles.attention),
            per(sequential.cycles.attention) / 4, // MFU softmax rides behind
            kv_cycles,
            per(sequential.cycles.ffn),
        );
        let pipeline = crate::lane::schedule(&tiles);
        let mut report = sequential.clone();
        // The pipelined makespan replaces the additive total; keep the
        // stage split for breakdowns (scaled proportionally).
        let ratio = pipeline.makespan as f64 / sequential.cycles.total().max(1) as f64;
        let scale_stage = |x: u64| (x as f64 * ratio).round() as u64;
        report.cycles = StageLatency {
            linear: scale_stage(sequential.cycles.linear),
            detection: scale_stage(sequential.cycles.detection),
            attention: scale_stage(sequential.cycles.attention),
            ffn: scale_stage(sequential.cycles.ffn),
        };
        (report, pipeline)
    }
}

#[cfg(test)]
mod pipeline_tests {
    use super::*;
    use crate::lane::Resource;

    #[test]
    fn pipelined_never_slower_than_sequential() {
        let acc = Accelerator::new(AccelConfig::default());
        let model = TransformerConfig::lra(2048, 2);
        let prof = SelectionProfile::default();
        let seq = acc.simulate_shape(&model, 1024, 0.1, 0.2, &prof);
        let (piped, pipeline) = acc.simulate_shape_pipelined(&model, 1024, 0.1, 0.2, &prof);
        // The coarse model already overlaps within stages (max of compute
        // and memory), while the tile DAG exposes real dependencies it
        // ignores, so the two agree within a few percent — and the
        // pipelined makespan must beat the fully serial tile schedule.
        assert!(
            (piped.cycles.total() as f64) <= seq.cycles.total() as f64 * 1.05,
            "pipelined {} way above sequential {}",
            piped.cycles.total(),
            seq.cycles.total()
        );
        assert!(piped.cycles.total() < pipeline.serial_cycles());
        assert!(pipeline.utilization(Resource::RmmuFx) > 0.3);
    }

    #[test]
    fn pipelined_breakdown_preserves_proportions() {
        let acc = Accelerator::new(AccelConfig::default());
        let model = TransformerConfig::lra(2048, 2);
        let prof = SelectionProfile::default();
        let seq = acc.simulate_shape(&model, 512, 0.1, 0.2, &prof);
        let (piped, _) = acc.simulate_shape_pipelined(&model, 512, 0.1, 0.2, &prof);
        let seq_frac = seq.cycles.linear as f64 / seq.cycles.total() as f64;
        let piped_frac = piped.cycles.linear as f64 / piped.cycles.total().max(1) as f64;
        assert!((seq_frac - piped_frac).abs() < 0.02);
    }
}
