use crate::energy;
use crate::fault::{SimFault, DRAM_MAX_RETRIES};
use dota_faults::FaultSite;

/// Off-chip DRAM model: bandwidth-limited transfers with per-byte energy.
///
/// The simulator uses a bandwidth/latency roofline rather than a
/// transaction-level model: DOTA's stages stream large contiguous tensors,
/// so sustained bandwidth dominates (paper §4.4 notes embedding and decoder
/// layers are left memory-bound by design).
#[derive(Debug, Clone)]
pub struct DramModel {
    bandwidth_gbps: f64,
    bytes_read: u64,
    bytes_written: u64,
}

impl DramModel {
    /// Creates a DRAM model with the given sustained bandwidth (GB/s).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_gbps` is not positive.
    pub fn new(bandwidth_gbps: f64) -> Self {
        assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
        Self {
            bandwidth_gbps,
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    /// Sustained bandwidth in bytes per cycle at the modeled frequency.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bandwidth_gbps / energy::FREQ_GHZ
    }

    /// Records a read and returns the cycles it occupies on the interface.
    pub fn read(&mut self, bytes: u64) -> u64 {
        self.bytes_read += bytes;
        dota_trace::count("dram.bytes_read", bytes);
        (bytes as f64 / self.bytes_per_cycle()).ceil() as u64
    }

    /// Fault-aware variant of [`read`](DramModel::read): transient read
    /// errors injected at site `dram.read` are retried (each retry
    /// re-occupies the interface for the full transfer) up to
    /// [`DRAM_MAX_RETRIES`] times; exhausting the retries surfaces a typed
    /// [`SimFault::DramReadFailed`]. `stage`/`layer` identify the read for
    /// the fault coordinates and the error message. Identical to `read`
    /// when no fault session is active.
    ///
    /// # Errors
    ///
    /// Returns [`SimFault::DramReadFailed`] when every retry also faults.
    pub fn read_checked(
        &mut self,
        bytes: u64,
        stage: &'static str,
        stage_id: u64,
        layer: u64,
    ) -> Result<u64, SimFault> {
        let mut cycles = self.read(bytes);
        if !dota_faults::enabled() {
            return Ok(cycles);
        }
        let mut attempt = 0u64;
        while dota_faults::should_inject(FaultSite::DramRead, &[layer, stage_id, attempt]) {
            attempt += 1;
            if attempt > DRAM_MAX_RETRIES {
                dota_faults::record("faults.dram.failed_reads", 1);
                dota_trace::count("faults.dram.failed_reads", 1);
                return Err(SimFault::DramReadFailed {
                    stage,
                    layer,
                    bytes,
                });
            }
            dota_faults::record("faults.dram.retries", 1);
            dota_trace::count("faults.dram.retries", 1);
            cycles += (bytes as f64 / self.bytes_per_cycle()).ceil() as u64;
        }
        Ok(cycles)
    }

    /// Records a write and returns the cycles it occupies.
    pub fn write(&mut self, bytes: u64) -> u64 {
        self.bytes_written += bytes;
        dota_trace::count("dram.bytes_written", bytes);
        (bytes as f64 / self.bytes_per_cycle()).ceil() as u64
    }

    /// Total bytes moved so far.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Energy consumed by all traffic so far, in pJ.
    pub fn energy_pj(&self) -> f64 {
        self.total_bytes() as f64 * energy::DRAM_PJ_PER_BYTE
    }

    /// Resets the counters.
    pub fn reset(&mut self) {
        self.bytes_read = 0;
        self.bytes_written = 0;
    }
}

/// Banked on-chip SRAM model (per Lane: 10 × 64 KB banks, Table 2 / §4.4).
///
/// Tracks access counts and detects capacity overflows; a batch of accesses
/// to the same bank in one cycle serializes (bank conflict), which the
/// access-cycles helper accounts for.
#[derive(Debug, Clone)]
pub struct SramModel {
    banks: usize,
    bank_bytes: u64,
    bytes_accessed: u64,
    allocated: u64,
}

impl SramModel {
    /// Creates an SRAM with `banks` banks of `bank_kb` KiB each.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0` or `bank_kb == 0`.
    pub fn new(banks: usize, bank_kb: u64) -> Self {
        assert!(banks > 0 && bank_kb > 0, "SRAM must be non-empty");
        Self {
            banks,
            bank_bytes: bank_kb * 1024,
            bytes_accessed: 0,
            allocated: 0,
        }
    }

    /// The per-Lane configuration from Table 2: 10 × 64 KB = 640 KB.
    pub fn lane_default() -> Self {
        Self::new(10, 64)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.banks as u64 * self.bank_bytes
    }

    /// Reserves `bytes` of capacity for a tensor.
    ///
    /// # Errors
    ///
    /// Returns the shortfall in bytes if the allocation does not fit.
    pub fn allocate(&mut self, bytes: u64) -> Result<(), u64> {
        if self.allocated + bytes > self.capacity() {
            return Err(self.allocated + bytes - self.capacity());
        }
        self.allocated += bytes;
        Ok(())
    }

    /// Releases `bytes` of capacity.
    pub fn free(&mut self, bytes: u64) {
        self.allocated = self.allocated.saturating_sub(bytes);
    }

    /// Currently allocated bytes.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Records an access of `bytes` and returns the cycles it takes,
    /// assuming each bank serves a 64-byte line per cycle and accesses
    /// stripe across banks (`ceil(bytes / (64 * banks))`).
    pub fn access(&mut self, bytes: u64) -> u64 {
        self.bytes_accessed += bytes;
        dota_trace::count("sram.bytes_accessed", bytes);
        let per_cycle = 64 * self.banks as u64;
        bytes.div_ceil(per_cycle)
    }

    /// Fault-aware variant of [`access`](SramModel::access): a bit flip
    /// injected at site `sram.bitflip` is caught by the banked array's ECC
    /// and the access is replayed from the clean line, so the fault is
    /// always absorbed — it costs a second full access and increments the
    /// `faults.sram.bitflips` counter. `stream`/`layer` are the stable
    /// fault coordinates. Identical to `access` when no fault session is
    /// active.
    pub fn access_checked(&mut self, bytes: u64, stream_id: u64, layer: u64) -> u64 {
        let cycles = self.access(bytes);
        if dota_faults::enabled()
            && dota_faults::should_inject(FaultSite::SramBitFlip, &[layer, stream_id])
        {
            dota_faults::record("faults.sram.bitflips", 1);
            dota_trace::count("faults.sram.bitflips", 1);
            // ECC replay: the line is re-read; charge the access again.
            return cycles + self.access(bytes);
        }
        cycles
    }

    /// Cycles for `accesses` simultaneous accesses that all hit the same
    /// bank (worst-case conflict: full serialization).
    pub fn conflict_cycles(&self, accesses: u64) -> u64 {
        accesses
    }

    /// Total bytes accessed so far.
    pub fn bytes_accessed(&self) -> u64 {
        self.bytes_accessed
    }

    /// Energy of all accesses so far, in pJ.
    pub fn energy_pj(&self) -> f64 {
        self.bytes_accessed as f64 * energy::SRAM_PJ_PER_BYTE
    }

    /// Resets access counters (capacity allocations are kept).
    pub fn reset_counters(&mut self) {
        self.bytes_accessed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_cycles_scale_with_bytes() {
        let mut d = DramModel::new(64.0); // 64 GB/s at 1 GHz = 64 B/cycle
        assert_eq!(d.read(64), 1);
        assert_eq!(d.read(65), 2);
        assert_eq!(d.write(128), 2);
        assert_eq!(d.total_bytes(), 64 + 65 + 128);
        assert!(d.energy_pj() > 0.0);
        d.reset();
        assert_eq!(d.total_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn dram_rejects_zero_bandwidth() {
        let _ = DramModel::new(0.0);
    }

    #[test]
    fn lane_sram_is_640kb() {
        let s = SramModel::lane_default();
        assert_eq!(s.capacity(), 640 * 1024);
    }

    #[test]
    fn allocation_tracks_capacity() {
        let mut s = SramModel::new(2, 1); // 2 KB
        assert!(s.allocate(1024).is_ok());
        assert!(s.allocate(1024).is_ok());
        let err = s.allocate(1).unwrap_err();
        assert_eq!(err, 1);
        s.free(1024);
        assert!(s.allocate(512).is_ok());
        assert_eq!(s.allocated(), 1024 + 512);
    }

    #[test]
    fn access_cycles_stripe_across_banks() {
        let mut s = SramModel::new(4, 64); // 4 banks * 64 B/cycle = 256 B/cycle
        assert_eq!(s.access(256), 1);
        assert_eq!(s.access(257), 2);
        assert_eq!(s.bytes_accessed(), 513);
        assert_eq!(s.conflict_cycles(7), 7);
    }

    #[test]
    fn energy_proportional_to_traffic() {
        let mut s = SramModel::lane_default();
        s.access(1000);
        let e1 = s.energy_pj();
        s.access(1000);
        assert!((s.energy_pj() - 2.0 * e1).abs() < 1e-9);
        s.reset_counters();
        assert_eq!(s.energy_pj(), 0.0);
    }
}
