//! Autoregressive decoder processing (paper §4.4).
//!
//! Decoding generates one token at a time, so every stage degenerates from
//! GEMM to GEMV: arithmetic intensity collapses and performance becomes
//! *memory-bound* — the weights and the growing K/V cache must stream from
//! DRAM for a single query row. The paper's point is that detection still
//! pays off in this regime: filtering the attention graph removes most of
//! the K/V-cache traffic, which is the part of decode bandwidth that grows
//! with context length.

use crate::energy;
use crate::{AccelConfig, EnergyBreakdown};
use dota_transformer::TransformerConfig;

/// Result of simulating one autoregressive generation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecodeReport {
    /// Total cycles for all generated tokens.
    pub cycles: u64,
    /// Cycles spent streaming weights (invariant per token).
    pub weight_stream_cycles: u64,
    /// Cycles spent streaming the K/V cache (grows with context).
    pub kv_stream_cycles: u64,
    /// Total energy breakdown.
    pub energy: EnergyBreakdown,
    /// Retention the attention stage executed at.
    pub retention: f64,
}

impl DecodeReport {
    /// Wall-clock seconds at the modeled frequency.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / (energy::FREQ_GHZ * 1e9)
    }

    /// Mean latency per generated token, in microseconds.
    pub fn us_per_token(&self, tokens: usize) -> f64 {
        self.seconds() * 1e6 / tokens.max(1) as f64
    }
}

/// Simulates generating `gen_tokens` tokens after a `prompt_len`-token
/// prompt, keeping `retention` of K/V-cache attention connections per step.
///
/// Per token, the work is:
///
/// * weight streaming: all layer weights (QKV + output + FFN) read once —
///   decode is too small to amortize them on chip;
/// * GEMV compute: `8·d² + 2·d·d_ff`-ish MACs, always bandwidth-shadowed;
/// * K/V cache traffic: with detection, only `retention · context` cached
///   key/value vectors are fetched per head (plus the low-rank estimate's
///   own footprint); dense attention fetches all of them.
///
/// # Panics
///
/// Panics if `retention` is outside `(0, 1]` or `gen_tokens == 0`.
pub fn simulate_decode(
    cfg: &AccelConfig,
    model: &TransformerConfig,
    prompt_len: usize,
    gen_tokens: usize,
    retention: f64,
    sigma: f64,
) -> DecodeReport {
    let _prof = dota_prof::span("accel.simulate_decode");
    assert!(
        retention > 0.0 && retention <= 1.0,
        "retention {retention} out of range"
    );
    assert!(gen_tokens > 0, "must generate at least one token");
    let d = model.d_model as u64;
    let d_ff = model.d_ff as u64;
    let hd = model.head_dim() as u64;
    let heads = model.n_heads as u64;
    let layers = model.n_layers as u64;
    let bytes = 2u64;

    // Per-token weight traffic (all layers).
    let weight_bytes = layers * (4 * d * d + 2 * d * d_ff) * bytes;
    let bw = cfg.dram_gbps; // bytes per cycle at 1 GHz

    let mut weight_stream_cycles = 0u64;
    let mut kv_stream_cycles = 0u64;
    let mut macs: u64 = 0;
    let mut detect_macs: u64 = 0;
    let mut kv_bytes_total: u64 = 0;

    for t in 0..gen_tokens {
        let context = (prompt_len + t) as u64;
        weight_stream_cycles += (weight_bytes as f64 / bw).ceil() as u64;
        // K/V fetch per layer: each head touches `retention * context`
        // cached K and V vectors of hd FX16 values.
        let kept = ((retention * context as f64).ceil() as u64).max(1);
        let kv_bytes = layers * heads * kept * 2 * hd * bytes;
        kv_bytes_total += kv_bytes;
        kv_stream_cycles += (kv_bytes as f64 / bw).ceil() as u64;
        // Compute (always shadowed by memory in this regime, but counted
        // for energy).
        macs += layers * (4 * d * d + 2 * d * d_ff) + layers * heads * 2 * kept * hd;
        if sigma > 0.0 {
            let k_rank = ((hd as f64 * sigma).floor() as u64).max(1);
            detect_macs += layers * heads * (d * k_rank + 2 * k_rank * k_rank + context * k_rank);
        }
    }

    let cycles = weight_stream_cycles + kv_stream_cycles;
    let seconds = cycles as f64 / 1e9;
    let energy = EnergyBreakdown {
        rmmu_pj: macs as f64 * energy::mac_pj(dota_quant::Precision::Fx16)
            + detect_macs as f64 * energy::mac_pj(cfg.detect_precision),
        mfu_pj: 0.0,
        scheduler_pj: 0.0,
        accumulator_pj: 0.0,
        sram_pj: 0.0,
        dram_pj: (weight_bytes * gen_tokens as u64 + kv_bytes_total) as f64
            * energy::DRAM_PJ_PER_BYTE,
        leakage_pj: energy::SRAM_LEAKAGE_MW * 1e-3 * seconds * 1e12,
    };

    if dota_trace::enabled() {
        dota_trace::count("decode.tokens", gen_tokens as u64);
        dota_trace::count("decode.cycles", cycles);
        dota_trace::count("decode.weight_stream_cycles", weight_stream_cycles);
        dota_trace::count("decode.kv_stream_cycles", kv_stream_cycles);
        dota_trace::count("decode.weight_bytes", weight_bytes * gen_tokens as u64);
        dota_trace::count("decode.kv_bytes", kv_bytes_total);
        dota_trace::count("decode.macs_fx16", macs);
        dota_trace::count("decode.macs_detect", detect_macs);
    }

    DecodeReport {
        cycles,
        weight_stream_cycles,
        kv_stream_cycles,
        energy,
        retention,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpt2_small() -> TransformerConfig {
        TransformerConfig::gpt2(4096)
    }

    #[test]
    fn decode_is_memory_bound_and_detection_helps() {
        let cfg = AccelConfig::default();
        let model = gpt2_small();
        let dense = simulate_decode(&cfg, &model, 2048, 64, 1.0, 0.0);
        let sparse = simulate_decode(&cfg, &model, 2048, 64, 0.1, 0.2);
        // Detection removes most K/V traffic...
        assert!(
            sparse.kv_stream_cycles < dense.kv_stream_cycles / 5,
            "kv cycles {} vs {}",
            sparse.kv_stream_cycles,
            dense.kv_stream_cycles
        );
        // ...but weight streaming is unchanged (Amdahl in the memory domain).
        assert_eq!(sparse.weight_stream_cycles, dense.weight_stream_cycles);
        assert!(sparse.cycles < dense.cycles);
    }

    #[test]
    fn kv_traffic_grows_with_context() {
        let cfg = AccelConfig::default();
        let model = gpt2_small();
        let short = simulate_decode(&cfg, &model, 256, 32, 1.0, 0.0);
        let long = simulate_decode(&cfg, &model, 3500, 32, 1.0, 0.0);
        assert!(long.kv_stream_cycles > 5 * short.kv_stream_cycles);
        assert_eq!(long.weight_stream_cycles, short.weight_stream_cycles);
    }

    #[test]
    fn per_token_latency_reasonable() {
        // GPT-2-class decode on a 128 GB/s interface: weights ~170 MB per
        // token → ~1.3 ms/token; sparse attention barely adds to that.
        let cfg = AccelConfig::default();
        let rep = simulate_decode(&cfg, &gpt2_small(), 1024, 16, 0.1, 0.2);
        let us = rep.us_per_token(16);
        assert!(us > 100.0 && us < 10_000.0, "{us} us/token");
    }

    #[test]
    fn energy_accounts_dram_dominance() {
        let cfg = AccelConfig::default();
        let rep = simulate_decode(&cfg, &gpt2_small(), 2048, 8, 1.0, 0.0);
        assert!(
            rep.energy.dram_pj > rep.energy.rmmu_pj,
            "decode should be memory-energy dominated"
        );
    }

    #[test]
    #[should_panic(expected = "retention")]
    fn rejects_bad_retention() {
        let _ = simulate_decode(&AccelConfig::default(), &gpt2_small(), 10, 1, 0.0, 0.0);
    }

    /// `kv_stream_cycles` follows its closed form exactly: per generated
    /// token, each layer/head fetches `max(1, ceil(retention * context))`
    /// K and V vectors of `head_dim` FX16 values, rounded up to whole
    /// DRAM-bandwidth cycles per step. The serving layer's cost model
    /// builds on this accounting, so it is pinned, not approximated.
    #[test]
    fn kv_stream_cycles_match_closed_form() {
        let cfg = AccelConfig::default();
        let model = TransformerConfig::tiny_causal(64, 16);
        let (layers, heads, hd) = (
            model.n_layers as u64,
            model.n_heads as u64,
            model.head_dim() as u64,
        );
        let (prompt, gen) = (11usize, 7usize);
        for retention in [1.0, 0.5, 0.25, 0.125] {
            let rep = simulate_decode(&cfg, &model, prompt, gen, retention, 0.0);
            let mut expect_kv = 0u64;
            for t in 0..gen {
                let context = (prompt + t) as u64;
                let kept = ((retention * context as f64).ceil() as u64).max(1);
                let kv_bytes = layers * heads * kept * 2 * hd * 2;
                expect_kv += (kv_bytes as f64 / cfg.dram_gbps).ceil() as u64;
            }
            assert_eq!(
                rep.kv_stream_cycles, expect_kv,
                "retention {retention}: kv accounting drifted from closed form"
            );
        }
    }

    /// Weight streaming is exactly one full weight read per generated
    /// token, and total cycles decompose as weights + K/V with nothing
    /// hidden in between.
    #[test]
    fn cycles_decompose_into_weight_plus_kv() {
        let cfg = AccelConfig::default();
        for (model, prompt, gen) in [
            (TransformerConfig::tiny_causal(64, 16), 9usize, 5usize),
            (gpt2_small(), 1024, 16),
        ] {
            let d = model.d_model as u64;
            let weight_bytes = model.n_layers as u64 * (4 * d * d + 2 * d * model.d_ff as u64) * 2;
            let per_token = (weight_bytes as f64 / cfg.dram_gbps).ceil() as u64;
            for retention in [1.0, 0.25] {
                let rep = simulate_decode(&cfg, &model, prompt, gen, retention, 0.0);
                assert_eq!(rep.weight_stream_cycles, per_token * gen as u64);
                assert_eq!(rep.cycles, rep.weight_stream_cycles + rep.kv_stream_cycles);
            }
        }
    }

    /// K/V traffic scales (almost) linearly with retention: the ceil per
    /// step adds at most one kept vector, so at long context the ratio
    /// brackets the retention tightly and is monotone down the ladder.
    #[test]
    fn kv_cycles_scale_linearly_with_retention() {
        let cfg = AccelConfig::default();
        let model = gpt2_small();
        let dense = simulate_decode(&cfg, &model, 2048, 16, 1.0, 0.0);
        let mut prev = dense.kv_stream_cycles;
        for retention in [0.5, 0.25, 0.125] {
            let rep = simulate_decode(&cfg, &model, 2048, 16, retention, 0.0);
            let ratio = rep.kv_stream_cycles as f64 / dense.kv_stream_cycles as f64;
            assert!(
                (ratio - retention).abs() < 0.01,
                "retention {retention}: kv ratio {ratio}"
            );
            assert!(rep.kv_stream_cycles < prev, "ladder must be monotone");
            prev = rep.kv_stream_cycles;
        }
    }
}
