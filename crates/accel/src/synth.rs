//! Synthetic sparse-attention selection generator with controllable
//! locality.
//!
//! Paper-scale simulations (4K-token sequences, 24-layer models) cannot be
//! driven by real trained-model traces here, so the memory-access model is
//! fed selections sampled with the two locality properties the paper
//! observes in real attention graphs (§4.3): *important tokens* that many
//! queries attend to (column reuse) and *windowed neighbors* (a query
//! attends near its own position).

use dota_tensor::rng::SeededRng;

/// Parameters of the synthetic selection distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionProfile {
    /// Fraction of each row's budget spent on globally-important tokens
    /// (shared across queries — the source of K/V reuse).
    pub global_fraction: f64,
    /// Fraction spent on a local window around the query position.
    pub local_fraction: f64,
    /// Number of globally-important tokens in the sequence.
    pub n_important: usize,
    /// Half-width of the local window.
    pub window: usize,
}

impl Default for SelectionProfile {
    fn default() -> Self {
        Self {
            global_fraction: 0.4,
            local_fraction: 0.4,
            n_important: 32,
            window: 8,
        }
    }
}

impl SelectionProfile {
    /// A profile with no locality at all (uniform random selections) — the
    /// pessimistic bound for scheduler reuse.
    pub fn uniform() -> Self {
        Self {
            global_fraction: 0.0,
            local_fraction: 0.0,
            n_important: 0,
            window: 0,
        }
    }
}

/// Samples a balanced selection: `n` rows, exactly `k` keys per row, drawn
/// from the profile's mixture of global tokens, local window and uniform
/// background.
///
/// # Panics
///
/// Panics if `k > n` or `n == 0`.
pub fn sample_selection(
    n: usize,
    k: usize,
    profile: &SelectionProfile,
    rng: &mut SeededRng,
) -> Vec<Vec<u32>> {
    assert!(n > 0, "empty sequence");
    assert!(k <= n, "cannot keep {k} of {n} keys");
    let n_imp = profile.n_important.min(n);
    let important: Vec<usize> = if n_imp > 0 {
        rng.sample_indices(n, n_imp)
    } else {
        Vec::new()
    };

    (0..n)
        .map(|q| {
            let mut chosen = std::collections::BTreeSet::new();
            let n_global = ((k as f64) * profile.global_fraction).round() as usize;
            let n_local = ((k as f64) * profile.local_fraction).round() as usize;

            // Global important tokens (same set for every query).
            for &t in important.iter().take(n_global.min(important.len())) {
                chosen.insert(t as u32);
            }
            // Local window around the query.
            if profile.window > 0 {
                let lo = q.saturating_sub(profile.window);
                let hi = (q + profile.window).min(n - 1);
                let mut cands: Vec<usize> = (lo..=hi).collect();
                rng.shuffle(&mut cands);
                for t in cands {
                    if chosen.len() >= n_global + n_local || chosen.len() >= k {
                        break;
                    }
                    chosen.insert(t as u32);
                }
            }
            // Uniform background until the budget is filled.
            while chosen.len() < k {
                chosen.insert(rng.below(n) as u32);
            }
            chosen.into_iter().collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched;

    #[test]
    fn balanced_rows_and_valid_indices() {
        let mut rng = SeededRng::new(1);
        let sel = sample_selection(128, 13, &SelectionProfile::default(), &mut rng);
        assert_eq!(sel.len(), 128);
        for row in &sel {
            assert_eq!(row.len(), 13);
            assert!(row.iter().all(|&j| (j as usize) < 128));
            let mut s = row.clone();
            s.dedup();
            assert_eq!(s.len(), 13, "duplicates in {row:?}");
        }
    }

    #[test]
    fn locality_profile_enables_more_reuse_than_uniform() {
        let mut rng = SeededRng::new(2);
        let n = 256;
        let k = 16;
        let local = sample_selection(n, k, &SelectionProfile::default(), &mut rng);
        let uniform = sample_selection(n, k, &SelectionProfile::uniform(), &mut rng);
        let loads_local = sched::schedule_matrix(&local, 4, true).total_loads();
        let loads_uniform = sched::schedule_matrix(&uniform, 4, true).total_loads();
        assert!(
            loads_local < loads_uniform,
            "locality {loads_local} should beat uniform {loads_uniform}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = sample_selection(64, 8, &SelectionProfile::default(), &mut SeededRng::new(7));
        let b = sample_selection(64, 8, &SelectionProfile::default(), &mut SeededRng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cannot keep")]
    fn rejects_oversized_k() {
        let mut rng = SeededRng::new(1);
        let _ = sample_selection(4, 5, &SelectionProfile::default(), &mut rng);
    }
}
