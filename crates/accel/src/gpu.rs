//! V100-class GPU baseline as a roofline model (paper §5.1, §5.3).
//!
//! The paper compares against an NVIDIA V100 (14 TFLOPS FP32 peak,
//! 900 GB/s HBM2, ~300 W) running dense batch-1 inference. A roofline with
//! size-dependent GEMM efficiency captures the two behaviours the
//! comparison rests on: (a) dense attention cannot exploit sparsity, and
//! (b) batch-1 attention GEMMs have tiny inner dimensions (the 64-wide head
//! dimension), so the GPU runs them at a few percent of peak while the
//! parameterized GEMMs fare much better.

use dota_transformer::TransformerConfig;

/// Roofline model of a data-center GPU.
#[derive(Debug, Clone)]
pub struct GpuModel {
    /// Peak FP32 throughput in TFLOPS.
    pub peak_tflops: f64,
    /// Memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Board power in watts.
    pub power_w: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        Self {
            peak_tflops: 14.0,
            mem_bw_gbps: 900.0,
            power_w: 300.0,
        }
    }
}

impl GpuModel {
    /// Achievable fraction of peak for an `m x k x n` GEMM at batch 1.
    ///
    /// Efficiency saturates at 45% for large square GEMMs and collapses
    /// when the smallest dimension is narrow (underfilled SMs, no data
    /// reuse) — the regime of `Q K^T` with `k = 64`.
    pub fn gemm_efficiency(&self, m: usize, k: usize, n: usize) -> f64 {
        let min_dim = m.min(k).min(n) as f64;
        (0.45 * (min_dim / 512.0)).clamp(0.08, 0.45)
    }

    /// Seconds for an `m x k x n` GEMM (compute vs. memory roofline).
    pub fn gemm_seconds(&self, m: usize, k: usize, n: usize) -> f64 {
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        let eff = self.gemm_efficiency(m, k, n);
        let compute = flops / (self.peak_tflops * 1e12 * eff);
        // Operands + result once through HBM (batch-1: no cross-batch reuse).
        let bytes = 4.0 * (m * k + k * n + m * n) as f64;
        let memory = bytes / (self.mem_bw_gbps * 1e9);
        compute.max(memory)
    }

    /// Seconds for the dense attention block of one layer at sequence
    /// length `n`: per head `Q K^T`, softmax (memory-bound row scans of the
    /// n×n matrix), and `A V`.
    pub fn attention_seconds(&self, cfg: &TransformerConfig, n: usize) -> f64 {
        let hd = cfg.head_dim();
        let heads = cfg.n_heads as f64;
        let qkt = self.gemm_seconds(n, hd, n);
        let av = self.gemm_seconds(n, n, hd);
        // Softmax: 3 passes over the n*n matrix (max, exp-sum, divide).
        let softmax = 3.0 * 4.0 * (n * n) as f64 / (self.mem_bw_gbps * 1e9);
        heads * (qkt + av) + softmax * heads
    }

    /// Seconds for one full encoder layer (linear + attention + FFN).
    pub fn layer_seconds(&self, cfg: &TransformerConfig, n: usize) -> f64 {
        let d = cfg.d_model;
        let linear = self.gemm_seconds(n, d, 3 * d) + self.gemm_seconds(n, d, d);
        let ffn = self.gemm_seconds(n, d, cfg.d_ff) + self.gemm_seconds(n, cfg.d_ff, d);
        linear + self.attention_seconds(cfg, n) + ffn
    }

    /// Seconds for the whole model at sequence length `n`.
    pub fn model_seconds(&self, cfg: &TransformerConfig, n: usize) -> f64 {
        self.layer_seconds(cfg, n) * cfg.n_layers as f64
    }

    /// Energy in joules for a run of `seconds`.
    pub fn energy_j(&self, seconds: f64) -> f64 {
        self.power_w * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attention_efficiency_collapses_at_head_dim() {
        let gpu = GpuModel::default();
        // Q K^T at 4K sequence: inner dim 64 → near the efficiency floor.
        let eff_attn = gpu.gemm_efficiency(4096, 64, 4096);
        let eff_big = gpu.gemm_efficiency(4096, 1024, 4096);
        assert!(eff_attn < 0.1, "attention eff {eff_attn}");
        assert!(eff_big > 0.4, "large GEMM eff {eff_big}");
    }

    #[test]
    fn attention_share_grows_with_sequence() {
        let gpu = GpuModel::default();
        let cfg = TransformerConfig::lra(8192, 2);
        let frac = |n: usize| gpu.attention_seconds(&cfg, n) / gpu.layer_seconds(&cfg, n);
        assert!(frac(512) < frac(4096));
        assert!(frac(4096) > 0.5, "attention share at 4K: {}", frac(4096));
    }

    #[test]
    fn roofline_is_monotone_in_size() {
        let gpu = GpuModel::default();
        assert!(gpu.gemm_seconds(512, 512, 512) < gpu.gemm_seconds(1024, 1024, 1024));
        assert!(
            gpu.model_seconds(&TransformerConfig::lra(4096, 2), 2048)
                < gpu.model_seconds(&TransformerConfig::lra(4096, 2), 4096)
        );
    }

    #[test]
    fn energy_scales_with_time() {
        let gpu = GpuModel::default();
        assert!((gpu.energy_j(2.0) - 600.0).abs() < 1e-9);
    }

    #[test]
    fn bert_large_latency_plausible() {
        // BERT-large at 384 tokens on a V100 takes on the order of tens of
        // milliseconds at batch 1.
        let gpu = GpuModel::default();
        let s = gpu.model_seconds(&TransformerConfig::bert_large(384), 384);
        assert!(s > 1e-3 && s < 0.5, "BERT-large latency {s}s");
    }
}
