//! ELSA accelerator baseline model (paper §5.1, §6.2).
//!
//! ELSA (ISCA 2021) is an attention-block accelerator: it estimates
//! query–key angles with sign random projections, filters weak pairs, and
//! computes the survivors. Architecturally it differs from DOTA in the two
//! ways the paper's comparison isolates:
//!
//! * **Approximation cost** — hashing is cheap, but every query still
//!   evaluates its hash against every key (`n²` comparisons), and at the
//!   accuracy targets of Fig. 11 ELSA must keep ~20% of connections where
//!   DOTA keeps 3–10%;
//! * **Row-by-row dataflow** — no token parallelism: each query's selected
//!   K/V vectors are fetched independently, so there is no cross-query
//!   reuse (Fig. 8's 10-load case).
//!
//! The model gives ELSA the same FX16 MAC budget and frequency as one DOTA
//! configuration so the comparison isolates dataflow and retention.

use crate::energy;
use dota_transformer::TransformerConfig;

/// Timing/energy model of an ELSA-style attention accelerator.
#[derive(Debug, Clone)]
pub struct ElsaModel {
    /// FX16 MACs per cycle (set equal to the compared DOTA build).
    pub macs_per_cycle: f64,
    /// Hash comparisons per cycle (hamming-distance units are cheap).
    pub hashes_per_cycle: f64,
    /// Hash length in bits.
    pub hash_bits: usize,
    /// Retention ratio ELSA runs at (the paper follows ELSA's original
    /// setting of 20%).
    pub retention: f64,
    /// Sustained utilization of the exact-computation phase. Row-by-row
    /// processing fetches every selected K/V vector per query (Fig. 8),
    /// roughly doubling memory stalls relative to token-parallel issue, so
    /// ELSA sustains a lower fraction of its MAC peak than DOTA.
    pub utilization: f64,
}

impl Default for ElsaModel {
    fn default() -> Self {
        Self {
            macs_per_cycle: 4.0 * 512.0,
            hashes_per_cycle: 4.0 * 512.0,
            hash_bits: 64,
            retention: 0.2,
            utilization: 0.5,
        }
    }
}

impl ElsaModel {
    /// A build scaled by `scale` (to match DOTA's GPU-comparable build).
    pub fn scaled(scale: f64) -> Self {
        let base = Self::default();
        Self {
            macs_per_cycle: base.macs_per_cycle * scale,
            hashes_per_cycle: base.hashes_per_cycle * scale,
            ..base
        }
    }

    /// Cycles for one layer's attention block at sequence length `n`:
    /// hashing + candidate filtering over all `n²` pairs, then FX16
    /// computation of the kept connections.
    pub fn attention_cycles(&self, cfg: &TransformerConfig, n: usize) -> u64 {
        let hd = cfg.head_dim() as u64;
        let heads = cfg.n_heads as u64;
        let nn = n as u64;
        // Hashing: each token's q and k hashed once (hd MACs per bit is
        // avoided via the sign trick; cost ~ hash_bits adds per vector).
        let hash_ops = heads * 2 * nn * self.hash_bits as u64;
        // Candidate filter: n^2 hamming comparisons per head.
        let filter_ops = heads * nn * nn;
        let approx_cycles = ((hash_ops + filter_ops) as f64 / self.hashes_per_cycle).ceil() as u64;
        // Exact computation of survivors: score + aggregate, derated by the
        // row-by-row dataflow's fetch stalls.
        let kept = ((self.retention * (nn * nn) as f64).round() as u64) * heads;
        let exact_cycles =
            ((2 * kept * hd) as f64 / (self.macs_per_cycle * self.utilization)).ceil() as u64;
        approx_cycles + exact_cycles
    }

    /// Attention-block seconds for the full model.
    pub fn attention_seconds(&self, cfg: &TransformerConfig, n: usize) -> f64 {
        let per_layer = self.attention_cycles(cfg, n) as f64;
        per_layer * cfg.n_layers as f64 / (energy::FREQ_GHZ * 1e9)
    }

    /// Attention-block energy in joules for the full model: MACs, hash
    /// units, and row-by-row K/V traffic (every kept connection loads its
    /// K and V vectors — no sharing).
    pub fn attention_energy_j(&self, cfg: &TransformerConfig, n: usize) -> f64 {
        let hd = cfg.head_dim() as u64;
        let heads = cfg.n_heads as u64;
        let layers = cfg.n_layers as u64;
        let nn = n as u64;
        let kept = ((self.retention * (nn * nn) as f64).round() as u64) * heads * layers;
        let macs = 2 * kept * hd;
        let hash_ops = (heads * (2 * nn * self.hash_bits as u64 + nn * nn)) * layers;
        // Row-by-row: kept * (K + V) vector loads from SRAM.
        let kv_bytes = kept * 2 * hd * 2;
        let pj = macs as f64 * energy::mac_pj(dota_quant::Precision::Fx16)
            + hash_ops as f64 * 0.05 // 1-bit compare ≈ INT2-MAC/2 class op
            + kv_bytes as f64 * energy::SRAM_PJ_PER_BYTE
            + kept as f64 * energy::MFU_OP_PJ; // softmax over survivors
        pj * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SelectionProfile;
    use crate::{AccelConfig, Accelerator};

    fn lra() -> TransformerConfig {
        TransformerConfig::lra(2048, 2)
    }

    #[test]
    fn dota_attention_faster_than_elsa_at_lower_retention() {
        // The paper's headline: DOTA-C ≈ 4.5× faster than ELSA on the
        // attention block, from lower retention + token-parallel reuse.
        let elsa = ElsaModel::default();
        let dota = Accelerator::new(AccelConfig::default());
        let n = 2048;
        let elsa_s = elsa.attention_seconds(&lra(), n);
        let rep = dota.simulate_shape(&lra(), n, 0.05, 0.2, &SelectionProfile::default());
        let dota_s = rep.cycles.attention_block() as f64 * lra().n_layers as f64
            / 1e9
            / lra().n_layers as f64;
        let dota_total_s = rep.attention_seconds();
        let _ = dota_s;
        let speedup = elsa_s / dota_total_s;
        assert!(speedup > 1.5, "DOTA vs ELSA attention speedup {speedup}");
    }

    #[test]
    fn elsa_filter_cost_quadratic() {
        let elsa = ElsaModel::default();
        let c1 = elsa.attention_cycles(&lra(), 1024);
        let c2 = elsa.attention_cycles(&lra(), 2048);
        let ratio = c2 as f64 / c1 as f64;
        assert!(ratio > 3.0, "quadratic scaling ratio {ratio}");
    }

    #[test]
    fn elsa_energy_positive_and_scales() {
        let elsa = ElsaModel::default();
        let e1 = elsa.attention_energy_j(&lra(), 1024);
        let e2 = elsa.attention_energy_j(&lra(), 2048);
        assert!(e1 > 0.0 && e2 > 3.0 * e1);
    }

    #[test]
    fn scaled_build_faster() {
        let base = ElsaModel::default();
        let big = ElsaModel::scaled(6.0);
        assert!(big.attention_cycles(&lra(), 2048) < base.attention_cycles(&lra(), 2048));
    }
}
