//! K/V bank-placement and conflict analysis (paper §4.4).
//!
//! The Lane's SRAM is banked (10 × 64 KB in Table 2); a token-parallel
//! round loads several key vectors *in the same cycle window*, so two keys
//! resident in the same bank serialize. Placement policy therefore
//! interacts with the Scheduler: this module models vector→bank maps and
//! counts the conflict stalls a schedule incurs, quantifying why
//! interleaved placement is the right default.

use crate::sched::Schedule;

/// A policy assigning key/value vector IDs to SRAM banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Vector `i` lives in bank `i % banks` — adjacent vectors spread
    /// across banks (the design the paper's banked SRAM implies).
    Interleaved,
    /// Vectors are stored contiguously: bank `i / ceil(n/banks)` — adjacent
    /// vectors share a bank (the naive layout).
    Blocked,
}

impl Placement {
    /// Bank of vector `id` under this policy, for `n` vectors over `banks`
    /// banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0` or `n == 0`.
    pub fn bank(&self, id: u32, n: usize, banks: usize) -> usize {
        assert!(banks > 0 && n > 0, "empty banking configuration");
        match self {
            Placement::Interleaved => (id as usize) % banks,
            Placement::Blocked => {
                let per_bank = n.div_ceil(banks);
                ((id as usize) / per_bank).min(banks - 1)
            }
        }
    }
}

/// Conflict analysis of a schedule under a placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictReport {
    /// Rounds analyzed.
    pub rounds: usize,
    /// Total key loads.
    pub loads: u64,
    /// Cycles assuming every round's loads were conflict-free
    /// (`max(1, loads_in_round)` served one per bank per cycle — i.e. the
    /// maximum per-bank occupancy is 1).
    pub ideal_cycles: u64,
    /// Cycles with bank conflicts: each round costs the maximum number of
    /// loads landing in any single bank.
    pub actual_cycles: u64,
}

impl ConflictReport {
    /// Stall cycles attributable to conflicts.
    pub fn stall_cycles(&self) -> u64 {
        self.actual_cycles - self.ideal_cycles
    }

    /// Slowdown factor from conflicts (1.0 = conflict-free).
    pub fn slowdown(&self) -> f64 {
        self.actual_cycles as f64 / self.ideal_cycles.max(1) as f64
    }
}

/// Counts bank conflicts of `schedule` when `n` key vectors are placed over
/// `banks` banks by `placement`. Each round's loads are issued together; a
/// round takes as many access cycles as its most-loaded bank.
///
/// # Panics
///
/// Panics if `banks == 0` or `n == 0`.
pub fn analyze_conflicts(
    schedule: &Schedule,
    n: usize,
    banks: usize,
    placement: Placement,
) -> ConflictReport {
    assert!(banks > 0 && n > 0, "empty banking configuration");
    let mut ideal = 0u64;
    let mut actual = 0u64;
    let mut loads = 0u64;
    let mut per_bank = vec![0u64; banks];
    for round in &schedule.rounds {
        per_bank.fill(0);
        for &key in &round.loads {
            per_bank[placement.bank(key, n, banks)] += 1;
        }
        let max_bank = per_bank.iter().copied().max().unwrap_or(0);
        let round_loads = round.loads.len() as u64;
        loads += round_loads;
        // Conflict-free: loads stripe across banks, ceil(loads/banks).
        ideal += round_loads
            .div_ceil(banks as u64)
            .max(u64::from(round_loads > 0));
        actual += max_bank;
    }
    let report = ConflictReport {
        rounds: schedule.rounds.len(),
        loads,
        ideal_cycles: ideal,
        actual_cycles: actual,
    };
    if dota_trace::enabled() {
        dota_trace::count("sram.bank_conflict_stalls", report.stall_cycles());
        dota_trace::count("sram.bank_access_cycles", report.actual_cycles);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched;
    use crate::synth::{sample_selection, SelectionProfile};
    use dota_tensor::rng::SeededRng;

    #[test]
    fn placements_assign_in_range() {
        for placement in [Placement::Interleaved, Placement::Blocked] {
            for id in 0..64u32 {
                let b = placement.bank(id, 64, 10);
                assert!(b < 10, "{placement:?}: bank {b}");
            }
        }
    }

    #[test]
    fn interleaved_spreads_adjacent_vectors() {
        let p = Placement::Interleaved;
        assert_ne!(p.bank(0, 64, 10), p.bank(1, 64, 10));
        let b = Placement::Blocked;
        assert_eq!(b.bank(0, 64, 10), b.bank(1, 64, 10));
    }

    #[test]
    fn conflict_free_round_counts_one_cycle_per_bank_wave() {
        // Four loads in distinct banks: 1 cycle actual, ceil(4/10)=1 ideal.
        let schedule = Schedule {
            rounds: vec![crate::sched::Round {
                loads: vec![0, 1, 2, 3],
                assignments: vec![],
            }],
        };
        let rep = analyze_conflicts(&schedule, 64, 10, Placement::Interleaved);
        assert_eq!(rep.actual_cycles, 1);
        assert_eq!(rep.ideal_cycles, 1);
        assert_eq!(rep.stall_cycles(), 0);
    }

    #[test]
    fn same_bank_loads_serialize() {
        // Keys 0, 10, 20 all land in bank 0 under interleaving with 10
        // banks: 3 cycles.
        let schedule = Schedule {
            rounds: vec![crate::sched::Round {
                loads: vec![0, 10, 20],
                assignments: vec![],
            }],
        };
        let rep = analyze_conflicts(&schedule, 64, 10, Placement::Interleaved);
        assert_eq!(rep.actual_cycles, 3);
        assert_eq!(rep.stall_cycles(), 2);
        assert!(rep.slowdown() > 2.9);
    }

    #[test]
    fn interleaved_beats_blocked_on_local_selections() {
        // Windowed locality makes rounds load *adjacent* keys — adjacent
        // keys share a bank under blocked placement and spread under
        // interleaving.
        let mut rng = SeededRng::new(3);
        let profile = SelectionProfile {
            global_fraction: 0.0,
            local_fraction: 1.0,
            n_important: 0,
            window: 8,
        };
        let sel = sample_selection(256, 12, &profile, &mut rng);
        let schedule = sched::schedule_matrix(&sel, 4, true);
        let inter = analyze_conflicts(&schedule, 256, 10, Placement::Interleaved);
        let blocked = analyze_conflicts(&schedule, 256, 10, Placement::Blocked);
        assert!(
            inter.stall_cycles() < blocked.stall_cycles(),
            "interleaved {} vs blocked {} stalls",
            inter.stall_cycles(),
            blocked.stall_cycles()
        );
    }

    #[test]
    fn more_banks_fewer_stalls() {
        let mut rng = SeededRng::new(4);
        let sel = sample_selection(128, 16, &SelectionProfile::default(), &mut rng);
        let schedule = sched::schedule_matrix(&sel, 4, true);
        let few = analyze_conflicts(&schedule, 128, 2, Placement::Interleaved);
        let many = analyze_conflicts(&schedule, 128, 16, Placement::Interleaved);
        assert!(many.actual_cycles <= few.actual_cycles);
    }

    #[test]
    #[should_panic(expected = "empty banking")]
    fn rejects_zero_banks() {
        let schedule = Schedule::default();
        let _ = analyze_conflicts(&schedule, 16, 0, Placement::Interleaved);
    }
}
