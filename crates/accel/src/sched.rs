//! Token-parallel dataflow and the locality-aware Scheduler (paper §4.3).
//!
//! The attention output `O = softmax(Q K^T) V` is computed over the
//! *detected* sparse graph. Three dataflows are modeled, matching the
//! paper's worked examples:
//!
//! * **Row-by-row** (prior work): each query processes its keys alone;
//!   every selected connection costs one key-vector load (Fig. 8, 10
//!   loads);
//! * **Token-parallel, in-order**: `T` queries proceed in lockstep, each
//!   consuming its selected keys in index order; keys needed by several
//!   queries *in the same round* are loaded once (Fig. 8, 5 loads; Fig. 9,
//!   11 loads);
//! * **Token-parallel, out-of-order**: Algorithm 1 — IDs are binned into
//!   `2^T - 1` buffers by the bitmask of queries that need them, and each
//!   round greedily issues the most-shared ID first, topping up unassigned
//!   queries from their best remaining buffers (Fig. 9/10, 7 loads).

/// One scheduling round: the key IDs loaded and which queries consume them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Round {
    /// Distinct key IDs loaded from SRAM/DRAM this round.
    pub loads: Vec<u32>,
    /// `(query_index, key_id)` work assignments; at most one per query.
    pub assignments: Vec<(usize, u32)>,
}

/// A complete schedule for one token-parallel group.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    /// Rounds in issue order.
    pub rounds: Vec<Round>,
}

impl Schedule {
    /// Total key-vector loads across all rounds (the paper's "total mem
    /// access" metric; a key reloaded in a later round counts again).
    pub fn total_loads(&self) -> u64 {
        self.rounds.iter().map(|r| r.loads.len() as u64).sum()
    }

    /// Number of rounds (the group's makespan in key-steps).
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Total `(query, key)` assignments.
    pub fn total_assignments(&self) -> u64 {
        self.rounds.iter().map(|r| r.assignments.len() as u64).sum()
    }
}

/// Records a produced schedule's aggregate counters under the given
/// dataflow prefix (`sched.<prefix>.*`). No-op outside a trace session.
fn record_schedule(prefix: &str, s: &Schedule) {
    if !dota_trace::enabled() {
        return;
    }
    dota_trace::count(&format!("sched.{prefix}.loads"), s.total_loads());
    dota_trace::count(&format!("sched.{prefix}.rounds"), s.round_count() as u64);
    dota_trace::count(
        &format!("sched.{prefix}.assignments"),
        s.total_assignments(),
    );
    // A key loaded in more than one round was split across rounds and
    // re-fetched (Fig. 10's k5): reloads = total loads − distinct keys.
    let distinct: std::collections::BTreeSet<u32> = s
        .rounds
        .iter()
        .flat_map(|r| r.loads.iter().copied())
        .collect();
    dota_trace::count(
        &format!("sched.{prefix}.reloads"),
        s.total_loads() - distinct.len() as u64,
    );
}

/// Key loads of the row-by-row dataflow: every selected connection loads
/// its key vector (no cross-query sharing).
pub fn row_by_row_loads(selections: &[Vec<u32>]) -> u64 {
    let loads = selections.iter().map(|s| s.len() as u64).sum();
    dota_trace::count("sched.row_by_row.loads", loads);
    loads
}

/// In-order token-parallel schedule: queries advance through their
/// selections in the given order, synchronously; a round loads the distinct
/// keys its assignments touch.
///
/// Records `sched.in_order.*` counters when a trace session is active.
pub fn in_order_schedule(selections: &[Vec<u32>]) -> Schedule {
    let s = in_order_schedule_impl(selections);
    record_schedule("in_order", &s);
    s
}

/// Uninstrumented in-order schedule (shared by the public wrapper and the
/// out-of-order fallback path, which must not bump `sched.in_order.*`).
fn in_order_schedule_impl(selections: &[Vec<u32>]) -> Schedule {
    let mut rounds = Vec::new();
    let max_len = selections.iter().map(Vec::len).max().unwrap_or(0);
    for step in 0..max_len {
        let mut loads = Vec::new();
        let mut assignments = Vec::new();
        for (q, sel) in selections.iter().enumerate() {
            if let Some(&key) = sel.get(step) {
                if !loads.contains(&key) {
                    loads.push(key);
                }
                assignments.push((q, key));
            }
        }
        rounds.push(Round { loads, assignments });
    }
    Schedule { rounds }
}

/// Algorithm 1: locality-aware out-of-order schedule for one group of up to
/// `T = selections.len()` queries (the paper uses `T = 4`).
///
/// Key IDs are binned by the bitmask of queries that selected them. Each
/// round greedily issues the ID serving the most still-unassigned queries;
/// when an issued ID also belongs to already-assigned queries, it is moved
/// to the residual-owner buffer and will be reloaded later, exactly like
/// `k5` in the paper's Fig. 10 walk-through.
///
/// The greedy most-shared-first heuristic (like the paper's FSM) is not
/// inherently point-wise dominant over in-order issue, so this wrapper
/// compares against the in-order schedule and falls back to it on the rare
/// instance where greedy loses — making "out-of-order never issues more
/// loads than in-order" an invariant of the public API, not just an
/// aggregate tendency. Fallbacks are counted under `sched.ooo.fallbacks`.
///
/// Records `sched.ooo.*` counters when a trace session is active.
///
/// # Panics
///
/// Panics if more than 16 queries are grouped (buffer count `2^T - 1`
/// explodes past any practical Scheduler, Fig. 15).
pub fn locality_aware_schedule(selections: &[Vec<u32>]) -> Schedule {
    let greedy = locality_aware_schedule_impl(selections);
    let in_order = in_order_schedule_impl(selections);
    let s = if greedy.total_loads() > in_order.total_loads() {
        dota_trace::count("sched.ooo.fallbacks", 1);
        in_order
    } else {
        greedy
    };
    record_schedule("ooo", &s);
    s
}

/// Uninstrumented Algorithm 1 greedy (see [`locality_aware_schedule`]).
fn locality_aware_schedule_impl(selections: &[Vec<u32>]) -> Schedule {
    let t = selections.len();
    assert!(
        t <= 16,
        "token parallelism {t} exceeds the modeled scheduler"
    );
    if t == 0 {
        return Schedule::default();
    }
    // Bin IDs by owner bitmask. BTreeMap keeps iteration deterministic.
    use std::collections::BTreeMap;
    let mut owners: BTreeMap<u32, u32> = BTreeMap::new(); // key -> query mask
    for (q, sel) in selections.iter().enumerate() {
        for &key in sel {
            *owners.entry(key).or_insert(0) |= 1 << q;
        }
    }
    // buffers[mask] = FIFO of key IDs owned exactly by `mask`.
    let mut buffers: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for (key, mask) in owners {
        buffers.entry(mask).or_default().push(key);
    }

    let mut rounds = Vec::new();
    loop {
        if buffers.values().all(Vec::is_empty) {
            break;
        }
        let mut assigned: u32 = 0;
        let mut loads = Vec::new();
        let mut assignments = Vec::new();
        loop {
            let unassigned = !assigned & ((1u32 << t) - 1);
            if unassigned == 0 {
                break;
            }
            // Pick the buffer serving the most unassigned queries;
            // tie-break toward fewer already-assigned owners (don't split
            // shared keys needlessly), then lower mask for determinism.
            let mut best: Option<(u32, usize, u32)> = None; // (mask, served, overlap)
            for (&mask, ids) in &buffers {
                if ids.is_empty() {
                    continue;
                }
                let served = (mask & unassigned).count_ones() as usize;
                if served == 0 {
                    continue;
                }
                let overlap = (mask & assigned).count_ones();
                let better = match best {
                    None => true,
                    Some((_, bs, bo)) => served > bs || (served == bs && overlap < bo),
                };
                if better {
                    best = Some((mask, served, overlap));
                }
            }
            let Some((mask, _, _)) = best else {
                break; // remaining IDs belong only to already-assigned queries
            };
            let key = buffers.get_mut(&mask).expect("candidate exists").remove(0);
            let serve_mask = mask & unassigned;
            for q in 0..t {
                if serve_mask & (1 << q) != 0 {
                    assignments.push((q, key));
                }
            }
            loads.push(key);
            assigned |= serve_mask;
            // Residual owners get the ID back for a later round.
            let residual = mask & !serve_mask;
            if residual != 0 {
                buffers.entry(residual).or_default().push(key);
            }
        }
        debug_assert!(!loads.is_empty(), "round made no progress");
        rounds.push(Round { loads, assignments });
    }
    Schedule { rounds }
}

/// Schedules a whole attention matrix by splitting its query rows into
/// groups of `token_parallelism` and scheduling each group independently;
/// returns the concatenated schedule and the total key loads.
pub fn schedule_matrix(
    selections: &[Vec<u32>],
    token_parallelism: usize,
    out_of_order: bool,
) -> Schedule {
    assert!(token_parallelism > 0, "token parallelism must be positive");
    let mut all = Schedule::default();
    for group in selections.chunks(token_parallelism) {
        let s = if out_of_order {
            locality_aware_schedule(group)
        } else {
            in_order_schedule(group)
        };
        all.rounds.extend(s.rounds);
    }
    all
}

/// ID-buffer count required by a Scheduler with token parallelism `t`
/// (`2^t - 1`, Fig. 15's right axis).
pub fn buffer_requirement(t: usize) -> u64 {
    assert!(t < 64, "unreasonable token parallelism");
    (1u64 << t) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 8's 4×5 example: q1={k2,k3}, q2={k1,k2,k5}, q3={k2,k3},
    /// q4={k1,k3,k5} (0-indexed keys below).
    fn fig8() -> Vec<Vec<u32>> {
        vec![vec![1, 2], vec![0, 1, 4], vec![1, 2], vec![0, 2, 4]]
    }

    /// Fig. 9's balanced 4×6 example: q1={k1,k2,k3}, q2={k2,k3,k4},
    /// q3={k2,k5,k6}, q4={k3,k4,k5}.
    fn fig9() -> Vec<Vec<u32>> {
        vec![vec![0, 1, 2], vec![1, 2, 3], vec![1, 4, 5], vec![2, 3, 4]]
    }

    #[test]
    fn fig8_row_by_row_is_ten_loads() {
        assert_eq!(row_by_row_loads(&fig8()), 10);
    }

    #[test]
    fn fig8_token_parallel_is_five_loads() {
        let s = in_order_schedule(&fig8());
        assert_eq!(s.total_loads(), 5, "{s:?}");
    }

    #[test]
    fn fig9_in_order_is_eleven_loads() {
        assert_eq!(in_order_schedule(&fig9()).total_loads(), 11);
    }

    #[test]
    fn fig9_out_of_order_is_seven_loads() {
        let s = locality_aware_schedule(&fig9());
        assert_eq!(s.total_loads(), 7, "{s:?}");
        // Balanced workload: exactly 3 rounds, 4 assignments each.
        assert_eq!(s.round_count(), 3);
        for r in &s.rounds {
            assert_eq!(r.assignments.len(), 4);
        }
    }

    #[test]
    fn every_connection_scheduled_exactly_once() {
        for sched_fn in [
            in_order_schedule as fn(&[Vec<u32>]) -> Schedule,
            locality_aware_schedule,
        ] {
            let sel = fig9();
            let s = sched_fn(&sel);
            let mut seen = std::collections::HashSet::new();
            for r in &s.rounds {
                for &(q, k) in &r.assignments {
                    assert!(seen.insert((q, k)), "duplicate assignment ({q},{k})");
                }
            }
            let expected: usize = sel.iter().map(Vec::len).sum();
            assert_eq!(seen.len(), expected);
            for (q, keys) in sel.iter().enumerate() {
                for &k in keys {
                    assert!(seen.contains(&(q, k)));
                }
            }
        }
    }

    #[test]
    fn at_most_one_key_per_query_per_round() {
        let s = locality_aware_schedule(&fig9());
        for r in &s.rounds {
            let mut qs: Vec<usize> = r.assignments.iter().map(|&(q, _)| q).collect();
            qs.sort_unstable();
            let before = qs.len();
            qs.dedup();
            assert_eq!(qs.len(), before, "query double-assigned in a round");
        }
    }

    #[test]
    fn out_of_order_beats_in_order_in_aggregate() {
        // With the in-order fallback the scheduler never loses point-wise;
        // this test pins the stronger aggregate claim: across many balanced
        // instances it must win clearly, not merely tie.
        use dota_tensor::rng::SeededRng;
        let mut rng = SeededRng::new(42);
        let mut ino_total = 0u64;
        let mut ooo_total = 0u64;
        for trial in 0..50 {
            let n_keys = 24;
            let k = 2 + trial % 5;
            let sel: Vec<Vec<u32>> = (0..4)
                .map(|_| {
                    rng.sample_indices(n_keys, k)
                        .into_iter()
                        .map(|i| i as u32)
                        .collect()
                })
                .collect();
            ino_total += in_order_schedule(&sel).total_loads();
            let ooo = locality_aware_schedule(&sel).total_loads();
            ooo_total += ooo;
            assert!(
                ooo >= row_by_row_loads(&sel) / 4,
                "can't beat perfect sharing"
            );
        }
        assert!(
            ooo_total < ino_total,
            "aggregate ooo {ooo_total} should beat in-order {ino_total}"
        );
    }

    #[test]
    fn empty_and_singleton_groups() {
        assert_eq!(locality_aware_schedule(&[]).total_loads(), 0);
        let one = vec![vec![3u32, 1, 2]];
        let s = locality_aware_schedule(&one);
        assert_eq!(s.total_loads(), 3);
        assert_eq!(s.total_assignments(), 3);
    }

    #[test]
    fn unbalanced_rows_handled() {
        // One query has many keys, others few: rounds continue until all
        // work drains.
        let sel = vec![vec![0, 1, 2, 3, 4], vec![0], vec![1], vec![]];
        let s = locality_aware_schedule(&sel);
        assert_eq!(s.total_assignments(), 7);
        // q0 needs 5 rounds while q1/q2 finish in round one, so exactly one
        // of the shared keys must split and reload; total loads are 6
        // (5 distinct keys + 1 reload), and the most-shared key issued
        // first (k0, serving q0+q1) is never reloaded.
        assert_eq!(s.total_loads(), 6);
        let all_loads: Vec<u32> = s.rounds.iter().flat_map(|r| r.loads.clone()).collect();
        assert_eq!(all_loads.iter().filter(|&&k| k == 0).count(), 1);
    }

    #[test]
    fn schedule_matrix_groups_rows() {
        let sel: Vec<Vec<u32>> = (0..8).map(|i| vec![i as u32 % 4]).collect();
        let s = schedule_matrix(&sel, 4, true);
        assert_eq!(s.total_assignments(), 8);
        // Each group of 4 queries needs 4 distinct keys; loads ≥ 8? No —
        // within a group all 4 keys differ, so 4 loads per group.
        assert_eq!(s.total_loads(), 8);
    }

    #[test]
    fn buffer_requirement_exponential() {
        assert_eq!(buffer_requirement(1), 1);
        assert_eq!(buffer_requirement(4), 15);
        assert_eq!(buffer_requirement(6), 63);
    }

    #[test]
    fn more_parallelism_fewer_loads_on_shared_patterns() {
        // All queries share the same keys: parallelism T divides loads by T.
        let sel: Vec<Vec<u32>> = (0..8).map(|_| vec![0, 1, 2]).collect();
        let t1 = schedule_matrix(&sel, 1, true).total_loads();
        let t4 = schedule_matrix(&sel, 4, true).total_loads();
        let t8 = schedule_matrix(&sel, 8, true).total_loads();
        assert_eq!(t1, 24);
        assert_eq!(t4, 6);
        assert_eq!(t8, 3);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_selections() -> impl Strategy<Value = Vec<Vec<u32>>> {
            proptest::collection::vec(
                proptest::collection::btree_set(0u32..16, 0..6)
                    .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
                1..5,
            )
        }

        proptest! {
            #[test]
            fn ooo_schedules_everything_once(sel in arb_selections()) {
                let s = locality_aware_schedule(&sel);
                let total: usize = sel.iter().map(Vec::len).sum();
                prop_assert_eq!(s.total_assignments(), total as u64);
                let mut seen = std::collections::HashSet::new();
                for r in &s.rounds {
                    let mut round_qs = std::collections::HashSet::new();
                    for &(q, k) in &r.assignments {
                        prop_assert!(seen.insert((q, k)));
                        prop_assert!(round_qs.insert(q));
                        prop_assert!(sel[q].contains(&k));
                    }
                }
            }

            #[test]
            fn ooo_loads_bounded(sel in arb_selections()) {
                // The raw greedy is a heuristic (like the paper's FSM) and
                // not point-wise dominant over in-order, but the public
                // scheduler's in-order fallback makes dominance an API
                // invariant: ooo ≤ in-order ≤ row-by-row always.
                let ooo = locality_aware_schedule(&sel).total_loads();
                let rbr = row_by_row_loads(&sel);
                let ino = in_order_schedule(&sel).total_loads();
                prop_assert!(ooo <= ino);
                prop_assert!(ooo <= rbr);
                prop_assert!(ino <= rbr);
                // Can never need fewer loads than the max row length
                // (each round loads at least one key).
                let longest = sel.iter().map(Vec::len).max().unwrap_or(0) as u64;
                prop_assert!(ooo >= longest);
            }
        }
    }
}
