//! Typed faults surfaced by the fault-aware simulator entry points.
//!
//! Injected hardware faults (see [`dota_faults`]) are absorbed where the
//! modeled machine has a recovery mechanism — ECC re-reads for SRAM bit
//! flips, bounded retries for transient DRAM errors, routing around stuck
//! lanes — and surface as a [`SimFault`] when recovery is exhausted. The
//! fault-aware paths ([`Accelerator::try_simulate_shape`],
//! [`Accelerator::try_simulate_trace`]) never panic on injected faults.
//!
//! [`Accelerator::try_simulate_shape`]: crate::Accelerator::try_simulate_shape
//! [`Accelerator::try_simulate_trace`]: crate::Accelerator::try_simulate_trace

use std::fmt;

/// Maximum transient-read retries before a DRAM read is declared failed.
pub const DRAM_MAX_RETRIES: u64 = 3;

/// An injected hardware fault the simulator could not absorb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimFault {
    /// A DRAM read kept failing after [`DRAM_MAX_RETRIES`] retries.
    DramReadFailed {
        /// Pipeline stage issuing the read (e.g. `"linear.weights"`).
        stage: &'static str,
        /// Encoder layer the read belonged to.
        layer: u64,
        /// Transfer size in bytes.
        bytes: u64,
    },
    /// Every compute lane was injected as stuck; no work can issue.
    AllLanesDown {
        /// Configured lane count (all of them dropped).
        lanes: usize,
    },
}

impl fmt::Display for SimFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimFault::DramReadFailed {
                stage,
                layer,
                bytes,
            } => write!(
                f,
                "dram read of {bytes} bytes failed after {DRAM_MAX_RETRIES} retries \
                 (layer {layer}, stage {stage})"
            ),
            SimFault::AllLanesDown { lanes } => {
                write!(
                    f,
                    "all {lanes} compute lanes are stuck; cannot schedule work"
                )
            }
        }
    }
}

impl std::error::Error for SimFault {}
