//! Cycle-level simulator of the DOTA accelerator (paper §4) and its
//! hardware baselines.
//!
//! The modeled system is the paper's Table 2 configuration: four compute
//! Lanes, each with a 32×16 multi-precision RMMU, a Detector (threshold
//! comparator + locality-aware Scheduler), a Multi-Function Unit (exp /
//! divide / (de)quantize) and a 640 KB banked SRAM, plus a shared
//! Accumulator and off-chip DRAM.
//!
//! Three workload paths are supported:
//!
//! * **Replay** — [`Accelerator::simulate_trace`] consumes a
//!   [`ForwardTrace`](dota_transformer::ForwardTrace) from a real model
//!   inference (exact sparsity patterns from the trained detector);
//! * **Analytic** — [`Accelerator::simulate_shape`] times a paper-scale
//!   model shape at a given retention, using synthetic selections with
//!   controllable locality ([`synth`]) for the memory-access model;
//! * **Baselines** — [`gpu::GpuModel`] (V100-like roofline) and
//!   [`elsa::ElsaModel`] (approximate-attention accelerator with row-by-row
//!   dataflow) reproduce the comparison targets of Figures 12–13.
//!
//! The [`sched`] module implements Algorithm 1 (locality-aware out-of-order
//! scheduling) and the two reference dataflows of Figures 8–9, with unit
//! tests pinning the paper's worked examples (10 vs 5 and 11 vs 7 key
//! loads).

#![deny(missing_docs)]

mod accelerator;
pub mod banking;
pub mod decode;
pub mod elsa;
pub mod energy;
pub mod fault;
pub mod gpu;
pub mod lane;
mod memory;
pub mod render;
pub mod scaleout;
pub mod sched;
pub mod synth;

pub use accelerator::{AccelConfig, Accelerator, EnergyBreakdown, PerfReport, StageLatency};
pub use fault::SimFault;
pub use memory::{DramModel, SramModel};
