//! Energy, power and area model (paper Table 2: TSMC 22nm, 1 GHz).
//!
//! Per-operation energies are derived from the paper's published module
//! powers divided by their throughputs at 1 GHz; SRAM/DRAM access energies
//! use standard 22nm-era constants (CACTI-class numbers). Everything is in
//! picojoules so reports stay integer-friendly.

use dota_quant::Precision;

/// Clock frequency of the modeled design (GHz).
pub const FREQ_GHZ: f64 = 1.0;

/// FX16 MAC energy in pJ.
///
/// Table 2: one Lane's RMMU draws 645.98 mW; a 32×16 array at 1 GHz
/// sustains 512 MACs/cycle → `645.98e-3 W / 512e9 MAC/s ≈ 1.26 pJ/MAC`.
pub const MAC_FX16_PJ: f64 = 1.26;

/// Accumulator energy per accumulation in pJ (139.21 mW at 512 acc/cycle).
pub const ACCUM_PJ: f64 = 0.27;

/// MFU energy per special-function element (exp + divide + quantize path);
/// 60.73 mW across 16 exp + 16 div lanes at 1 GHz.
pub const MFU_OP_PJ: f64 = 1.9;

/// Scheduler (Detector "Filter") energy per scheduled connection ID;
/// 9.13 mW at 4 IDs/cycle.
pub const SCHED_ID_PJ: f64 = 2.3;

/// On-chip SRAM access energy per byte (22nm, 64 KB banks).
pub const SRAM_PJ_PER_BYTE: f64 = 1.4;

/// Off-chip DRAM access energy per byte (~7 pJ/bit, HBM-class interface —
/// consistent with §5.4's finding that FC-layer MACs, not DRAM, dominate
/// DOTA's energy).
pub const DRAM_PJ_PER_BYTE: f64 = 56.0;

/// SRAM leakage power in mW (Table 2: 0.51 mW for 2.5 MB).
pub const SRAM_LEAKAGE_MW: f64 = 0.51;

/// Energy of one MAC at the given precision, in pJ.
///
/// Narrow MACs reuse a quadratically smaller slice of the fused multiplier
/// (see [`Precision::mac_energy_rel`]).
pub fn mac_pj(precision: Precision) -> f64 {
    MAC_FX16_PJ * precision.mac_energy_rel()
}

/// One row of the Table 2 area/power inventory.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleSpec {
    /// Module name as printed in Table 2.
    pub name: &'static str,
    /// Configuration summary.
    pub configuration: &'static str,
    /// Power in mW.
    pub power_mw: f64,
    /// Area in mm².
    pub area_mm2: f64,
}

/// The Table 2 inventory of the DOTA accelerator (per-module power/area at
/// 22nm, 1 GHz). Values are the paper's synthesis results; this model's
/// per-op energies above are calibrated against them.
pub fn table2() -> Vec<ModuleSpec> {
    vec![
        ModuleSpec {
            name: "Lane",
            configuration: "4 Lanes per accelerator",
            power_mw: 2878.33,
            area_mm2: 2.701,
        },
        ModuleSpec {
            name: "Lane/RMMU",
            configuration: "32*16 FX-16",
            power_mw: 645.98,
            area_mm2: 0.609,
        },
        ModuleSpec {
            name: "Lane/Filter",
            configuration: "Token Paral. = 4",
            power_mw: 9.13,
            area_mm2: 0.003,
        },
        ModuleSpec {
            name: "Lane/MFU",
            configuration: "16 Exp, 16 Div, 16*16 Adder Tree",
            power_mw: 60.73,
            area_mm2: 0.060,
        },
        ModuleSpec {
            name: "Accumulator",
            configuration: "512 accu/cycle",
            power_mw: 139.21,
            area_mm2: 0.045,
        },
        ModuleSpec {
            name: "DOTA (w/o SRAM)",
            configuration: "2TOPS",
            power_mw: 3017.54,
            area_mm2: 2.746,
        },
        ModuleSpec {
            name: "SRAM",
            configuration: "2.5MB",
            power_mw: SRAM_LEAKAGE_MW,
            area_mm2: 1.690,
        },
    ]
}

/// Total accelerator power (W) including SRAM leakage.
pub fn total_power_w() -> f64 {
    (3017.54 + SRAM_LEAKAGE_MW) / 1000.0
}

/// Total accelerator area (mm²) including SRAM.
pub fn total_area_mm2() -> f64 {
    2.746 + 1.690
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_energy_scales_quadratically() {
        assert!((mac_pj(Precision::Fx16) - MAC_FX16_PJ).abs() < 1e-9);
        assert!((mac_pj(Precision::Int8) - MAC_FX16_PJ / 4.0).abs() < 1e-9);
        assert!((mac_pj(Precision::Int4) - MAC_FX16_PJ / 16.0).abs() < 1e-9);
        assert!((mac_pj(Precision::Int2) - MAC_FX16_PJ / 64.0).abs() < 1e-9);
    }

    #[test]
    fn rmmu_energy_consistent_with_table2_power() {
        // 4 lanes * 512 MACs/cycle * 1 GHz * MAC_FX16_PJ should be close to
        // the 4-lane RMMU power (4 * 645.98 mW).
        let watts = 4.0 * 512.0 * 1e9 * mac_pj(Precision::Fx16) * 1e-12;
        let table = 4.0 * 645.98e-3;
        assert!((watts - table).abs() / table < 0.05, "{watts} vs {table}");
    }

    #[test]
    fn table2_matches_paper_totals() {
        let rows = table2();
        assert_eq!(rows.len(), 7);
        let dota = rows.iter().find(|r| r.name.starts_with("DOTA")).unwrap();
        assert!((dota.power_mw - 3017.54).abs() < 1e-6);
        // Per-lane module areas sum close to the per-lane area:
        // (2.701 / 4) ≈ RMMU + Filter + MFU.
        let per_lane: f64 = 2.701 / 4.0;
        let parts = 0.609 + 0.003 + 0.060;
        assert!((per_lane - parts).abs() / per_lane < 0.01);
        assert!((total_area_mm2() - 4.436).abs() < 1e-9);
        assert!(total_power_w() > 3.0 && total_power_w() < 3.1);
    }

    #[test]
    fn dram_much_more_expensive_than_sram() {
        let ratio = DRAM_PJ_PER_BYTE / SRAM_PJ_PER_BYTE;
        assert!(ratio > 20.0, "DRAM/SRAM energy ratio {ratio}");
    }
}
