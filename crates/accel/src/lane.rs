//! Event-driven Lane pipeline model (paper §4.1, Figs. 5–6).
//!
//! The coarse simulator in [`Accelerator`](crate::Accelerator) charges each
//! stage `max(compute, memory)` and sums stages. This module refines that
//! with a list-scheduling engine over the Lane's four resources — the
//! RMMU, the MFU, the DRAM port and the SRAM ports — executing a
//! dependency DAG of *tiles*. It captures the two overlaps the coarse
//! model approximates:
//!
//! * **double buffering**: layer `l+1`'s weight stream overlaps layer
//!   `l`'s compute (distinct resources, no dependency);
//! * **detect/compute overlap**: the Detector's estimate for head `h+1`
//!   can run on low-precision rows while head `h`'s FX16 attention
//!   occupies the rest of the array (modeled as separate resources when
//!   the RMMU is split).
//!
//! The unit tests pin the expected behaviours: pipelining never loses to
//! serial execution, fully-dependent chains degenerate to the serial sum,
//! and resource busy-time is conserved.

use std::collections::BTreeMap;

/// A Lane resource that tiles occupy exclusively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Resource {
    /// The FX16 portion of the RMMU PE array.
    RmmuFx,
    /// The low-precision (detection) portion of the RMMU.
    RmmuDetect,
    /// The Multi-Function Unit (softmax, GELU, (de)quantize).
    Mfu,
    /// The off-chip DRAM port.
    DramPort,
    /// The banked SRAM ports.
    SramPort,
}

impl Resource {
    /// Stable display name (trace track and counter key component).
    pub fn name(self) -> &'static str {
        match self {
            Resource::RmmuFx => "RmmuFx",
            Resource::RmmuDetect => "RmmuDetect",
            Resource::Mfu => "Mfu",
            Resource::DramPort => "DramPort",
            Resource::SramPort => "SramPort",
        }
    }
}

/// One schedulable unit of work.
#[derive(Debug, Clone)]
pub struct Tile {
    /// Display name (for traces and error messages).
    pub name: String,
    /// Resource the tile occupies.
    pub resource: Resource,
    /// Occupancy in cycles.
    pub cycles: u64,
    /// Indices of tiles that must complete first.
    pub deps: Vec<usize>,
}

/// Result of scheduling a tile DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineReport {
    /// Total cycles until the last tile finishes.
    pub makespan: u64,
    /// Busy cycles per resource.
    pub busy: BTreeMap<Resource, u64>,
    /// Start time of every tile, in input order.
    pub start_times: Vec<u64>,
    /// Completion time of every tile, in input order.
    pub finish_times: Vec<u64>,
}

impl PipelineReport {
    /// Utilization of `resource` over the makespan, in `[0, 1]`.
    pub fn utilization(&self, resource: Resource) -> f64 {
        let busy = self.busy.get(&resource).copied().unwrap_or(0);
        busy as f64 / self.makespan.max(1) as f64
    }

    /// Sum of all tiles' cycles — the serial (no-overlap) execution time.
    pub fn serial_cycles(&self) -> u64 {
        self.busy.values().sum()
    }
}

/// Schedules a tile DAG with list scheduling: a tile starts at the later of
/// its dependencies' completion and its resource's availability; ties
/// resolve in input order (the hardware's in-order issue within a queue).
///
/// # Panics
///
/// Panics if a dependency index is out of range or not topologically
/// ordered (deps must reference earlier tiles).
pub fn schedule(tiles: &[Tile]) -> PipelineReport {
    let mut resource_free: BTreeMap<Resource, u64> = BTreeMap::new();
    let mut starts: Vec<u64> = Vec::with_capacity(tiles.len());
    let mut finish: Vec<u64> = Vec::with_capacity(tiles.len());
    let mut busy: BTreeMap<Resource, u64> = BTreeMap::new();
    for (i, tile) in tiles.iter().enumerate() {
        let mut ready = 0u64;
        for &d in &tile.deps {
            assert!(d < i, "tile {i} ({}) depends on later tile {d}", tile.name);
            ready = ready.max(finish[d]);
        }
        let free = resource_free.get(&tile.resource).copied().unwrap_or(0);
        let start = ready.max(free);
        let end = start + tile.cycles;
        resource_free.insert(tile.resource, end);
        *busy.entry(tile.resource).or_insert(0) += tile.cycles;
        dota_trace::sim_event(tile.resource.name(), &tile.name, start, tile.cycles);
        starts.push(start);
        finish.push(end);
    }
    let report = PipelineReport {
        makespan: finish.iter().copied().max().unwrap_or(0),
        busy,
        start_times: starts,
        finish_times: finish,
    };
    if dota_trace::enabled() {
        dota_trace::count("lane.makespan_cycles", report.makespan);
        for (&res, &busy_cycles) in &report.busy {
            dota_trace::count(&format!("lane.{}.busy_cycles", res.name()), busy_cycles);
            dota_trace::count(
                &format!("lane.{}.idle_cycles", res.name()),
                report.makespan - busy_cycles,
            );
        }
    }
    report
}

/// Builds the tile DAG of an `n_layers`-deep encoder pass with
/// double-buffered weight prefetch: per layer, a weight stream
/// (`DramPort`), the linear GEMMs (`RmmuFx`, after the weights), the
/// detection estimate (`RmmuDetect`), the sparse attention (`RmmuFx`, after
/// detection), softmax (`Mfu`, pipelined with attention here as a
/// dependent stage), the K/V fetch (`SramPort`, parallel to attention
/// compute), and the FFN (`RmmuFx`).
#[allow(clippy::too_many_arguments)]
pub fn encoder_tiles(
    n_layers: usize,
    weight_stream_cycles: u64,
    linear_cycles: u64,
    detect_cycles: u64,
    attention_cycles: u64,
    softmax_cycles: u64,
    kv_fetch_cycles: u64,
    ffn_cycles: u64,
) -> Vec<Tile> {
    let mut tiles = Vec::new();
    let mut prev_ffn: Option<usize> = None;
    for l in 0..n_layers {
        let t = |name: String, resource, cycles, deps: Vec<usize>| Tile {
            name,
            resource,
            cycles,
            deps,
        };
        // Weight prefetch depends only on the previous layer's prefetch
        // (the DRAM port serializes), never on compute: double buffering.
        let w_dep: Vec<usize> = Vec::new();
        let w = tiles.len();
        tiles.push(t(
            format!("L{l}.weights"),
            Resource::DramPort,
            weight_stream_cycles,
            w_dep,
        ));
        // Linear needs this layer's weights and the previous layer's
        // output.
        let mut lin_deps = vec![w];
        if let Some(p) = prev_ffn {
            lin_deps.push(p);
        }
        let lin = tiles.len();
        tiles.push(t(
            format!("L{l}.linear"),
            Resource::RmmuFx,
            linear_cycles,
            lin_deps,
        ));
        // Detection runs on the low-precision rows right after QKV.
        let det = tiles.len();
        tiles.push(t(
            format!("L{l}.detect"),
            Resource::RmmuDetect,
            detect_cycles,
            vec![lin],
        ));
        // K/V fetch streams from SRAM once the schedule exists.
        let kv = tiles.len();
        tiles.push(t(
            format!("L{l}.kv"),
            Resource::SramPort,
            kv_fetch_cycles,
            vec![det],
        ));
        // Attention compute needs the detection result; it overlaps the
        // K/V stream (list scheduling lets both proceed; the dependency is
        // on detection only, matching the hardware's streaming design).
        let attn = tiles.len();
        tiles.push(t(
            format!("L{l}.attention"),
            Resource::RmmuFx,
            attention_cycles,
            vec![det],
        ));
        // Softmax consumes score tiles as they stream out of the RMMU; it
        // runs on the MFU concurrently with the attention tile (both
        // depend only on detection).
        let sm = tiles.len();
        tiles.push(t(
            format!("L{l}.softmax"),
            Resource::Mfu,
            softmax_cycles,
            vec![det],
        ));
        // FFN closes the layer (attention, softmax and the K/V stream must
        // all have drained).
        let ffn = tiles.len();
        tiles.push(t(
            format!("L{l}.ffn"),
            Resource::RmmuFx,
            ffn_cycles,
            vec![attn, sm, kv],
        ));
        prev_ffn = Some(ffn);
    }
    tiles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_tiles_run_in_parallel() {
        let tiles = vec![
            Tile {
                name: "a".into(),
                resource: Resource::RmmuFx,
                cycles: 100,
                deps: vec![],
            },
            Tile {
                name: "b".into(),
                resource: Resource::DramPort,
                cycles: 80,
                deps: vec![],
            },
        ];
        let rep = schedule(&tiles);
        assert_eq!(rep.makespan, 100);
        assert_eq!(rep.serial_cycles(), 180);
    }

    #[test]
    fn dependent_chain_is_serial() {
        let tiles = vec![
            Tile {
                name: "a".into(),
                resource: Resource::RmmuFx,
                cycles: 10,
                deps: vec![],
            },
            Tile {
                name: "b".into(),
                resource: Resource::Mfu,
                cycles: 20,
                deps: vec![0],
            },
            Tile {
                name: "c".into(),
                resource: Resource::RmmuFx,
                cycles: 30,
                deps: vec![1],
            },
        ];
        let rep = schedule(&tiles);
        assert_eq!(rep.makespan, 60);
        assert_eq!(rep.finish_times, vec![10, 30, 60]);
    }

    #[test]
    fn same_resource_serializes() {
        let tiles = vec![
            Tile {
                name: "a".into(),
                resource: Resource::RmmuFx,
                cycles: 10,
                deps: vec![],
            },
            Tile {
                name: "b".into(),
                resource: Resource::RmmuFx,
                cycles: 10,
                deps: vec![],
            },
        ];
        let rep = schedule(&tiles);
        assert_eq!(rep.makespan, 20);
    }

    #[test]
    fn weight_prefetch_hides_behind_compute() {
        // 4 layers; weights stream (50) fully hidden behind compute (200+).
        let tiles = encoder_tiles(4, 50, 100, 10, 80, 20, 30, 100);
        let rep = schedule(&tiles);
        // Serial lower bound per layer on the RMMU: linear+attn+ffn = 280.
        let rmmu_busy = rep.busy[&Resource::RmmuFx];
        assert_eq!(rmmu_busy, 4 * 280);
        // Pipelined makespan must beat naive serial-everything...
        assert!(rep.makespan < rep.serial_cycles(), "no overlap achieved");
        // ...and all but the first weight load should hide completely:
        // makespan ≈ first weights + per-layer critical path.
        let serial_no_overlap: u64 = 4 * (50 + 100 + 10 + 80 + 20 + 100 + 30);
        assert!(rep.makespan < serial_no_overlap);
        assert!(rep.utilization(Resource::RmmuFx) > 0.8);
    }

    #[test]
    fn memory_bound_configuration_shifts_bottleneck() {
        // Giant weight streams: the DRAM port becomes the critical
        // resource and RMMU utilization collapses.
        let tiles = encoder_tiles(4, 1000, 100, 10, 80, 20, 30, 100);
        let rep = schedule(&tiles);
        assert!(rep.utilization(Resource::DramPort) > 0.9);
        assert!(rep.utilization(Resource::RmmuFx) < 0.5);
        // Makespan is pinned by the weight stream.
        assert!(rep.makespan >= 4 * 1000);
    }

    #[test]
    fn pipeline_never_worse_than_fully_serial() {
        for layers in [1usize, 2, 8] {
            let tiles = encoder_tiles(layers, 37, 91, 13, 61, 7, 29, 83);
            let rep = schedule(&tiles);
            let serial: u64 = tiles.iter().map(|t| t.cycles).sum();
            assert!(rep.makespan <= serial);
            assert_eq!(rep.serial_cycles(), serial);
        }
    }

    #[test]
    #[should_panic(expected = "depends on later tile")]
    fn rejects_forward_dependencies() {
        let tiles = vec![Tile {
            name: "bad".into(),
            resource: Resource::Mfu,
            cycles: 1,
            deps: vec![0],
        }];
        let _ = schedule(&tiles);
    }
}
