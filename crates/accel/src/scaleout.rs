//! Sequence-level scale-out (paper §4.1).
//!
//! One DOTA accelerator processes one input sequence at a time; sequences
//! share weights but need duplicated compute. The paper scales *out* —
//! multiple accelerators working on different sequences — rather than up.
//! This model answers throughput/latency questions for a fleet: `A`
//! accelerators fed from a shared memory system, processing a batch of `B`
//! sequences.

use crate::PerfReport;

/// A fleet of identical DOTA accelerators sharing a memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleOut {
    /// Number of accelerators.
    pub accelerators: usize,
    /// Whether the shared weight stream is broadcast to all accelerators
    /// (one DRAM read serves everyone — the paper's "different input
    /// sequences share the same weights").
    pub broadcast_weights: bool,
}

/// Batch execution summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchReport {
    /// Wall-clock seconds to finish the whole batch.
    pub makespan_s: f64,
    /// Sequences per second at steady state.
    pub throughput_seq_per_s: f64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Mean accelerator utilization over the makespan, in `[0, 1]`.
    pub utilization: f64,
}

impl ScaleOut {
    /// A fleet of `accelerators` with weight broadcast enabled.
    ///
    /// # Panics
    ///
    /// Panics if `accelerators == 0`.
    pub fn new(accelerators: usize) -> Self {
        assert!(accelerators > 0, "need at least one accelerator");
        Self {
            accelerators,
            broadcast_weights: true,
        }
    }

    /// Disables weight broadcast (each accelerator streams its own copy).
    pub fn without_broadcast(mut self) -> Self {
        self.broadcast_weights = false;
        self
    }

    /// Executes a batch of `batch` equal sequences whose single-sequence
    /// behaviour is `per_seq` (from
    /// [`Accelerator::simulate_shape`](crate::Accelerator::simulate_shape)).
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn run_batch(&self, per_seq: &PerfReport, batch: usize) -> BatchReport {
        assert!(batch > 0, "empty batch");
        let latency_s = per_seq.seconds();
        // Waves of `A` sequences; the last wave may be partial.
        let waves = batch.div_ceil(self.accelerators);
        let makespan_s = waves as f64 * latency_s;
        let busy = batch as f64 * latency_s;
        let capacity = (self.accelerators * waves) as f64 * latency_s;

        // Energy: compute energy per sequence is duplicated; the DRAM
        // weight-stream component is shared when broadcasting.
        let per_seq_j = per_seq.energy.total_j();
        let dram_j = per_seq.energy.dram_pj * 1e-12;
        let energy_j = if self.broadcast_weights {
            // One weight stream per wave + non-DRAM energy per sequence.
            let non_dram = per_seq_j - dram_j;
            batch as f64 * non_dram + waves as f64 * dram_j
        } else {
            batch as f64 * per_seq_j
        };

        BatchReport {
            makespan_s,
            throughput_seq_per_s: batch as f64 / makespan_s.max(1e-15),
            energy_j,
            utilization: busy / capacity.max(1e-15),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SelectionProfile;
    use crate::{AccelConfig, Accelerator};
    use dota_transformer::TransformerConfig;

    fn per_seq() -> PerfReport {
        let acc = Accelerator::new(AccelConfig::default());
        acc.simulate_shape(
            &TransformerConfig::lra(1024, 2),
            1024,
            0.1,
            0.2,
            &SelectionProfile::default(),
        )
    }

    #[test]
    fn throughput_scales_linearly_on_full_waves() {
        let rep = per_seq();
        let t1 = ScaleOut::new(1).run_batch(&rep, 8).throughput_seq_per_s;
        let t4 = ScaleOut::new(4).run_batch(&rep, 8).throughput_seq_per_s;
        assert!((t4 / t1 - 4.0).abs() < 1e-9, "t4/t1 = {}", t4 / t1);
    }

    #[test]
    fn partial_wave_lowers_utilization() {
        let rep = per_seq();
        let full = ScaleOut::new(4).run_batch(&rep, 8);
        let partial = ScaleOut::new(4).run_batch(&rep, 9);
        assert!((full.utilization - 1.0).abs() < 1e-9);
        assert!(partial.utilization < 1.0);
        assert!(partial.makespan_s > full.makespan_s);
    }

    #[test]
    fn broadcast_saves_weight_energy() {
        let rep = per_seq();
        let shared = ScaleOut::new(4).run_batch(&rep, 8);
        let dup = ScaleOut::new(4).without_broadcast().run_batch(&rep, 8);
        assert!(shared.energy_j < dup.energy_j);
        // Makespan is identical — broadcast only saves energy.
        assert_eq!(shared.makespan_s, dup.makespan_s);
    }

    #[test]
    fn single_sequence_degenerates_to_latency() {
        let rep = per_seq();
        let one = ScaleOut::new(4).run_batch(&rep, 1);
        assert!((one.makespan_s - rep.seconds()).abs() < 1e-15);
        assert!(one.utilization <= 0.25 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn rejects_empty_batch() {
        let rep = per_seq();
        let _ = ScaleOut::new(2).run_batch(&rep, 0);
    }
}
