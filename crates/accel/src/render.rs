//! Plain-text rendering of schedules and pipeline occupancy.
//!
//! The scheduler and lane models produce structures that are much easier to
//! review as small ASCII charts — these renderers power the
//! `accelerator_tour` example and debugging sessions.

use crate::lane::{PipelineReport, Resource, Tile};
use crate::sched::Schedule;

/// Renders a token-parallel schedule as one line per round:
/// `round 3: load k2,k7 -> q0:k2 q1:k2 q3:k7`.
pub fn render_schedule(schedule: &Schedule) -> String {
    let mut out = String::new();
    for (i, round) in schedule.rounds.iter().enumerate() {
        let loads: Vec<String> = round.loads.iter().map(|k| format!("k{k}")).collect();
        let assigns: Vec<String> = round
            .assignments
            .iter()
            .map(|(q, k)| format!("q{q}:k{k}"))
            .collect();
        out.push_str(&format!(
            "round {:>2}: load {:<12} -> {}\n",
            i + 1,
            loads.join(","),
            assigns.join(" ")
        ));
    }
    out
}

/// Renders a scheduled tile DAG as a Gantt-style chart, one row per
/// resource, `width` characters across the makespan. Each tile paints its
/// span with the first letter of its name; idle time is `.`.
///
/// # Panics
///
/// Panics if `width == 0` or `tiles` and `report` disagree in length.
pub fn render_gantt(tiles: &[Tile], report: &PipelineReport, width: usize) -> String {
    assert!(width > 0, "width must be positive");
    assert_eq!(
        tiles.len(),
        report.finish_times.len(),
        "tiles and report disagree"
    );
    let makespan = report.makespan.max(1);
    let resources = [
        (Resource::DramPort, "dram"),
        (Resource::RmmuFx, "rmmu"),
        (Resource::RmmuDetect, "det "),
        (Resource::Mfu, "mfu "),
        (Resource::SramPort, "sram"),
    ];
    let mut rows: std::collections::BTreeMap<Resource, Vec<char>> = resources
        .iter()
        .map(|&(r, _)| (r, vec!['.'; width]))
        .collect();
    for (tile, &finish) in tiles.iter().zip(&report.finish_times) {
        let start = finish - tile.cycles;
        let c0 = (start as f64 / makespan as f64 * width as f64) as usize;
        let c1 =
            ((finish as f64 / makespan as f64 * width as f64).ceil() as usize).clamp(c0 + 1, width);
        let glyph = tile
            .name
            .chars()
            .find(|c| c.is_alphanumeric())
            .unwrap_or('#');
        if let Some(row) = rows.get_mut(&tile.resource) {
            for cell in row.iter_mut().take(c1).skip(c0) {
                *cell = glyph;
            }
        }
    }
    let mut out = String::new();
    for (r, label) in resources {
        let row: String = rows[&r].iter().collect();
        out.push_str(&format!(
            "{label} |{row}| {:>5.1}%\n",
            report.utilization(r) * 100.0
        ));
    }
    out.push_str(&format!("makespan: {} cycles\n", report.makespan));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::{encoder_tiles, schedule};
    use crate::sched::locality_aware_schedule;

    #[test]
    fn schedule_render_mentions_every_round() {
        let sel = vec![
            vec![0u32, 1, 2],
            vec![1, 2, 3],
            vec![1, 4, 5],
            vec![2, 3, 4],
        ];
        let s = locality_aware_schedule(&sel);
        let text = render_schedule(&s);
        assert_eq!(text.lines().count(), s.rounds.len());
        assert!(text.contains("q0:"));
        assert!(text.contains("load"));
    }

    #[test]
    fn gantt_rows_and_utilization_present() {
        let tiles = encoder_tiles(2, 50, 100, 10, 80, 20, 30, 100);
        let rep = schedule(&tiles);
        let chart = render_gantt(&tiles, &rep, 60);
        assert_eq!(chart.lines().count(), 6); // 5 resources + makespan
        assert!(chart.contains("rmmu |"));
        assert!(chart.contains("makespan:"));
        // The RMMU row should be mostly busy (letters, not dots).
        let rmmu_line = chart.lines().nth(1).unwrap();
        let busy = rmmu_line.chars().filter(|c| c.is_alphanumeric()).count();
        assert!(busy > 30, "rmmu row too idle: {rmmu_line}");
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn gantt_rejects_zero_width() {
        let tiles = encoder_tiles(1, 1, 1, 1, 1, 1, 1, 1);
        let rep = schedule(&tiles);
        let _ = render_gantt(&tiles, &rep, 0);
    }
}
