//! Weak-attention detection (paper §3) and baselines.
//!
//! The central idea of DOTA is to *detect* weak attention connections before
//! computing `Q K^T`, using a trainable, low-rank, low-precision estimator:
//!
//! ```text
//! Q̃, K̃ = (X P) W̃_Q, (X P) W̃_K        (Eq. 4, P = Achlioptas projection)
//! S̃    = Q̃ K̃^T                        (estimated scores)
//! mask  = row-wise top-k of S̃           (equal-k workload balance, §4.3)
//! ```
//!
//! trained jointly with the model against `L = L_model + λ‖S − S̃‖²`
//! (Eqs. 5–6), so the estimator learns to rank connections *and* the model
//! adapts to sparse attention.
//!
//! This crate provides:
//!
//! * [`DetectorConfig`] — σ (dimension reduction), precision, retention,
//!   selection strategy, λ;
//! * [`LowRankDetector`] — one estimator per attention head, with a
//!   float path for training and a quantized path for inference;
//! * [`DotaHook`] — the [`AttentionHook`](dota_transformer::AttentionHook)
//!   implementing joint optimization, and [`DotaInferenceHook`] for the
//!   deployed quantized detector;
//! * [`elsa`] / [`a3`] — the sign-random-projection (ELSA) and
//!   sorted-approximation (A3) prior-work baselines (§6.2);
//! * [`oracle`] — post-hoc exact top-k and random-selection references
//!   (Table 1);
//! * [`metrics`] — detection-recall evaluation against the oracle.

#![deny(missing_docs)]
// Indexed loops are the clearest formulation of the matrix kernels here.
#![allow(clippy::needless_range_loop)]

pub mod a3;
pub mod calibrate;
mod config;
pub mod decode;
pub mod elsa;
mod hook;
mod lowrank;
pub mod metrics;
pub mod oracle;
pub mod spatten;

pub use config::{DetectorConfig, SelectionStrategy};
pub use hook::{oracle_selection, DotaHook, DotaInferenceHook, DotaTrainingHook};
pub use lowrank::LowRankDetector;
