//! The DOTA detector in decoder mode (paper §4.4).
//!
//! During autoregressive decoding the query is a single row, and the
//! detector's job becomes: estimate the new token's scores against the
//! *cached* keys and keep the strongest `retention · t`. The low-rank
//! estimate makes this cheap — the detector caches each step's projected
//! key sketch `k̃ = x P W̃_K` (rank-k per head instead of `hd`), so a
//! decode step costs `O(t · k)` estimate work instead of the `O(t · hd)`
//! exact scores it prunes.

use crate::{DetectorConfig, DotaHook};
use dota_autograd::ParamSet;
use dota_tensor::{topk, Matrix};
use dota_transformer::DecodeSelector;
use std::cell::RefCell;

/// Per-(layer, head) cache of projected key sketches.
#[derive(Debug, Default)]
struct SketchCache {
    /// `k̃` rows accumulated so far, per layer, per head.
    keys: Vec<Vec<Matrix>>,
    /// Positions cached (equal across layers/heads once a step completes).
    len: usize,
}

/// A [`DecodeSelector`] driven by the trained DOTA detector.
///
/// Holds its own sketch cache; create one per generation and feed every
/// decode step through it (steps must be issued in order, all layers/heads
/// per step, exactly as [`Model::decode_step`](dota_transformer::Model::decode_step)
/// does).
#[derive(Debug)]
pub struct DotaDecodeSelector<'a> {
    hook: &'a DotaHook,
    params: &'a ParamSet,
    cfg: DetectorConfig,
    n_heads: usize,
    cache: RefCell<SketchCache>,
}

impl<'a> DotaDecodeSelector<'a> {
    /// Creates a selector over a trained detector bank for a model with
    /// `n_layers` × `n_heads` heads.
    pub fn new(hook: &'a DotaHook, params: &'a ParamSet, n_layers: usize, n_heads: usize) -> Self {
        Self {
            hook,
            params,
            cfg: hook.config().clone(),
            n_heads,
            cache: RefCell::new(SketchCache {
                keys: (0..n_layers)
                    .map(|_| (0..n_heads).map(|_| Matrix::zeros(0, 1)).collect())
                    .collect(),
                len: 0,
            }),
        }
    }

    /// Number of cached positions.
    pub fn cached(&self) -> usize {
        self.cache.borrow().len
    }
}

impl DecodeSelector for DotaDecodeSelector<'_> {
    fn select(&self, layer: usize, head: usize, x: &Matrix, cache_len: usize) -> Option<Vec<u32>> {
        assert!(head < self.n_heads, "head index out of range");
        let det = self.hook.detector(layer, head);
        // Project the current row once: xp is 1 x rank.
        let xp = x.matmul(det.projection()).expect("projection shape");
        let k_row = xp.matmul(self.params.value(det.wk_tilde())).expect("shape");
        let q_row = xp.matmul(self.params.value(det.wq_tilde())).expect("shape");

        // Append this step's key sketch (the model appends its K/V before
        // calling attention, so cache_len already includes the new row).
        {
            let mut cache = self.cache.borrow_mut();
            let slot = &mut cache.keys[layer][head];
            *slot = if slot.rows() == 0 {
                k_row
            } else {
                Matrix::vcat(&[slot, &k_row]).expect("sketch width fixed")
            };
            if layer == 0 && head == 0 {
                cache.len = cache_len;
            }
            debug_assert_eq!(cache.keys[layer][head].rows(), cache_len);
        }

        // Estimated scores of the new query against every cached key.
        let cache = self.cache.borrow();
        let sketches = &cache.keys[layer][head];
        let scores = q_row.matmul_nt(sketches).expect("shape");
        let keep = ((self.cfg.retention_for_layer(layer) * cache_len as f64).round() as usize)
            .clamp(1, cache_len);
        Some(
            topk::top_k_indices(scores.row(0), keep)
                .into_iter()
                .map(|i| i as u32)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dota_transformer::{DenseDecode, Model, TransformerConfig};

    fn setup() -> (Model, ParamSet, DotaHook) {
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny_causal(16, 8), &mut params, 23);
        let hook = DotaHook::init(
            DetectorConfig::new(0.5).with_sigma(0.5),
            model.config(),
            &mut params,
        );
        (model, params, hook)
    }

    #[test]
    fn selector_limits_attended_connections() {
        let (model, params, hook) = setup();
        let selector = DotaDecodeSelector::new(
            &hook,
            &params,
            model.config().n_layers,
            model.config().n_heads,
        );
        let prompt = [1usize, 3, 5, 2, 7, 4];
        let dense = model.generate(&params, &prompt, 4, &DenseDecode);
        // Fresh selector for a fresh generation.
        let selector2 = DotaDecodeSelector::new(
            &hook,
            &params,
            model.config().n_layers,
            model.config().n_heads,
        );
        drop(selector);
        let sparse = model.generate(&params, &prompt, 4, &selector2);
        let d: u64 = dense.attended_per_token.iter().sum();
        let s: u64 = sparse.attended_per_token.iter().sum();
        assert!(s < d, "detector decode should attend less: {s} vs {d}");
        assert_eq!(sparse.tokens.len(), 4);
    }

    #[test]
    fn sketch_cache_tracks_positions() {
        let (model, params, hook) = setup();
        let selector = DotaDecodeSelector::new(
            &hook,
            &params,
            model.config().n_layers,
            model.config().n_heads,
        );
        let mut cache =
            dota_transformer::KvCache::new(model.config().n_layers, model.config().d_model);
        for (i, &t) in [1usize, 2, 3].iter().enumerate() {
            let _ = model.decode_step(&params, &mut cache, t, &selector);
            assert_eq!(selector.cached(), i + 1);
        }
    }
}
