use crate::{DetectorConfig, SelectionStrategy};
use dota_autograd::{Graph, ParamId, ParamSet, Var};
use dota_quant::Quantizer;
use dota_tensor::rng::SeededRng;
use dota_tensor::{topk, Matrix};

/// One low-rank score estimator for a single attention head (paper §3.1).
///
/// Holds the fixed Achlioptas projection `P ∈ sqrt(3/k)·{-1,0,+1}^{d×k}` and
/// handles to the trainable `k×k` transformations `W̃_Q`, `W̃_K`. Two
/// evaluation paths are provided: a float path on the autograd tape (for
/// joint training) and a quantized integer path (what the deployed RMMU
/// computes).
#[derive(Debug, Clone)]
pub struct LowRankDetector {
    projection: Matrix,
    wq_tilde: ParamId,
    wk_tilde: ParamId,
    rank: usize,
}

impl LowRankDetector {
    /// Initializes a detector for input dimension `d_model` and head
    /// dimension `head_dim`, registering its trainable parameters.
    ///
    /// `tag` namespaces the parameter names (e.g. `"l0.h1"`).
    pub fn init(
        cfg: &DetectorConfig,
        d_model: usize,
        head_dim: usize,
        params: &mut ParamSet,
        tag: &str,
        seed: u64,
    ) -> Self {
        let rank = cfg.rank_for_head_dim(head_dim);
        let mut rng = SeededRng::new(seed);
        let projection = rng.achlioptas_projection(d_model, rank);
        // Identity-leaning init: the projection alone is already an unbiased
        // low-dimensional sketch, so start W̃ near identity plus noise.
        let noise = 0.1 / (rank as f32).sqrt();
        let init = |rng: &mut SeededRng| {
            let mut m = rng.normal_matrix(rank, rank, noise);
            for i in 0..rank {
                m[(i, i)] += 1.0;
            }
            m
        };
        let wq_tilde = params.add(&format!("detector.{tag}.wq_tilde"), init(&mut rng));
        let wk_tilde = params.add(&format!("detector.{tag}.wk_tilde"), init(&mut rng));
        Self {
            projection,
            wq_tilde,
            wk_tilde,
            rank,
        }
    }

    /// The detector rank `k`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Handle to `W̃_Q`.
    pub fn wq_tilde(&self) -> ParamId {
        self.wq_tilde
    }

    /// Handle to `W̃_K`.
    pub fn wk_tilde(&self) -> ParamId {
        self.wk_tilde
    }

    /// The fixed sparse random projection `P`.
    pub fn projection(&self) -> &Matrix {
        &self.projection
    }

    /// Builds the estimated score node `S̃ = (X P W̃_Q)(X P W̃_K)^T` on the
    /// tape (float path, used during joint training).
    pub fn estimated_scores(&self, g: &mut Graph, params: &ParamSet, x: Var) -> Var {
        let p = g.constant(self.projection.clone());
        let xp = g.matmul(x, p);
        let wq = g.param(params, self.wq_tilde);
        let wk = g.param(params, self.wk_tilde);
        let q_tilde = g.matmul(xp, wq);
        let k_tilde = g.matmul(xp, wk);
        g.matmul_nt(q_tilde, k_tilde)
    }

    /// Quantized inference path: `X P` is computed in float (the projection
    /// is ternary — in hardware it is adds/subtracts), then `X P`, `W̃_Q`
    /// and `W̃_K` are quantized to `cfg.precision` and all remaining GEMMs
    /// run in integer arithmetic, exactly like the RMMU's low-precision
    /// rows.
    pub fn estimated_scores_quantized(
        &self,
        cfg: &DetectorConfig,
        params: &ParamSet,
        x: &Matrix,
    ) -> Matrix {
        let xp = x.matmul(&self.projection).expect("projection shape");
        let quant = Quantizer::symmetric(cfg.precision);
        let q_xp = quant.quantize(&xp);
        let q_wq = quant.quantize(params.value(self.wq_tilde));
        let q_wk = quant.quantize(params.value(self.wk_tilde));
        // Q̃ = XP · W̃_Q in integer arithmetic (dequantized result carries
        // the combined scale, like the INT8 intermediates of §5.5)…
        let q_tilde = q_xp
            .matmul_nt_dequant(&transpose_quantized(&q_wq, cfg))
            .expect("shape");
        let k_tilde = q_xp
            .matmul_nt_dequant(&transpose_quantized(&q_wk, cfg))
            .expect("shape");
        // …then S̃ = Q̃ K̃^T, requantized as the RMMU would before the
        // Detector's threshold comparison.
        let q_q = quant.quantize(&q_tilde);
        let q_k = quant.quantize(&k_tilde);
        q_q.matmul_nt_dequant(&q_k).expect("shape")
    }

    /// Float (FP32) inference path, for the Fig. 14b precision ablation.
    pub fn estimated_scores_f32(&self, params: &ParamSet, x: &Matrix) -> Matrix {
        let xp = x.matmul(&self.projection).expect("projection shape");
        let q_tilde = xp.matmul(params.value(self.wq_tilde)).expect("shape");
        let k_tilde = xp.matmul(params.value(self.wk_tilde)).expect("shape");
        q_tilde.matmul_nt(&k_tilde).expect("shape")
    }

    /// Converts estimated scores into the per-row key selection according to
    /// the configured strategy, at the base retention.
    pub fn select(cfg: &DetectorConfig, scores: &Matrix) -> Vec<Vec<u32>> {
        Self::select_for_layer(cfg, scores, None)
    }

    /// Like [`select`](Self::select), honoring the per-layer retention
    /// schedule when `layer` is given.
    pub fn select_for_layer(
        cfg: &DetectorConfig,
        scores: &Matrix,
        layer: Option<usize>,
    ) -> Vec<Vec<u32>> {
        let n_rows = scores.rows();
        let n_cols = scores.cols();
        let retention = layer
            .map(|l| cfg.retention_for_layer(l))
            .unwrap_or(cfg.retention);
        match cfg.strategy {
            SelectionStrategy::BalancedTopK => {
                let k = ((retention * n_cols as f64).round() as usize).clamp(1, n_cols);
                topk::top_k_rows(scores, k)
                    .into_iter()
                    .map(|row| row.into_iter().map(|i| i as u32).collect())
                    .collect()
            }
            SelectionStrategy::GlobalThreshold => {
                // Keep the strongest `retention` fraction of all entries.
                let total = n_rows * n_cols;
                let keep = ((retention * total as f64).round() as usize).clamp(1, total);
                let mut all: Vec<f32> = scores.iter().copied().collect();
                all.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
                let thresh = all[keep - 1];
                (0..n_rows)
                    .map(|r| {
                        let row = scores.row(r);
                        let mut sel: Vec<u32> = row
                            .iter()
                            .enumerate()
                            .filter(|(_, &v)| v >= thresh)
                            .map(|(j, _)| j as u32)
                            .collect();
                        // A row may legitimately end up empty under a global
                        // threshold; keep its single best key so the output
                        // feature is defined.
                        if sel.is_empty() {
                            sel = vec![topk::top_k_indices(row, 1)[0] as u32];
                        }
                        sel
                    })
                    .collect()
            }
        }
    }
}

/// Transposes a quantized matrix by dequantizing, transposing and
/// requantizing with the same scale (codes are preserved exactly — the
/// operation is a pure layout change, as in hardware).
fn transpose_quantized(
    q: &dota_quant::QuantizedMatrix,
    cfg: &DetectorConfig,
) -> dota_quant::QuantizedMatrix {
    let deq = q.dequantize().transpose();
    Quantizer::symmetric(cfg.precision).quantize_with_scale(&deq, q.scale())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dota_quant::Precision;

    fn setup(sigma: f64) -> (DetectorConfig, LowRankDetector, ParamSet) {
        let cfg = DetectorConfig::new(0.25).with_sigma(sigma);
        let mut params = ParamSet::new();
        let det = LowRankDetector::init(&cfg, 32, 16, &mut params, "l0.h0", 7);
        (cfg, det, params)
    }

    #[test]
    fn init_shapes() {
        let (cfg, det, params) = setup(0.25);
        assert_eq!(det.rank(), cfg.rank_for_head_dim(16));
        assert_eq!(det.projection().shape(), (32, det.rank()));
        assert_eq!(
            params.value(det.wq_tilde()).shape(),
            (det.rank(), det.rank())
        );
    }

    #[test]
    fn graph_and_f32_paths_agree() {
        let (_, det, params) = setup(0.5);
        let mut rng = SeededRng::new(1);
        let x = rng.normal_matrix(6, 32, 1.0);
        let f32_scores = det.estimated_scores_f32(&params, &x);
        let mut g = Graph::new();
        let xv = g.constant(x);
        let sv = det.estimated_scores(&mut g, &params, xv);
        assert!(g.value(sv).approx_eq(&f32_scores, 1e-4));
    }

    #[test]
    fn quantized_path_ranks_like_f32() {
        let (cfg, det, params) = setup(0.5);
        let mut rng = SeededRng::new(2);
        let x = rng.normal_matrix(16, 32, 1.0);
        let exact = det.estimated_scores_f32(&params, &x);
        let quant = det.estimated_scores_quantized(&cfg, &params, &x);
        assert_eq!(quant.shape(), exact.shape());
        let sel_exact = topk::top_k_rows(&exact, 4);
        let sel_quant = topk::top_k_rows(&quant, 4);
        let recall = topk::selection_recall(&sel_exact, &sel_quant);
        assert!(recall > 0.6, "quantized ranking recall {recall}");
    }

    #[test]
    fn int2_noisier_than_int8() {
        let (_, det, params) = setup(0.5);
        let mut rng = SeededRng::new(3);
        let x = rng.normal_matrix(24, 32, 1.0);
        let exact = det.estimated_scores_f32(&params, &x);
        let sel_exact = topk::top_k_rows(&exact, 6);
        let recall_at = |p: Precision| {
            let cfg = DetectorConfig::new(0.25).with_sigma(0.5).with_precision(p);
            let s = det.estimated_scores_quantized(&cfg, &params, &x);
            topk::selection_recall(&sel_exact, &topk::top_k_rows(&s, 6))
        };
        let r8 = recall_at(Precision::Int8);
        let r2 = recall_at(Precision::Int2);
        assert!(
            r8 >= r2,
            "INT8 {r8} should match f32 at least as well as INT2 {r2}"
        );
        assert!(r8 > 0.8, "INT8 recall {r8}");
    }

    #[test]
    fn balanced_selection_has_equal_rows() {
        let (cfg, _, _) = setup(0.25);
        let mut rng = SeededRng::new(4);
        let scores = rng.normal_matrix(12, 20, 1.0);
        let sel = LowRankDetector::select(&cfg, &scores);
        let k = cfg.keys_per_row(20);
        assert!(sel.iter().all(|r| r.len() == k));
    }

    #[test]
    fn global_threshold_keeps_retention_overall() {
        let cfg = DetectorConfig::new(0.25).with_strategy(SelectionStrategy::GlobalThreshold);
        let mut rng = SeededRng::new(5);
        let scores = rng.normal_matrix(20, 20, 1.0);
        let sel = LowRankDetector::select(&cfg, &scores);
        let kept: usize = sel.iter().map(Vec::len).sum();
        let frac = kept as f64 / 400.0;
        assert!((frac - 0.25).abs() < 0.05, "kept {frac}");
        // Rows vary in count — that is the point of the ablation.
        let counts: Vec<usize> = sel.iter().map(Vec::len).collect();
        assert!(counts.iter().any(|&c| c != counts[0]));
    }

    #[test]
    fn training_the_detector_improves_estimation() {
        // Regression-style sanity check of the MSE loss path: train W̃
        // to match a synthetic target score matrix produced by a real
        // Q/K projection pair.
        use dota_autograd::{Adam, Optimizer};
        let (_, det, mut params) = setup(0.5);
        let mut rng = SeededRng::new(6);
        let wq = rng.xavier(32, 16);
        let wk = rng.xavier(32, 16);
        let x = rng.normal_matrix(10, 32, 1.0);
        let target = x
            .matmul(&wq)
            .unwrap()
            .matmul_nt(&x.matmul(&wk).unwrap())
            .unwrap();
        let mut opt = Adam::new(0.02);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..150 {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let tv = g.constant(target.clone());
            let s_tilde = det.estimated_scores(&mut g, &params, xv);
            let loss = g.mse(s_tilde, tv);
            let v = g.value(loss)[(0, 0)];
            if step == 0 {
                first = v;
            }
            last = v;
            g.backward(loss);
            opt.step(&mut params, &g);
        }
        assert!(last < first * 0.5, "estimation loss {first} -> {last}");
    }
}
