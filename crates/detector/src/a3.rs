//! A3 baseline: sorted-dimension approximate attention (paper §6.2).
//!
//! A3 (Ham et al., HPCA 2020) approximates attention scores by consuming
//! only the largest-magnitude components of each query: key columns are
//! pre-sorted per dimension (the preprocessing the paper criticizes as
//! "outside the accelerator"), and the score of `(q, k)` is estimated from
//! the `m` dimensions where `|q|` is largest. The approximation is
//! training-free, so like ELSA the model cannot adapt to its errors.

use dota_autograd::ParamSet;
use dota_tensor::{topk, Matrix};
use dota_transformer::{InferenceHook, Model, TransformerParams};

/// Approximate score matrix using only each query's `m` largest-|q|
/// dimensions.
///
/// # Panics
///
/// Panics if `m == 0` or `m > q.cols()` or shapes disagree.
pub fn a3_scores(q: &Matrix, k: &Matrix, m: usize) -> Matrix {
    assert!(m > 0 && m <= q.cols(), "m {m} out of range");
    assert_eq!(q.cols(), k.cols(), "head dims disagree");
    let mut out = Matrix::zeros(q.rows(), k.rows());
    for i in 0..q.rows() {
        let qrow = q.row(i);
        // Dimensions where |q_i| is largest carry most of the dot product.
        let mags: Vec<f32> = qrow.iter().map(|v| v.abs()).collect();
        let dims = topk::top_k_indices(&mags, m);
        for j in 0..k.rows() {
            let krow = k.row(j);
            let mut acc = 0.0;
            for &d in &dims {
                acc += qrow[d] * krow[d];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

/// A3 as an [`InferenceHook`]: recomputes Q/K per layer from the model's
/// weights, estimates scores over the strongest query dimensions and keeps
/// the top-k per row.
#[derive(Debug)]
pub struct A3Hook {
    wq: Vec<Matrix>,
    wk: Vec<Matrix>,
    n_heads: usize,
    head_dim: usize,
    dims_used: usize,
    retention: f64,
}

impl A3Hook {
    /// Builds the hook from a model's current weights, using `dims_used`
    /// query dimensions per score.
    ///
    /// # Panics
    ///
    /// Panics if `retention` is not in `(0, 1]` or `dims_used` exceeds the
    /// head dimension.
    pub fn from_model(model: &Model, params: &ParamSet, dims_used: usize, retention: f64) -> Self {
        assert!(
            retention > 0.0 && retention <= 1.0,
            "retention {retention} must be in (0, 1]"
        );
        let hd = model.config().head_dim();
        assert!(dims_used > 0 && dims_used <= hd, "dims_used out of range");
        let tp: &TransformerParams = model.params();
        Self {
            wq: tp
                .layers
                .iter()
                .map(|l| params.value(l.wq).clone())
                .collect(),
            wk: tp
                .layers
                .iter()
                .map(|l| params.value(l.wk).clone())
                .collect(),
            n_heads: model.config().n_heads,
            head_dim: hd,
            dims_used,
            retention,
        }
    }
}

impl InferenceHook for A3Hook {
    fn select(&self, layer: usize, head: usize, x: &Matrix) -> Option<Vec<Vec<u32>>> {
        assert!(head < self.n_heads, "head index out of range");
        let q = x.matmul(&self.wq[layer]).expect("shape");
        let k = x.matmul(&self.wk[layer]).expect("shape");
        let (c0, c1) = (head * self.head_dim, (head + 1) * self.head_dim);
        let scores = a3_scores(&q.slice_cols(c0, c1), &k.slice_cols(c0, c1), self.dims_used);
        let n = x.rows();
        let kpr = ((self.retention * n as f64).round() as usize).clamp(1, n);
        Some(
            topk::top_k_rows(&scores, kpr)
                .into_iter()
                .map(|row| row.into_iter().map(|i| i as u32).collect())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dota_tensor::rng::SeededRng;
    use dota_transformer::TransformerConfig;

    #[test]
    fn full_dims_recovers_exact_scores() {
        let mut rng = SeededRng::new(1);
        let q = rng.normal_matrix(5, 8, 1.0);
        let k = rng.normal_matrix(6, 8, 1.0);
        let exact = q.matmul_nt(&k).unwrap();
        let approx = a3_scores(&q, &k, 8);
        assert!(approx.approx_eq(&exact, 1e-5));
    }

    #[test]
    fn more_dims_rank_better() {
        let mut rng = SeededRng::new(2);
        let q = rng.normal_matrix(24, 32, 1.0);
        let k = rng.normal_matrix(24, 32, 1.0);
        let exact_sel = topk::top_k_rows(&q.matmul_nt(&k).unwrap(), 6);
        let recall_with = |m: usize| {
            topk::selection_recall(&exact_sel, &topk::top_k_rows(&a3_scores(&q, &k, m), 6))
        };
        let r4 = recall_with(4);
        let r24 = recall_with(24);
        assert!(r24 > r4, "24 dims ({r24}) should beat 4 ({r4})");
    }

    #[test]
    fn hook_selects_at_retention() {
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny(16, 8, 2), &mut params, 1);
        let hook = A3Hook::from_model(&model, &params, 8, 0.5);
        let trace = model.infer(&params, &[1, 2, 3, 4, 5, 6], &hook);
        assert!((trace.retention() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dims_used out of range")]
    fn rejects_too_many_dims() {
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny(16, 8, 2), &mut params, 1);
        let _ = A3Hook::from_model(&model, &params, 999, 0.5);
    }
}
