//! Detection-quality metrics.
//!
//! A detector is judged by how well its selection agrees with the oracle
//! (exact row-wise top-k of the true attention scores), before any model
//! adaptation. These helpers score an [`InferenceHook`] against the oracle
//! over the heads of a model on given inputs.

use dota_autograd::ParamSet;
use dota_tensor::{topk, Matrix};
use dota_transformer::{InferenceHook, Model};

/// Detection quality of one hook summarized over all layers/heads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionQuality {
    /// Mean recall of oracle top-k connections (1.0 = perfect detection).
    pub recall: f64,
    /// Number of `(layer, head)` pairs evaluated.
    pub heads_evaluated: usize,
}

/// Scores `hook`'s selections against the oracle top-k at `keys_per_row`,
/// replaying the model's layer inputs exactly (the hook sees the same `x`
/// the model would give it).
///
/// # Panics
///
/// Panics if `ids` is invalid for the model.
pub fn detection_quality(
    model: &Model,
    params: &ParamSet,
    ids: &[usize],
    hook: &dyn InferenceHook,
    keys_per_row: usize,
) -> DetectionQuality {
    // Run a dense forward to obtain each layer's exact Q/K.
    let trace = model.infer(params, ids, &dota_transformer::NoHook);

    // Rebuild the layer inputs: infer() does not expose them, so we step
    // through the residual stream again using the recorded head traces'
    // operands. The head trace Q = X Wq[:, head] — recover X by replaying
    // the embedding and layers like infer() does; simplest is to recompute
    // inputs from scratch with a second dense pass that records x.
    let xs = layer_inputs(model, params, ids);

    let mut total_recall = 0.0;
    let mut heads = 0usize;
    for (l, layer_trace) in trace.layers.iter().enumerate() {
        for (h, head) in layer_trace.heads.iter().enumerate() {
            let exact = head.q.matmul_nt(&head.k).expect("shape");
            let oracle = topk::top_k_rows(&exact, keys_per_row);
            let Some(selected) = hook.select(l, h, &xs[l]) else {
                // Dense hook: perfect recall by definition.
                total_recall += 1.0;
                heads += 1;
                continue;
            };
            let candidate: Vec<Vec<usize>> = selected
                .iter()
                .map(|r| r.iter().map(|&i| i as usize).collect())
                .collect();
            total_recall += topk::selection_recall(&oracle, &candidate);
            heads += 1;
        }
    }
    DetectionQuality {
        recall: if heads == 0 {
            1.0
        } else {
            total_recall / heads as f64
        },
        heads_evaluated: heads,
    }
}

/// Recomputes the input `x` of each attention layer for `ids` (dense
/// forward), in the same order `infer` visits them.
pub fn layer_inputs(model: &Model, params: &ParamSet, ids: &[usize]) -> Vec<Matrix> {
    use dota_tensor::ops;
    let cfg = model.config();
    let tp = model.params();
    let n = ids.len();
    let hd = cfg.head_dim();
    let scale = 1.0 / (hd as f32).sqrt();

    let tok_table = params.value(tp.token_embedding);
    let pos_table = params.value(tp.pos_embedding);
    let mut x = Matrix::from_fn(n, cfg.d_model, |r, c| {
        tok_table[(ids[r], c)] + pos_table[(r, c)]
    });
    let mut inputs = Vec::with_capacity(cfg.n_layers);
    for layer in &tp.layers {
        inputs.push(x.clone());
        let q = x.matmul(params.value(layer.wq)).expect("shape");
        let k = x.matmul(params.value(layer.wk)).expect("shape");
        let v = x.matmul(params.value(layer.wv)).expect("shape");
        let mut outs = Vec::with_capacity(cfg.n_heads);
        for h in 0..cfg.n_heads {
            let (c0, c1) = (h * hd, (h + 1) * hd);
            let scores = q
                .slice_cols(c0, c1)
                .matmul_nt(&k.slice_cols(c0, c1))
                .expect("shape")
                .scale(scale);
            let attn = if cfg.causal {
                let mask: Vec<Vec<bool>> =
                    (0..n).map(|i| (0..n).map(|j| j <= i).collect()).collect();
                ops::masked_softmax_rows(&scores, &mask)
            } else {
                ops::softmax_rows(&scores)
            };
            outs.push(attn.matmul(&v.slice_cols(c0, c1)).expect("shape"));
        }
        let refs: Vec<&Matrix> = outs.iter().collect();
        let z = Matrix::hcat(&refs)
            .expect("heads")
            .matmul(params.value(layer.wo))
            .expect("shape");
        let res1 = x.add(&z).expect("shape");
        let normed1 = ops::layer_norm(
            &res1,
            params.value(layer.ln1_gamma).row(0),
            params.value(layer.ln1_beta).row(0),
            1e-5,
        );
        let h1 = ops::add_bias(
            &normed1.matmul(params.value(layer.w_ff1)).expect("shape"),
            params.value(layer.b_ff1).row(0),
        );
        let h2 = ops::add_bias(
            &ops::gelu(&h1)
                .matmul(params.value(layer.w_ff2))
                .expect("shape"),
            params.value(layer.b_ff2).row(0),
        );
        let res2 = normed1.add(&h2).expect("shape");
        x = ops::layer_norm(
            &res2,
            params.value(layer.ln2_gamma).row(0),
            params.value(layer.ln2_beta).row(0),
            1e-5,
        );
    }
    inputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{OracleHook, RandomHook};
    use crate::{DetectorConfig, DotaHook};
    use dota_transformer::TransformerConfig;

    fn model() -> (Model, ParamSet) {
        let mut params = ParamSet::new();
        let m = Model::init(TransformerConfig::tiny(16, 12, 2), &mut params, 21);
        (m, params)
    }

    #[test]
    fn oracle_hook_has_perfect_recall() {
        let (m, params) = model();
        let ids = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let hook = OracleHook::from_model(&m, &params, 0.25);
        let q = detection_quality(&m, &params, &ids, &hook, 2);
        assert!((q.recall - 1.0).abs() < 1e-9, "oracle recall {}", q.recall);
        assert_eq!(q.heads_evaluated, 4);
    }

    #[test]
    fn random_hook_recall_near_retention() {
        let (m, params) = model();
        let ids: Vec<usize> = (0..12).map(|i| i % 12).collect();
        let hook = RandomHook::new(0.25, 3);
        let q = detection_quality(&m, &params, &ids, &hook, 3);
        // Random selection recalls ~retention of the oracle set.
        assert!(q.recall > 0.05 && q.recall < 0.55, "recall {}", q.recall);
    }

    #[test]
    fn untrained_dota_detector_beats_random() {
        // The untrained detector's premise (paper §3.1) is that W̃ ≈ I makes
        // S̃ = (XP)(XP)^T a sketch of S = (XW_Q)(XW_K)^T — which holds when
        // the score weights are themselves similarity-like. A freshly
        // Xavier-initialized W_Q W_K^T is an arbitrary bilinear form, so give
        // the model identity-leaning score weights (the regime the W̃ ≈ I
        // initialization targets); the general case needs the estimation
        // warm-up and is covered by tests/joint_training.rs. Averaging over
        // several sequences and using a rank proportionate to the tiny
        // head_dim (σ = 0.5, see DESIGN.md) keeps selection noise down.
        let (m, mut params) = model();
        let mut rng = dota_tensor::rng::SeededRng::new(40);
        for layer in &m.params().layers {
            for id in [layer.wq, layer.wk] {
                let d = params.value(id).rows();
                let mut w = rng.normal_matrix(d, d, 0.05);
                for i in 0..d {
                    w[(i, i)] += 1.0;
                }
                *params.value_mut(id) = w;
            }
        }
        let mut p2 = params.clone();
        let hook = DotaHook::init(
            DetectorConfig::new(0.25).with_sigma(0.5),
            m.config(),
            &mut p2,
        );
        let mut dota_recall = 0.0;
        let mut rand_recall = 0.0;
        let sequences = 6;
        for s in 0..sequences {
            let ids: Vec<usize> = (0..12).map(|t| (t + 3 * s) % 12).collect();
            dota_recall += detection_quality(&m, &p2, &ids, &hook.inference_f32(&p2), 3).recall;
            rand_recall +=
                detection_quality(&m, &params, &ids, &RandomHook::new(0.25, 3 + s as u64), 3)
                    .recall;
        }
        dota_recall /= sequences as f64;
        rand_recall /= sequences as f64;
        assert!(
            dota_recall > rand_recall,
            "dota {dota_recall} vs random {rand_recall}"
        );
    }

    #[test]
    fn layer_inputs_match_head_traces() {
        // The recomputed layer input times Wq must equal the traced Q.
        let (m, params) = model();
        let ids = vec![1, 2, 3, 4];
        let xs = layer_inputs(&m, &params, &ids);
        let trace = m.infer(&params, &ids, &dota_transformer::NoHook);
        let q_full = xs[0].matmul(params.value(m.params().layers[0].wq)).unwrap();
        let q_head0 = q_full.slice_cols(0, m.config().head_dim());
        assert!(q_head0.approx_eq(&trace.layers[0].heads[0].q, 1e-4));
        // Second layer's input must differ from the first's.
        assert!(!xs[0].approx_eq(&xs[1], 1e-3));
    }
}
