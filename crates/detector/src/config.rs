use dota_quant::Precision;

/// How selected connection counts are distributed across query rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Every query keeps exactly `ceil(retention * n)` keys (row-wise
    /// top-k). This is DOTA's software workload-balancing constraint
    /// (§4.3): equal incoming-edge counts keep token-parallel PE groups
    /// synchronized.
    BalancedTopK,
    /// A single global threshold keeps the strongest `retention` fraction
    /// of *all* connections; per-row counts vary. Used as the ablation
    /// baseline to quantify what the balance constraint costs/saves.
    GlobalThreshold,
}

/// Per-layer retention override (extension study): index `l` holds layer
/// `l`'s retention; layers beyond the schedule use the base retention.
pub type LayerRetentions = Vec<f64>;

/// Configuration of the DOTA attention detector.
///
/// # Example
///
/// ```
/// use dota_detector::DetectorConfig;
///
/// let cfg = DetectorConfig::new(0.1).with_sigma(0.2);
/// assert_eq!(cfg.rank_for_head_dim(64), 12); // floor(64 * 0.2), §5.5
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// Fraction of attention connections to keep, in `(0, 1]`.
    pub retention: f64,
    /// Dimension-reduction factor σ: detector rank `k = floor(hd · σ)`
    /// (§5.5, Fig. 14a).
    pub sigma: f64,
    /// Quantization precision of the detection computation (Fig. 14b).
    pub precision: Precision,
    /// Weight λ of the MSE estimation loss in the joint objective (Eq. 6).
    pub lambda: f32,
    /// Row-balance strategy (§4.3).
    pub strategy: SelectionStrategy,
    /// Seed for the random projection matrices.
    pub seed: u64,
    /// Optional per-layer retention schedule (extension study). When set,
    /// layer `l` keeps `layer_retentions[l]` instead of the uniform
    /// `retention`; layers beyond the schedule fall back to the base value.
    pub layer_retentions: Option<LayerRetentions>,
}

impl DetectorConfig {
    /// Creates a configuration with the paper's defaults: σ = 0.2, INT4
    /// detection, λ = 1, balanced top-k selection.
    ///
    /// # Panics
    ///
    /// Panics if `retention` is not in `(0, 1]`.
    pub fn new(retention: f64) -> Self {
        assert!(
            retention > 0.0 && retention <= 1.0,
            "retention {retention} must be in (0, 1]"
        );
        Self {
            retention,
            sigma: 0.2,
            precision: Precision::Int4,
            lambda: 1.0,
            strategy: SelectionStrategy::BalancedTopK,
            seed: 0x00d0_7a00,
            layer_retentions: None,
        }
    }

    /// Sets the dimension-reduction factor σ.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not in `(0, 1]`.
    pub fn with_sigma(mut self, sigma: f64) -> Self {
        assert!(
            sigma > 0.0 && sigma <= 1.0,
            "sigma {sigma} must be in (0, 1]"
        );
        self.sigma = sigma;
        self
    }

    /// Sets the detection precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the estimation-loss weight λ.
    pub fn with_lambda(mut self, lambda: f32) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the selection strategy.
    pub fn with_strategy(mut self, strategy: SelectionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the projection seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a per-layer retention schedule.
    ///
    /// # Panics
    ///
    /// Panics if any entry is outside `(0, 1]`.
    pub fn with_layer_retentions(mut self, retentions: LayerRetentions) -> Self {
        assert!(
            retentions.iter().all(|&r| r > 0.0 && r <= 1.0),
            "layer retentions must be in (0, 1]"
        );
        self.layer_retentions = Some(retentions);
        self
    }

    /// Retention of layer `l` (the schedule entry, else the base value).
    pub fn retention_for_layer(&self, layer: usize) -> f64 {
        self.layer_retentions
            .as_ref()
            .and_then(|rs| rs.get(layer).copied())
            .unwrap_or(self.retention)
    }

    /// Keys kept per query row at layer `l` for sequence length `n`.
    pub fn keys_per_row_for_layer(&self, layer: usize, n: usize) -> usize {
        ((self.retention_for_layer(layer) * n as f64).round() as usize).clamp(1, n)
    }

    /// Detector rank for a head dimension: `max(1, floor(hd · σ))`.
    pub fn rank_for_head_dim(&self, head_dim: usize) -> usize {
        ((head_dim as f64 * self.sigma).floor() as usize).max(1)
    }

    /// Keys kept per query row at sequence length `n`:
    /// `max(1, round(retention · n))`.
    pub fn keys_per_row(&self, n: usize) -> usize {
        ((self.retention * n as f64).round() as usize).clamp(1, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = DetectorConfig::new(0.1);
        assert_eq!(cfg.sigma, 0.2);
        assert_eq!(cfg.precision, Precision::Int4);
        assert_eq!(cfg.strategy, SelectionStrategy::BalancedTopK);
    }

    #[test]
    fn rank_matches_paper_example() {
        // §5.5: "the hidden dimension in approximation is floor(64*0.2)=12".
        let cfg = DetectorConfig::new(0.1).with_sigma(0.2);
        assert_eq!(cfg.rank_for_head_dim(64), 12);
        // Rank never collapses to zero.
        assert_eq!(cfg.with_sigma(0.01).rank_for_head_dim(4), 1);
    }

    #[test]
    fn keys_per_row_rounds_and_clamps() {
        let cfg = DetectorConfig::new(0.1);
        assert_eq!(cfg.keys_per_row(100), 10);
        assert_eq!(cfg.keys_per_row(5), 1);
        assert_eq!(DetectorConfig::new(1.0).keys_per_row(7), 7);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn rejects_zero_retention() {
        let _ = DetectorConfig::new(0.0);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn rejects_bad_sigma() {
        let _ = DetectorConfig::new(0.1).with_sigma(0.0);
    }

    #[test]
    fn layer_retention_schedule() {
        let cfg = DetectorConfig::new(0.2).with_layer_retentions(vec![0.5, 0.1]);
        assert_eq!(cfg.retention_for_layer(0), 0.5);
        assert_eq!(cfg.retention_for_layer(1), 0.1);
        // Beyond the schedule: base retention.
        assert_eq!(cfg.retention_for_layer(5), 0.2);
        assert_eq!(cfg.keys_per_row_for_layer(0, 20), 10);
        assert_eq!(cfg.keys_per_row_for_layer(1, 20), 2);
    }

    #[test]
    #[should_panic(expected = "layer retentions")]
    fn rejects_bad_layer_schedule() {
        let _ = DetectorConfig::new(0.2).with_layer_retentions(vec![0.5, 0.0]);
    }

    #[test]
    fn builder_chains() {
        let cfg = DetectorConfig::new(0.05)
            .with_precision(Precision::Int2)
            .with_lambda(0.5)
            .with_strategy(SelectionStrategy::GlobalThreshold)
            .with_seed(99);
        assert_eq!(cfg.precision, Precision::Int2);
        assert_eq!(cfg.lambda, 0.5);
        assert_eq!(cfg.strategy, SelectionStrategy::GlobalThreshold);
        assert_eq!(cfg.seed, 99);
    }
}
