//! ELSA baseline: sign-random-projection attention approximation.
//!
//! ELSA (Ham et al., ISCA 2021 — paper §6.2) estimates the angle between a
//! query and a key from the Hamming distance of their *sign random
//! projections*: `h(x) = sign(x R)` for a fixed Gaussian/sign matrix `R`.
//! With `b` hash bits, `angle(q, k) ≈ π · hamming(h(q), h(k)) / b`, so the
//! approximate attention score is `‖k‖ · cos(θ̂)` (the query norm is
//! constant within a row and does not affect ranking).
//!
//! Unlike DOTA's detector, this approximation (a) operates on the *exact*
//! Q/K — so the projections `X W_Q`, `X W_K` cannot be skipped — and (b) is
//! training-free, so the model cannot adapt to its errors. Both limitations
//! are what the paper's comparison quantifies.

use dota_autograd::ParamSet;
use dota_tensor::rng::SeededRng;
use dota_tensor::{topk, Matrix};
use dota_transformer::{InferenceHook, Model, TransformerParams};

/// Sign-random-projection hasher for one head dimension.
#[derive(Debug, Clone)]
pub struct SignHasher {
    r: Matrix,
}

impl SignHasher {
    /// Creates a hasher projecting `dim`-dimensional vectors to `bits` sign
    /// bits.
    pub fn new(dim: usize, bits: usize, seed: u64) -> Self {
        let mut rng = SeededRng::new(seed);
        Self {
            r: rng.normal_matrix(dim, bits, 1.0),
        }
    }

    /// Number of hash bits.
    pub fn bits(&self) -> usize {
        self.r.cols()
    }

    /// Hashes every row of `x` to a sign bit vector.
    pub fn hash_rows(&self, x: &Matrix) -> Vec<Vec<bool>> {
        let proj = x.matmul(&self.r).expect("hash projection shape");
        proj.rows_iter()
            .map(|row| row.iter().map(|&v| v >= 0.0).collect())
            .collect()
    }

    /// Estimated cosine of the angle between two hashed vectors.
    pub fn cos_estimate(a: &[bool], b: &[bool]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let ham = a.iter().zip(b).filter(|(x, y)| x != y).count();
        let theta = std::f32::consts::PI * ham as f32 / a.len() as f32;
        theta.cos()
    }
}

/// ELSA-style approximate score matrix for one head: entry `(i, j)` is
/// `‖k_j‖ · cos(θ̂(q_i, k_j))`.
pub fn elsa_scores(hasher: &SignHasher, q: &Matrix, k: &Matrix) -> Matrix {
    let qh = hasher.hash_rows(q);
    let kh = hasher.hash_rows(k);
    let k_norms: Vec<f32> = (0..k.rows())
        .map(|j| k.row(j).iter().map(|v| v * v).sum::<f32>().sqrt())
        .collect();
    Matrix::from_fn(q.rows(), k.rows(), |i, j| {
        k_norms[j] * SignHasher::cos_estimate(&qh[i], &kh[j])
    })
}

/// ELSA as an [`InferenceHook`]: computes each head's Q/K from the layer
/// input using the model's own projection weights (the cost ELSA cannot
/// avoid), hashes them, and keeps the top-k per row.
#[derive(Debug)]
pub struct ElsaHook {
    wq: Vec<Matrix>,
    wk: Vec<Matrix>,
    n_heads: usize,
    head_dim: usize,
    hasher: SignHasher,
    retention: f64,
}

impl ElsaHook {
    /// Builds the hook from a model's current weights.
    ///
    /// `bits` is the hash length (ELSA's accuracy knob); `retention` the
    /// kept fraction per row.
    ///
    /// # Panics
    ///
    /// Panics if `retention` is not in `(0, 1]`.
    pub fn from_model(
        model: &Model,
        params: &ParamSet,
        bits: usize,
        retention: f64,
        seed: u64,
    ) -> Self {
        assert!(
            retention > 0.0 && retention <= 1.0,
            "retention {retention} must be in (0, 1]"
        );
        let tp: &TransformerParams = model.params();
        let wq = tp
            .layers
            .iter()
            .map(|l| params.value(l.wq).clone())
            .collect();
        let wk = tp
            .layers
            .iter()
            .map(|l| params.value(l.wk).clone())
            .collect();
        Self {
            wq,
            wk,
            n_heads: model.config().n_heads,
            head_dim: model.config().head_dim(),
            hasher: SignHasher::new(model.config().head_dim(), bits, seed),
            retention,
        }
    }

    /// Keys kept per row for sequence length `n`.
    pub fn keys_per_row(&self, n: usize) -> usize {
        ((self.retention * n as f64).round() as usize).clamp(1, n)
    }
}

impl InferenceHook for ElsaHook {
    fn select(&self, layer: usize, head: usize, x: &Matrix) -> Option<Vec<Vec<u32>>> {
        assert!(head < self.n_heads, "head index out of range");
        let q = x.matmul(&self.wq[layer]).expect("shape");
        let k = x.matmul(&self.wk[layer]).expect("shape");
        let (c0, c1) = (head * self.head_dim, (head + 1) * self.head_dim);
        let qh = q.slice_cols(c0, c1);
        let kh = k.slice_cols(c0, c1);
        let scores = elsa_scores(&self.hasher, &qh, &kh);
        let kpr = self.keys_per_row(x.rows());
        Some(
            topk::top_k_rows(&scores, kpr)
                .into_iter()
                .map(|row| row.into_iter().map(|i| i as u32).collect())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dota_transformer::TransformerConfig;

    #[test]
    fn cos_estimate_extremes() {
        let a = vec![true, true, false, false];
        assert!((SignHasher::cos_estimate(&a, &a) - 1.0).abs() < 1e-6);
        let b: Vec<bool> = a.iter().map(|x| !x).collect();
        assert!((SignHasher::cos_estimate(&a, &b) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn hash_is_deterministic() {
        let h = SignHasher::new(8, 32, 1);
        let mut rng = SeededRng::new(2);
        let x = rng.normal_matrix(4, 8, 1.0);
        assert_eq!(h.hash_rows(&x), h.hash_rows(&x));
    }

    #[test]
    fn angle_estimate_improves_with_bits() {
        let mut rng = SeededRng::new(3);
        let dim = 16;
        let q = rng.normal_matrix(20, dim, 1.0);
        let k = rng.normal_matrix(20, dim, 1.0);
        let exact = q.matmul_nt(&k).unwrap();
        let sel_exact = topk::top_k_rows(&exact, 5);
        let recall_with = |bits: usize| {
            let hasher = SignHasher::new(dim, bits, 7);
            let approx = elsa_scores(&hasher, &q, &k);
            topk::selection_recall(&sel_exact, &topk::top_k_rows(&approx, 5))
        };
        let r8 = recall_with(8);
        let r128 = recall_with(128);
        assert!(r128 > r8, "bits 128 ({r128}) should beat 8 ({r8})");
        assert!(r128 > 0.6, "128-bit recall {r128}");
    }

    #[test]
    fn hook_produces_balanced_selection() {
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny(16, 8, 2), &mut params, 1);
        let hook = ElsaHook::from_model(&model, &params, 64, 0.25, 5);
        let trace = model.infer(&params, &[1, 2, 3, 4, 5, 6, 7, 0], &hook);
        assert!((trace.retention() - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn rejects_bad_retention() {
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny(16, 8, 2), &mut params, 1);
        let _ = ElsaHook::from_model(&model, &params, 64, 0.0, 5);
    }
}
