//! SpAtten baseline: cascade token pruning (paper §6.2).
//!
//! SpAtten (Wang et al., HPCA 2021) prunes *whole tokens* (rows **and**
//! columns of the attention matrix) cumulatively across layers, based on
//! each token's accumulated attention received. The paper's criticism:
//! token-granular, structured sparsity "is not flexible enough to capture
//! the irregularly distributed attention connections" — a token that is
//! unimportant to most queries but critical to one gets removed.
//!
//! This module implements the cascade mechanism as an
//! [`InferenceHook`]-compatible selector so the Fig. 11-style accuracy
//! comparison can include it: at layer `l`, only the tokens that survived
//! layers `0..l` participate, and the survivor set shrinks by the
//! configured schedule.

use dota_autograd::ParamSet;
use dota_tensor::{ops, topk, Matrix};
use dota_transformer::{InferenceHook, Model, TransformerParams};
use std::sync::Mutex;

/// Cascade token pruning configured like SpAtten.
#[derive(Debug)]
pub struct SpattenHook {
    wq: Vec<Matrix>,
    wk: Vec<Matrix>,
    n_heads: usize,
    n_layers: usize,
    head_dim: usize,
    /// Fraction of tokens surviving after the final layer.
    final_keep: f64,
    /// Cache of the survivor set per sequence (keyed by the layer-0 input's
    /// fingerprint), since `select` is called per (layer, head). A mutex —
    /// not a `RefCell` — because the parallel per-head fan-out calls
    /// `select` from worker threads.
    state: Mutex<CascadeState>,
}

#[derive(Debug, Default)]
struct CascadeState {
    fingerprint: u64,
    survivors_per_layer: Vec<Vec<u32>>,
}

impl SpattenHook {
    /// Builds the hook from a model's weights. `final_keep` is the fraction
    /// of tokens still attended in the last layer (pruning interpolates
    /// linearly from 100% at layer 0).
    ///
    /// # Panics
    ///
    /// Panics if `final_keep` is not in `(0, 1]`.
    pub fn from_model(model: &Model, params: &ParamSet, final_keep: f64) -> Self {
        assert!(
            final_keep > 0.0 && final_keep <= 1.0,
            "final_keep {final_keep} must be in (0, 1]"
        );
        let tp: &TransformerParams = model.params();
        Self {
            wq: tp
                .layers
                .iter()
                .map(|l| params.value(l.wq).clone())
                .collect(),
            wk: tp
                .layers
                .iter()
                .map(|l| params.value(l.wk).clone())
                .collect(),
            n_heads: model.config().n_heads,
            n_layers: model.config().n_layers,
            head_dim: model.config().head_dim(),
            final_keep,
            state: Mutex::new(CascadeState::default()),
        }
    }

    /// Tokens kept at layer `l` for a sequence of length `n` (linear
    /// schedule from `n` at layer 0 down to `final_keep·n` at the last
    /// layer).
    pub fn keep_at_layer(&self, layer: usize, n: usize) -> usize {
        if self.n_layers <= 1 {
            return ((self.final_keep * n as f64).round() as usize).clamp(1, n);
        }
        let frac = 1.0 - (1.0 - self.final_keep) * (layer as f64 / (self.n_layers - 1) as f64);
        ((frac * n as f64).round() as usize).clamp(1, n)
    }

    /// Computes the cascade for one sequence: at each layer, rank tokens by
    /// total attention probability received (summed over heads and
    /// queries), keep the top `keep_at_layer`, and carry the survivor set
    /// forward. Uses the layer-0 input as a proxy for all layers' inputs
    /// (SpAtten's ranking is also computed from live attention).
    fn cascade(&self, x: &Matrix) -> Vec<Vec<u32>> {
        let n = x.rows();
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut survivors: Vec<u32> = (0..n as u32).collect();
        let mut per_layer = Vec::with_capacity(self.n_layers);
        for l in 0..self.n_layers {
            let keep = self.keep_at_layer(l, n).min(survivors.len());
            if keep < survivors.len() {
                // Importance = attention received, accumulated over heads,
                // restricted to current survivors.
                let mut importance = vec![0.0f32; survivors.len()];
                let q = x.matmul(&self.wq[l]).expect("shape");
                let k = x.matmul(&self.wk[l]).expect("shape");
                for h in 0..self.n_heads {
                    let (c0, c1) = (h * self.head_dim, (h + 1) * self.head_dim);
                    let qh = q.slice_cols(c0, c1);
                    let kh = k.slice_cols(c0, c1);
                    for &qi in &survivors {
                        let mut row: Vec<f32> = survivors
                            .iter()
                            .map(|&kj| {
                                Matrix::dot(qh.row(qi as usize), kh.row(kj as usize)) * scale
                            })
                            .collect();
                        ops::softmax_slice(&mut row);
                        for (slot, &p) in row.iter().enumerate() {
                            importance[slot] += p;
                        }
                    }
                }
                let top = topk::top_k_indices(&importance, keep);
                let mut next: Vec<u32> = top.into_iter().map(|i| survivors[i]).collect();
                next.sort_unstable();
                survivors = next;
            }
            per_layer.push(survivors.clone());
        }
        per_layer
    }

    fn fingerprint(x: &Matrix) -> u64 {
        // Cheap content hash of the layer input to detect a new sequence.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &v in x.as_slice().iter().step_by(17) {
            h = (h ^ v.to_bits() as u64).wrapping_mul(0x1000_0000_01b3);
        }
        h ^ (x.rows() as u64)
    }
}

impl InferenceHook for SpattenHook {
    fn select(&self, layer: usize, _head: usize, x: &Matrix) -> Option<Vec<Vec<u32>>> {
        // The hook receives each layer's own input; the cascade must be
        // computed once per sequence from the first layer's input. The
        // fingerprint check makes the computation idempotent, so the heads
        // of layer 0 may call in (and race to populate) any order.
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if layer == 0 {
            let fp = Self::fingerprint(x);
            if state.fingerprint != fp || state.survivors_per_layer.is_empty() {
                state.fingerprint = fp;
                state.survivors_per_layer = self.cascade(x);
            }
        }
        let survivors = state
            .survivors_per_layer
            .get(layer)
            .cloned()
            .unwrap_or_else(|| (0..x.rows() as u32).collect());
        // Structured sparsity: every query row attends exactly to the
        // survivor columns (pruned rows still produce output from the
        // survivors — SpAtten removes them from subsequent layers entirely;
        // keeping the rows is the closest mask-compatible rendering).
        Some(vec![survivors; x.rows()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dota_transformer::TransformerConfig;

    fn model() -> (Model, ParamSet) {
        let mut params = ParamSet::new();
        let m = Model::init(TransformerConfig::tiny(16, 12, 2), &mut params, 41);
        (m, params)
    }

    #[test]
    fn schedule_interpolates() {
        let (m, params) = model();
        let hook = SpattenHook::from_model(&m, &params, 0.5);
        assert_eq!(hook.keep_at_layer(0, 16), 16);
        assert_eq!(hook.keep_at_layer(1, 16), 8);
    }

    #[test]
    fn cascade_is_nested() {
        let (m, params) = model();
        let hook = SpattenHook::from_model(&m, &params, 0.25);
        let ids = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let xs = dota_detector_layer_inputs(&m, &params, &ids);
        let per_layer = hook.cascade(&xs[0]);
        assert_eq!(per_layer.len(), 2);
        // Later survivor sets are subsets of earlier ones.
        let l1: std::collections::HashSet<u32> = per_layer[1].iter().copied().collect();
        let l0: std::collections::HashSet<u32> = per_layer[0].iter().copied().collect();
        assert!(l1.is_subset(&l0));
        assert_eq!(per_layer[1].len(), 2); // 25% of 8
    }

    fn dota_detector_layer_inputs(m: &Model, params: &ParamSet, ids: &[usize]) -> Vec<Matrix> {
        crate::metrics::layer_inputs(m, params, ids)
    }

    #[test]
    fn hook_reduces_retention_structurally() {
        let (m, params) = model();
        let hook = SpattenHook::from_model(&m, &params, 0.25);
        let ids = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let trace = m.infer(&params, &ids, &hook);
        assert!(trace.retention() < 1.0);
        // Structured: within a layer/head, every query selects the SAME
        // column set.
        let head = &trace.layers[1].heads[0];
        let sel = head.selected.as_ref().unwrap();
        for row in sel.iter().skip(1) {
            assert_eq!(row, &sel[0], "SpAtten masks must be column-structured");
        }
    }

    #[test]
    fn full_keep_is_dense_equivalent() {
        let (m, params) = model();
        let hook = SpattenHook::from_model(&m, &params, 1.0);
        let ids = vec![1, 2, 3, 4, 5];
        let dense = m.infer(&params, &ids, &dota_transformer::NoHook);
        let pruned = m.infer(&params, &ids, &hook);
        assert!(dense.logits.approx_eq(&pruned.logits, 1e-5));
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn rejects_bad_keep() {
        let (m, params) = model();
        let _ = SpattenHook::from_model(&m, &params, 0.0);
    }
}
