use crate::{DetectorConfig, LowRankDetector};
use dota_autograd::{Graph, ParamSet, Var};
use dota_tensor::{topk, Matrix};
use dota_transformer::{AttentionHook, HookOutcome, InferenceHook, TransformerConfig};

/// The DOTA detector bank: one [`LowRankDetector`] per attention head of a
/// model, plus the joint-training and inference hook adapters.
///
/// # Example
///
/// ```
/// use dota_autograd::ParamSet;
/// use dota_detector::{DetectorConfig, DotaHook};
/// use dota_transformer::{Model, TransformerConfig};
///
/// let mut params = ParamSet::new();
/// let model = Model::init(TransformerConfig::tiny(16, 8, 2), &mut params, 1);
/// let hook = DotaHook::init(DetectorConfig::new(0.25), model.config(), &mut params);
/// let trace = model.infer(&params, &[1, 2, 3, 4], &hook.inference(&params));
/// assert!(trace.retention() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct DotaHook {
    cfg: DetectorConfig,
    detectors: Vec<Vec<LowRankDetector>>,
    masking_enabled: bool,
}

impl DotaHook {
    /// Initializes one detector per `(layer, head)` of `model_cfg`,
    /// registering all trainable low-rank parameters in `params`.
    pub fn init(cfg: DetectorConfig, model_cfg: &TransformerConfig, params: &mut ParamSet) -> Self {
        let hd = model_cfg.head_dim();
        let detectors = (0..model_cfg.n_layers)
            .map(|l| {
                (0..model_cfg.n_heads)
                    .map(|h| {
                        LowRankDetector::init(
                            &cfg,
                            model_cfg.d_model,
                            hd,
                            params,
                            &format!("l{l}.h{h}"),
                            cfg.seed
                                .wrapping_add(l as u64 * 1009)
                                .wrapping_add(h as u64 * 9176),
                        )
                    })
                    .collect()
            })
            .collect();
        Self {
            cfg,
            detectors,
            masking_enabled: true,
        }
    }

    /// The detector configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Returns this hook with a different runtime configuration (precision,
    /// retention, strategy) but the same trained detectors. Used by the
    /// design-space exploration to re-evaluate one trained detector bank at
    /// several inference settings.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.sigma` differs from the training configuration — the
    /// detector rank is fixed at initialization.
    pub fn with_config(mut self, cfg: DetectorConfig) -> Self {
        assert_eq!(
            cfg.sigma, self.cfg.sigma,
            "sigma is fixed at init (detector rank would change)"
        );
        self.cfg = cfg;
        self
    }

    /// The detector for `(layer, head)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn detector(&self, layer: usize, head: usize) -> &LowRankDetector {
        &self.detectors[layer][head]
    }

    /// Enables/disables mask application during training. With masking off
    /// the hook still contributes `L_MSE`, which is useful as a warm-up
    /// phase before sparse adaptation.
    pub fn set_masking(&mut self, enabled: bool) {
        self.masking_enabled = enabled;
    }

    /// Binds the hook to the current parameter values for one training
    /// forward pass.
    pub fn training<'a>(&'a self, params: &'a ParamSet) -> DotaTrainingHook<'a> {
        DotaTrainingHook { hook: self, params }
    }

    /// Binds the hook for quantized inference (the deployed detector).
    pub fn inference<'a>(&'a self, params: &'a ParamSet) -> DotaInferenceHook<'a> {
        DotaInferenceHook {
            hook: self,
            params,
            quantized: true,
        }
    }

    /// Binds the hook for FP32 inference (Fig. 14b's FP32 reference point).
    pub fn inference_f32<'a>(&'a self, params: &'a ParamSet) -> DotaInferenceHook<'a> {
        DotaInferenceHook {
            hook: self,
            params,
            quantized: false,
        }
    }

    /// Converts a per-row index selection into a boolean mask.
    fn selection_to_mask(selection: &[Vec<u32>], n: usize) -> Vec<Vec<bool>> {
        selection
            .iter()
            .map(|row| {
                let mut mask = vec![false; n];
                for &j in row {
                    mask[j as usize] = true;
                }
                mask
            })
            .collect()
    }
}

/// [`DotaHook`] bound to parameter values for a training step; implements
/// the joint-optimization [`AttentionHook`] (paper §3.2): contributes the
/// `L_MSE` estimation loss on every head and imposes the detected sparse
/// mask so the model adapts to omission during fine-tuning.
#[derive(Debug)]
pub struct DotaTrainingHook<'a> {
    hook: &'a DotaHook,
    params: &'a ParamSet,
}

impl AttentionHook for DotaTrainingHook<'_> {
    fn on_scores(
        &mut self,
        g: &mut Graph,
        layer: usize,
        head: usize,
        x: Var,
        scores: Var,
    ) -> HookOutcome {
        let det = self.hook.detector(layer, head);
        let s_tilde = det.estimated_scores(g, self.params, x);
        // Eq. 5: gradients flow into BOTH S and S̃ — the tape handles it.
        let aux = g.mse(scores, s_tilde);
        let mask = if self.hook.masking_enabled {
            let n = g.value(scores).rows();
            let selection =
                LowRankDetector::select_for_layer(&self.hook.cfg, g.value(s_tilde), Some(layer));
            Some(DotaHook::selection_to_mask(&selection, n))
        } else {
            None
        };
        HookOutcome {
            mask,
            aux_loss: Some(aux),
        }
    }
}

/// [`DotaHook`] bound for inference; implements [`InferenceHook`] using the
/// quantized low-rank estimator, as the deployed accelerator would.
#[derive(Debug)]
pub struct DotaInferenceHook<'a> {
    hook: &'a DotaHook,
    params: &'a ParamSet,
    quantized: bool,
}

impl DotaInferenceHook<'_> {
    /// The estimated scores this hook would rank for `(layer, head)` —
    /// exposed for detection-quality analysis.
    pub fn estimated_scores(&self, layer: usize, head: usize, x: &Matrix) -> Matrix {
        let det = self.hook.detector(layer, head);
        if self.quantized {
            det.estimated_scores_quantized(&self.hook.cfg, self.params, x)
        } else {
            det.estimated_scores_f32(self.params, x)
        }
    }
}

impl InferenceHook for DotaInferenceHook<'_> {
    fn select(&self, layer: usize, head: usize, x: &Matrix) -> Option<Vec<Vec<u32>>> {
        let _prof = dota_prof::span("detector.select");
        if dota_faults::enabled() {
            let coords = [layer as u64, head as u64];
            let n = x.rows();
            if dota_faults::should_inject(dota_faults::FaultSite::DetectorSaturate, &coords) {
                // Saturated threshold comparator: nothing passes detection.
                // The transformer treats the empty selection as degenerate
                // and falls back to dense attention for this head.
                dota_faults::record("faults.detector.saturated", 1);
                dota_trace::count("faults.detector.saturated", 1);
                return Some(vec![Vec::new(); n]);
            }
            if dota_faults::should_inject(dota_faults::FaultSite::DetectorCorrupt, &coords) {
                // Corrupted score path: the emitted key IDs are garbage
                // (high bit stuck), i.e. out of range — again absorbed by
                // the transformer's dense fallback.
                dota_faults::record("faults.detector.corrupted", 1);
                dota_trace::count("faults.detector.corrupted", 1);
                let bad = (0..n).map(|i| vec![(i + n) as u32]).collect();
                return Some(bad);
            }
        }
        let scores = self.estimated_scores(layer, head, x);
        let sel = LowRankDetector::select_for_layer(&self.hook.cfg, &scores, Some(layer));
        if dota_metrics::hist_enabled() {
            dota_metrics::observe_many(
                &format!("detector.scores.L{layer}.H{head}"),
                scores.as_slice().iter().map(|&s| f64::from(s)),
            );
        }
        if dota_trace::enabled() {
            let n = x.rows() as u64;
            dota_trace::count("detector.selections", 1);
            dota_trace::count("detector.scored_pairs", n * n);
            dota_trace::count(
                "detector.detected_pairs",
                sel.iter().map(|r| r.len() as u64).sum(),
            );
        }
        Some(sel)
    }
}

/// Oracle-quality reference selection for metrics: row-wise top-k on the
/// *exact* scores of a head trace (used to score detector recall).
pub fn oracle_selection(q: &Matrix, k_mat: &Matrix, keys_per_row: usize) -> Vec<Vec<usize>> {
    let scores = q.matmul_nt(k_mat).expect("head shapes");
    topk::top_k_rows(&scores, keys_per_row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dota_transformer::Model;

    fn setup() -> (Model, DotaHook, ParamSet) {
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny(16, 8, 2), &mut params, 11);
        let hook = DotaHook::init(DetectorConfig::new(0.25), model.config(), &mut params);
        (model, hook, params)
    }

    #[test]
    fn init_creates_detector_per_head() {
        let (model, hook, _) = setup();
        assert_eq!(hook.detectors.len(), model.config().n_layers);
        assert_eq!(hook.detectors[0].len(), model.config().n_heads);
        // Distinct seeds → distinct projections.
        assert_ne!(
            hook.detector(0, 0).projection(),
            hook.detector(0, 1).projection()
        );
    }

    #[test]
    fn training_hook_contributes_masks_and_losses() {
        let (model, hook, params) = setup();
        let mut g = Graph::new();
        let bound = &mut hook.training(&params);
        let out = model.forward(&mut g, &params, &[1, 2, 3, 4, 5, 6], bound);
        assert_eq!(out.aux_losses.len(), 4); // 2 layers x 2 heads
        for &aux in &out.aux_losses {
            assert!(g.value(aux)[(0, 0)] >= 0.0);
        }
    }

    #[test]
    fn masking_disabled_still_produces_losses() {
        let (model, mut hook, params) = setup();
        hook.set_masking(false);
        let mut g = Graph::new();
        let out = model.forward(&mut g, &params, &[1, 2, 3, 4], &mut hook.training(&params));
        assert_eq!(out.aux_losses.len(), 4);
        // Dense attention: inference with NoHook must agree with this
        // forward's logits.
        let trace = model.infer(&params, &[1, 2, 3, 4], &dota_transformer::NoHook);
        assert!(trace.logits.approx_eq(g.value(out.logits), 1e-4));
    }

    #[test]
    fn inference_hook_hits_configured_retention() {
        let (model, hook, params) = setup();
        let ids = vec![1, 2, 3, 4, 5, 6, 7, 0];
        let trace = model.infer(&params, &ids, &hook.inference(&params));
        // Balanced top-k with retention 0.25 on n=8 keeps 2 keys per row.
        assert!((trace.retention() - 0.25).abs() < 1e-9);
        for layer in &trace.layers {
            for head in &layer.heads {
                let sel = head.selected.as_ref().unwrap();
                assert!(sel.iter().all(|r| r.len() == 2));
            }
        }
    }

    #[test]
    fn joint_training_keeps_model_trainable() {
        use dota_autograd::{Adam, Optimizer};
        let (model, hook, mut params) = setup();
        let data = [(vec![1usize, 1, 2, 2], 0usize), (vec![2, 2, 1, 1], 1)];
        let mut opt = Adam::new(0.01);
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..40 {
            let mut total = 0.0;
            for (ids, label) in &data {
                let mut g = Graph::new();
                let out = model.forward(&mut g, &params, ids, &mut hook.training(&params));
                let ml = model.classification_loss(&mut g, &out, *label);
                let loss = model.total_loss(&mut g, ml, &out, hook.config().lambda);
                total += g.value(loss)[(0, 0)];
                g.backward(loss);
                opt.step(&mut params, &g);
            }
            if epoch == 0 {
                first = total;
            }
            last = total;
        }
        assert!(last < first, "joint loss {first} -> {last}");
        // The detector parameters actually moved.
        let det = hook.detector(0, 0);
        let w = params.value(det.wq_tilde());
        let mut fresh = ParamSet::new();
        let fresh_model = Model::init(TransformerConfig::tiny(16, 8, 2), &mut fresh, 11);
        let _ = fresh_model;
        let fresh_hook = DotaHook::init(DetectorConfig::new(0.25), model.config(), &mut fresh);
        let w0 = fresh.value(fresh_hook.detector(0, 0).wq_tilde());
        assert_ne!(w, w0, "detector weights unchanged by training");
    }

    #[test]
    fn saturated_detector_triggers_dense_fallback() {
        use dota_faults::{FaultPlan, FaultSite};
        let (model, hook, params) = setup();
        let ids = vec![1, 2, 3, 4, 5, 6, 7, 0];
        let dense = model.infer(&params, &ids, &dota_transformer::NoHook);
        let guard =
            dota_faults::session(FaultPlan::new(1).with_rate(FaultSite::DetectorSaturate, 1.0));
        let trace = model.infer(&params, &ids, &hook.inference(&params));
        // Every head's selection saturated to empty -> dense fallback.
        assert_eq!(trace.fallback_dense, 4);
        assert_eq!(trace.retention(), 1.0);
        assert_eq!(trace.logits, dense.logits);
        assert_eq!(guard.counter("faults.detector.saturated"), 4);
        assert_eq!(guard.counter("faults.fallback_dense"), 4);
    }

    #[test]
    fn corrupted_detector_triggers_dense_fallback() {
        use dota_faults::{FaultPlan, FaultSite};
        let (model, hook, params) = setup();
        let ids = vec![1, 2, 3, 4, 5, 6, 7, 0];
        let dense = model.infer(&params, &ids, &dota_transformer::NoHook);
        let guard =
            dota_faults::session(FaultPlan::new(1).with_rate(FaultSite::DetectorCorrupt, 1.0));
        let trace = model.infer(&params, &ids, &hook.inference(&params));
        assert_eq!(trace.fallback_dense, 4);
        assert_eq!(trace.logits, dense.logits);
        assert_eq!(guard.counter("faults.detector.corrupted"), 4);
        drop(guard);
        // Session over: the hook selects normally again.
        let trace = model.infer(&params, &ids, &hook.inference(&params));
        assert_eq!(trace.fallback_dense, 0);
        assert!((trace.retention() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn oracle_selection_shape() {
        let mut rng = dota_tensor::rng::SeededRng::new(1);
        let q = rng.normal_matrix(6, 8, 1.0);
        let k = rng.normal_matrix(6, 8, 1.0);
        let sel = oracle_selection(&q, &k, 3);
        assert_eq!(sel.len(), 6);
        assert!(sel.iter().all(|r| r.len() == 3));
    }
}
