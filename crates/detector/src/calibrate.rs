//! Threshold calibration for the hardware Detector (paper §3.1, §4.3).
//!
//! The deployed Detector does not sort: it compares each estimated score
//! against a *preset threshold* register and emits a bitmask. The paper
//! obtains those thresholds "by top-k searching or tuning from the
//! validation set". This module implements that calibration: given a
//! trained detector bank and validation sequences, it finds one threshold
//! per `(layer, head)` whose keep-rate matches the target retention, and
//! provides an [`InferenceHook`] that selects by threshold exactly as the
//! comparator hardware would.
//!
//! Unlike row-wise top-k, thresholding yields *variable* per-row counts —
//! the workload-imbalance trade-off §4.3 discusses. The calibrated hook
//! optionally caps each row at `max_per_row` to bound the imbalance.

use crate::{DetectorConfig, DotaHook};
use dota_autograd::ParamSet;
use dota_tensor::Matrix;
use dota_transformer::{InferenceHook, Model};

/// Per-(layer, head) calibrated thresholds.
#[derive(Debug, Clone)]
pub struct ThresholdTable {
    thresholds: Vec<Vec<f32>>,
    retention_target: f64,
}

impl ThresholdTable {
    /// The calibrated threshold of `(layer, head)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn threshold(&self, layer: usize, head: usize) -> f32 {
        self.thresholds[layer][head]
    }

    /// The retention the table was calibrated for.
    pub fn retention_target(&self) -> f64 {
        self.retention_target
    }

    /// Number of layers covered.
    pub fn layers(&self) -> usize {
        self.thresholds.len()
    }
}

/// Calibrates thresholds for `hook`'s detectors so that, on the provided
/// validation sequences, each head keeps `retention` of its estimated
/// scores.
///
/// The threshold is the `(1 - retention)` quantile of the head's estimated
/// scores pooled over all validation sequences — the direct analogue of
/// tuning the comparator register on a validation set.
///
/// # Panics
///
/// Panics if `validation` is empty or a sequence is invalid for the model.
pub fn calibrate_thresholds(
    model: &Model,
    params: &ParamSet,
    hook: &DotaHook,
    validation: &[Vec<usize>],
    retention: f64,
) -> ThresholdTable {
    assert!(
        !validation.is_empty(),
        "need at least one validation sequence"
    );
    assert!(
        retention > 0.0 && retention <= 1.0,
        "retention {retention} out of range"
    );
    let cfg = model.config();
    let inference = hook.inference(params);
    let mut thresholds = vec![vec![f32::NEG_INFINITY; cfg.n_heads]; cfg.n_layers];

    for l in 0..cfg.n_layers {
        for h in 0..cfg.n_heads {
            let mut pooled: Vec<f32> = Vec::new();
            for ids in validation {
                let xs = crate::metrics::layer_inputs(model, params, ids);
                let scores = inference.estimated_scores(l, h, &xs[l]);
                pooled.extend(scores.iter().copied());
            }
            pooled.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
            let keep = ((retention * pooled.len() as f64).round() as usize).clamp(1, pooled.len());
            thresholds[l][h] = pooled[keep - 1];
        }
    }
    ThresholdTable {
        thresholds,
        retention_target: retention,
    }
}

/// An [`InferenceHook`] that selects by comparing estimated scores against
/// calibrated thresholds — the comparator datapath of Fig. 6.
#[derive(Debug)]
pub struct ThresholdHook<'a> {
    hook: &'a DotaHook,
    params: &'a ParamSet,
    table: ThresholdTable,
    max_per_row: Option<usize>,
}

impl<'a> ThresholdHook<'a> {
    /// Creates the hook from a detector bank and its calibrated table.
    pub fn new(hook: &'a DotaHook, params: &'a ParamSet, table: ThresholdTable) -> Self {
        Self {
            hook,
            params,
            table,
            max_per_row: None,
        }
    }

    /// Caps each query row at `cap` selected keys (strongest first) to
    /// bound workload imbalance.
    pub fn with_row_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "row cap must be positive");
        self.max_per_row = Some(cap);
        self
    }

    /// The calibration table.
    pub fn table(&self) -> &ThresholdTable {
        &self.table
    }

    fn cfg(&self) -> &DetectorConfig {
        self.hook.config()
    }
}

impl InferenceHook for ThresholdHook<'_> {
    fn select(&self, layer: usize, head: usize, x: &Matrix) -> Option<Vec<Vec<u32>>> {
        let scores = self
            .hook
            .inference(self.params)
            .estimated_scores(layer, head, x);
        let _ = self.cfg();
        let thresh = self.table.threshold(layer, head);
        let n = scores.cols();
        Some(
            (0..scores.rows())
                .map(|r| {
                    let row = scores.row(r);
                    let mut keep: Vec<(f32, u32)> = row
                        .iter()
                        .enumerate()
                        .filter(|(_, &v)| v >= thresh)
                        .map(|(j, &v)| (v, j as u32))
                        .collect();
                    if keep.is_empty() {
                        // A starved row keeps its single strongest key so
                        // its output stays defined (as the Scheduler would).
                        let best = dota_tensor::topk::top_k_indices(row, 1)[0] as u32;
                        keep.push((row[best as usize], best));
                    }
                    if let Some(cap) = self.max_per_row {
                        keep.sort_by(|a, b| {
                            b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal)
                        });
                        keep.truncate(cap.min(n));
                    }
                    keep.into_iter().map(|(_, j)| j).collect()
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dota_transformer::TransformerConfig;

    fn setup() -> (Model, ParamSet, DotaHook, Vec<Vec<usize>>) {
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny(24, 12, 2), &mut params, 31);
        let hook = DotaHook::init(
            DetectorConfig::new(0.25).with_sigma(0.5),
            model.config(),
            &mut params,
        );
        let validation: Vec<Vec<usize>> = (0..4)
            .map(|s| (0..24).map(|i| (i * 7 + s) % 12).collect())
            .collect();
        (model, params, hook, validation)
    }

    #[test]
    fn calibrated_retention_close_to_target() {
        let (model, params, hook, validation) = setup();
        let table = calibrate_thresholds(&model, &params, &hook, &validation, 0.25);
        let th = ThresholdHook::new(&hook, &params, table);
        // Evaluate achieved retention on a held-out sequence.
        let test_ids: Vec<usize> = (0..24).map(|i| (i * 5 + 3) % 12).collect();
        let trace = model.infer(&params, &test_ids, &th);
        let achieved = trace.retention();
        assert!(
            (achieved - 0.25).abs() < 0.12,
            "achieved retention {achieved} vs target 0.25"
        );
    }

    #[test]
    fn thresholds_monotone_in_retention() {
        let (model, params, hook, validation) = setup();
        let loose = calibrate_thresholds(&model, &params, &hook, &validation, 0.5);
        let tight = calibrate_thresholds(&model, &params, &hook, &validation, 0.1);
        for l in 0..loose.layers() {
            for h in 0..model.config().n_heads {
                assert!(
                    tight.threshold(l, h) >= loose.threshold(l, h),
                    "tighter retention must raise the threshold"
                );
            }
        }
    }

    #[test]
    fn row_cap_bounds_counts() {
        let (model, params, hook, validation) = setup();
        let table = calibrate_thresholds(&model, &params, &hook, &validation, 0.5);
        let th = ThresholdHook::new(&hook, &params, table).with_row_cap(3);
        let ids: Vec<usize> = (0..24).map(|i| i % 12).collect();
        let xs = crate::metrics::layer_inputs(&model, &params, &ids);
        let sel = th.select(0, 0, &xs[0]).unwrap();
        assert!(sel.iter().all(|r| !r.is_empty() && r.len() <= 3));
    }

    #[test]
    fn no_row_starves() {
        let (model, params, hook, validation) = setup();
        // Extremely tight retention: some rows would keep nothing without
        // the fallback.
        let table = calibrate_thresholds(&model, &params, &hook, &validation, 0.02);
        let th = ThresholdHook::new(&hook, &params, table);
        let ids: Vec<usize> = (0..24).map(|i| (i * 3) % 12).collect();
        let xs = crate::metrics::layer_inputs(&model, &params, &ids);
        let sel = th.select(1, 0, &xs[1]).unwrap();
        assert!(sel.iter().all(|r| !r.is_empty()));
    }

    #[test]
    #[should_panic(expected = "at least one validation")]
    fn empty_validation_rejected() {
        let (model, params, hook, _) = setup();
        let _ = calibrate_thresholds(&model, &params, &hook, &[], 0.25);
    }
}
