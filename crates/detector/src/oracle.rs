//! Oracle and random selection references.
//!
//! Table 1 of the paper motivates detection by applying *post-hoc* row-wise
//! top-k to the exact attention weights of a trained model — an oracle no
//! real system can afford (it must compute the full `Q K^T` it is trying to
//! avoid). [`OracleHook`] reproduces that experiment; [`RandomHook`] is the
//! sanity floor (random selection at the same retention).

use dota_autograd::ParamSet;
use dota_tensor::rng::SeededRng;
use dota_tensor::{topk, Matrix};
use dota_transformer::{InferenceHook, Model, TransformerParams};

/// Post-hoc exact top-k selection (Table 1's "retention" rows).
#[derive(Debug)]
pub struct OracleHook {
    wq: Vec<Matrix>,
    wk: Vec<Matrix>,
    n_heads: usize,
    head_dim: usize,
    retention: f64,
}

impl OracleHook {
    /// Builds the oracle from the model's current weights.
    ///
    /// # Panics
    ///
    /// Panics if `retention` is not in `(0, 1]`.
    pub fn from_model(model: &Model, params: &ParamSet, retention: f64) -> Self {
        assert!(
            retention > 0.0 && retention <= 1.0,
            "retention {retention} must be in (0, 1]"
        );
        let tp: &TransformerParams = model.params();
        Self {
            wq: tp
                .layers
                .iter()
                .map(|l| params.value(l.wq).clone())
                .collect(),
            wk: tp
                .layers
                .iter()
                .map(|l| params.value(l.wk).clone())
                .collect(),
            n_heads: model.config().n_heads,
            head_dim: model.config().head_dim(),
            retention,
        }
    }

    /// Keys kept per row at sequence length `n`.
    pub fn keys_per_row(&self, n: usize) -> usize {
        ((self.retention * n as f64).round() as usize).clamp(1, n)
    }
}

impl InferenceHook for OracleHook {
    fn select(&self, layer: usize, head: usize, x: &Matrix) -> Option<Vec<Vec<u32>>> {
        assert!(head < self.n_heads, "head index out of range");
        let q = x.matmul(&self.wq[layer]).expect("shape");
        let k = x.matmul(&self.wk[layer]).expect("shape");
        let (c0, c1) = (head * self.head_dim, (head + 1) * self.head_dim);
        let scores = q
            .slice_cols(c0, c1)
            .matmul_nt(&k.slice_cols(c0, c1))
            .expect("shape");
        let kpr = self.keys_per_row(x.rows());
        Some(
            topk::top_k_rows(&scores, kpr)
                .into_iter()
                .map(|row| row.into_iter().map(|i| i as u32).collect())
                .collect(),
        )
    }
}

/// Uniform random selection at a fixed retention — the floor any detector
/// must beat.
///
/// The random stream is derived per `(layer, head)` from the base seed, so
/// the selection for a head depends only on its identity and the input —
/// never on how many heads were queried before it. That keeps results
/// identical whether heads run serially or on the `parallel` fan-out.
#[derive(Debug)]
pub struct RandomHook {
    retention: f64,
    seed: u64,
}

impl RandomHook {
    /// Creates a random selector.
    ///
    /// # Panics
    ///
    /// Panics if `retention` is not in `(0, 1]`.
    pub fn new(retention: f64, seed: u64) -> Self {
        assert!(
            retention > 0.0 && retention <= 1.0,
            "retention {retention} must be in (0, 1]"
        );
        Self { retention, seed }
    }
}

impl InferenceHook for RandomHook {
    fn select(&self, layer: usize, head: usize, x: &Matrix) -> Option<Vec<Vec<u32>>> {
        let n = x.rows();
        let kpr = ((self.retention * n as f64).round() as usize).clamp(1, n);
        let mut rng = SeededRng::new(
            self.seed
                .wrapping_add(layer as u64 * 0x9E37_79B9_7F4A_7C15)
                .wrapping_add(head as u64 * 0xD1B5_4A32_D192_ED03),
        );
        Some(
            (0..n)
                .map(|_| {
                    rng.sample_indices(n, kpr)
                        .into_iter()
                        .map(|i| i as u32)
                        .collect()
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dota_transformer::TransformerConfig;

    fn model() -> (Model, ParamSet) {
        let mut params = ParamSet::new();
        let m = Model::init(TransformerConfig::tiny(16, 8, 2), &mut params, 3);
        (m, params)
    }

    #[test]
    fn oracle_retention_is_exact() {
        let (m, params) = model();
        let hook = OracleHook::from_model(&m, &params, 0.5);
        let trace = m.infer(&params, &[1, 2, 3, 4, 5, 6], &hook);
        assert!((trace.retention() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn oracle_at_full_retention_matches_dense() {
        let (m, params) = model();
        let ids = vec![1, 2, 3, 4, 5];
        let dense = m.infer(&params, &ids, &dota_transformer::NoHook);
        let oracle = OracleHook::from_model(&m, &params, 1.0);
        let sparse = m.infer(&params, &ids, &oracle);
        assert!(dense.logits.approx_eq(&sparse.logits, 1e-5));
    }

    #[test]
    fn random_hook_selects_distinct_indices() {
        let hook = RandomHook::new(0.5, 1);
        let x = Matrix::zeros(8, 4);
        let sel = hook.select(0, 0, &x).unwrap();
        assert_eq!(sel.len(), 8);
        for row in &sel {
            assert_eq!(row.len(), 4);
            let mut sorted = row.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "duplicate indices in {row:?}");
        }
    }

    /// Sum of dense softmax attention mass covered by `sel` for head `head`
    /// of layer 0, given the layer input `x`.
    fn retained_mass(
        m: &Model,
        params: &ParamSet,
        x: &Matrix,
        sel: &[Vec<u32>],
        head: usize,
    ) -> f32 {
        let tp: &TransformerParams = m.params();
        let q = x.matmul(params.value(tp.layers[0].wq)).unwrap();
        let k = x.matmul(params.value(tp.layers[0].wk)).unwrap();
        let hd = m.config().head_dim();
        let (c0, c1) = (head * hd, (head + 1) * hd);
        let scores = q
            .slice_cols(c0, c1)
            .matmul_nt(&k.slice_cols(c0, c1))
            .unwrap()
            .scale(1.0 / (hd as f32).sqrt());
        let weights = dota_tensor::ops::softmax_rows(&scores);
        sel.iter()
            .enumerate()
            .map(|(i, row)| row.iter().map(|&j| weights[(i, j as usize)]).sum::<f32>())
            .sum()
    }

    #[test]
    fn oracle_retains_more_attention_mass_than_random() {
        // Table 1's motivation: the exact top-k oracle keeps the
        // highest-weight connections, so at equal retention it covers more
        // of the dense softmax mass than random selection. (Logit drift is
        // NOT a sound proxy at this scale: on an *untrained* model top-k
        // consistently herds every query onto the same few high-norm keys,
        // perturbing logits more than unbiased random picks — mass coverage
        // is the quantity the paper's claim is actually about.)
        let (m, params) = model();
        let mut rng = SeededRng::new(17);
        let oracle = OracleHook::from_model(&m, &params, 0.25);
        let seeds = [9u64, 10, 11, 12, 13];
        for head in 0..m.config().n_heads {
            let x = rng.normal_matrix(8, m.config().d_model, 1.0);
            let sel_o = oracle.select(0, head, &x).unwrap();
            let mass_o = retained_mass(&m, &params, &x, &sel_o, head);
            let mass_r = seeds
                .iter()
                .map(|&s| {
                    let sel_r = RandomHook::new(0.25, s).select(0, head, &x).unwrap();
                    retained_mass(&m, &params, &x, &sel_r, head)
                })
                .sum::<f32>()
                / seeds.len() as f32;
            assert!(
                mass_o > mass_r,
                "head {head}: oracle mass {mass_o} vs mean random mass {mass_r}"
            );
        }
    }
}
