//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the small subset of the rand 0.8 API the workspace
//! actually uses (`rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen::<f32>()`, `Rng::gen_range`) — **bit-compatible** with
//! upstream rand 0.8. `StdRng` is the same ChaCha12 generator (via the
//! same `rand_core` PCG-based `seed_from_u64` expansion and `BlockRng`
//! word-serving order), `gen::<f32>()` uses the same 24-bit multiply
//! conversion, and integer `gen_range` uses the same widening-multiply
//! rejection sampler. The recorded `results/*.json` were produced with
//! upstream rand; matching its streams exactly keeps every seeded
//! experiment reproducible against them.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Re-exports of the concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// A generator seedable from a `u64`, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The low-level generator interface, mirroring `rand::RngCore`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform in `[0, 1)` for floats, uniform over all values for
    /// integers and `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u32() >> 11) as f64 / (1u64 << 21) as f64 > 1.0 - p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the standard distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // rand 0.8's multiply-based conversion: the top 24 bits of one u32
        // draw give an exact uniform grid in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // Sign test on one u32 draw, as in rand 0.8.
        (rng.next_u32() as i32) < 0
    }
}

macro_rules! int_standard_32 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
int_standard_32!(u8, u16, u32, i8, i16, i32);

macro_rules! int_standard_64 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_standard_64!(u64, usize, i64, isize);

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one sample from `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

// rand 0.8's `UniformInt::sample_single_inclusive`: widening multiply of
// one unsigned draw by the range, rejecting the biased low zone. Types up
// to 32 bits sample from `next_u32`; 64-bit types from `next_u64`.
macro_rules! int_range {
    ($($t:ty => $unsigned:ty, $next:ident, $wide:ty);* $(;)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                sample_inclusive_from(self.start, self.end - 1, rng)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                sample_inclusive_from(lo, hi, rng)
            }
        }
        impl SampleInclusive for $t {
            fn sample_inclusive<R: RngCore>(low: $t, high: $t, rng: &mut R) -> $t {
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned;
                if range == 0 {
                    // The full type range: every draw is acceptable.
                    return rng.$next() as $t;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.$next() as $unsigned;
                    let m = (v as $wide) * (range as $wide);
                    let hi_part = (m >> (<$unsigned>::BITS)) as $unsigned;
                    let lo_part = m as $unsigned;
                    if lo_part <= zone {
                        return low.wrapping_add(hi_part as $t);
                    }
                }
            }
        }
    )*};
}

trait SampleInclusive: Sized {
    fn sample_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;
}

fn sample_inclusive_from<T: SampleInclusive, R: RngCore>(low: T, high: T, rng: &mut R) -> T {
    T::sample_inclusive(low, high, rng)
}

int_range! {
    u8 => u32, next_u32, u64;
    u16 => u32, next_u32, u64;
    u32 => u32, next_u32, u64;
    i8 => u32, next_u32, u64;
    i16 => u32, next_u32, u64;
    i32 => u32, next_u32, u64;
    u64 => u64, next_u64, u128;
    i64 => u64, next_u64, u128;
    usize => u64, next_u64, u128;
    isize => u64, next_u64, u128;
}

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u: $t = Standard::sample_standard(rng);
                u * (self.end - self.start) + self.start
            }
        }
    )*};
}
float_range!(f32, f64);

const CHACHA_WORDS: usize = 64; // four 16-word blocks per refill

/// rand 0.8's `StdRng`: the ChaCha12 generator, reproduced bit-for-bit.
///
/// The buffer holds four ChaCha blocks (rand_chacha generates 256 bytes at
/// a time) and words are served in `rand_core::BlockRng` order — including
/// its behaviour when a `next_u64` straddles the refill boundary — so
/// mixed `next_u32`/`next_u64` call sequences match upstream exactly.
#[derive(Debug, Clone)]
pub struct StdRng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; CHACHA_WORDS],
    index: usize,
}

impl StdRng {
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            buf: [0; CHACHA_WORDS],
            index: CHACHA_WORDS, // force a refill on first use
        }
    }

    fn refill(&mut self, offset: usize) {
        for b in 0..4 {
            let block = chacha12_block(&self.key, self.counter.wrapping_add(b as u64));
            self.buf[b * 16..(b + 1) * 16].copy_from_slice(&block);
        }
        self.counter = self.counter.wrapping_add(4);
        self.index = offset;
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(mut state: u64) -> Self {
        // rand_core's default expansion: a PCG32 stream fills the seed.
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= CHACHA_WORDS {
            self.refill(0);
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let index = self.index;
        if index < CHACHA_WORDS - 1 {
            self.index += 2;
            (u64::from(self.buf[index + 1]) << 32) | u64::from(self.buf[index])
        } else if index >= CHACHA_WORDS {
            self.refill(2);
            (u64::from(self.buf[1]) << 32) | u64::from(self.buf[0])
        } else {
            // One word left: it becomes the low half, the first word of the
            // next buffer the high half (BlockRng's boundary behaviour).
            let x = u64::from(self.buf[CHACHA_WORDS - 1]);
            self.refill(1);
            (u64::from(self.buf[0]) << 32) | x
        }
    }
}

/// One ChaCha block with 12 rounds, 64-bit counter, zero nonce/stream.
fn chacha12_block(key: &[u32; 8], counter: u64) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    let mut x = state;
    for _ in 0..6 {
        quarter(&mut x, 0, 4, 8, 12);
        quarter(&mut x, 1, 5, 9, 13);
        quarter(&mut x, 2, 6, 10, 14);
        quarter(&mut x, 3, 7, 11, 15);
        quarter(&mut x, 0, 5, 10, 15);
        quarter(&mut x, 1, 6, 11, 12);
        quarter(&mut x, 2, 7, 8, 13);
        quarter(&mut x, 3, 4, 9, 14);
    }
    for (xi, si) in x.iter_mut().zip(&state) {
        *xi = xi.wrapping_add(*si);
    }
    x
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chacha20_reference_block() {
        // RFC 7539 §2.3.2 test vector adapted to 12 rounds is not published,
        // so pin the keystream structure instead: the 20-round variant of
        // the same block function must reproduce the RFC's first block.
        fn chacha_block_n(key: &[u32; 8], counter: u64, nonce: [u32; 2], dr: usize) -> [u32; 16] {
            let mut state = [0u32; 16];
            state[0] = 0x6170_7865;
            state[1] = 0x3320_646e;
            state[2] = 0x7962_2d32;
            state[3] = 0x6b20_6574;
            state[4..12].copy_from_slice(key);
            state[12] = counter as u32;
            state[13] = nonce[0];
            state[14] = nonce[1];
            state[15] = 0;
            let mut x = state;
            for _ in 0..dr {
                quarter(&mut x, 0, 4, 8, 12);
                quarter(&mut x, 1, 5, 9, 13);
                quarter(&mut x, 2, 6, 10, 14);
                quarter(&mut x, 3, 7, 11, 15);
                quarter(&mut x, 0, 5, 10, 15);
                quarter(&mut x, 1, 6, 11, 12);
                quarter(&mut x, 2, 7, 8, 13);
                quarter(&mut x, 3, 4, 9, 14);
            }
            for (xi, si) in x.iter_mut().zip(&state) {
                *xi = xi.wrapping_add(*si);
            }
            x
        }
        // RFC 7539 §2.3.2: key 00 01 .. 1f, counter 1, nonce 00:00:00:09:00:00:00:4a:00:00:00:00
        let key = [
            0x03020100, 0x07060504, 0x0b0a0908, 0x0f0e0d0c, 0x13121110, 0x17161514, 0x1b1a1918,
            0x1f1e1d1c,
        ];
        // RFC state layout puts the 32-bit counter in word 12 and the
        // 96-bit nonce in words 13..16; our helper models words 13,14 and
        // leaves 15 zero, matching the vector's trailing zero word... the
        // RFC nonce is 00000009 0000004a 00000000 big-endian bytes.
        let out = chacha_block_n(&key, 1, [0x0900_0000, 0x4a00_0000], 10);
        assert_eq!(out[0], 0xe4e7f110);
        assert_eq!(out[1], 0x15593bd1);
        assert_eq!(out[15], 0x4e3c50a2);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f32_mean_near_half() {
        let mut r = StdRng::seed_from_u64(9);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f32>() as f64).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(0..17usize);
            assert!(x < 17);
            let y = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let z = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_values() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
