//! Prometheus text-format exposition: encoder, parser, and strict
//! validator.
//!
//! [`render`] turns one coherent snapshot — `dota-trace` counters, the
//! live [`GaugesSample`], and `dota-metrics` histograms — into valid
//! text exposition format (version 0.0.4): `# HELP`/`# TYPE` comments
//! followed by samples, histograms with cumulative `le` buckets, a
//! `+Inf` bucket equal to `_count`, and an exact `_sum`.
//!
//! [`validate`] is the strict line-grammar check the tests and CI lint
//! scraped output with: metric-name and label grammar, declared types,
//! duplicate detection, and for every histogram monotone non-decreasing
//! cumulative buckets. [`parse`] is the lenient sample reader `dota top`
//! uses.

use crate::gauges::GaugesSample;
use dota_metrics::{fmt_f64, Histogram};
use std::collections::{BTreeMap, BTreeSet};

/// One parsed sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Label pairs in order of appearance (empty for unlabelled samples).
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf` buckets parse as `f64::INFINITY`).
    pub value: f64,
}

impl Sample {
    /// The sample's value when its labels match `want` exactly.
    fn key(&self) -> String {
        let mut k = self.name.clone();
        for (n, v) in &self.labels {
            k.push('\u{1}');
            k.push_str(n);
            k.push('\u{2}');
            k.push_str(v);
        }
        k
    }
}

/// Maps a dotted internal metric name (`serve.queue_wait_us`) onto the
/// Prometheus name grammar: `dota_` prefix, every character outside
/// `[a-zA-Z0-9_]` replaced with `_`.
pub fn sanitize_name(name: &str) -> String {
    sanitize_with_prefix("dota_", name)
}

/// [`sanitize_name`] with an explicit prefix. Histogram families use
/// `dota_hist_` so a histogram of the same internal quantity as a serve
/// gauge (`serve.slo.burn` vs `dota_serve_slo_burn`) cannot collide with
/// it — one exposition name must belong to exactly one family.
fn sanitize_with_prefix(prefix: &str, name: &str) -> String {
    let mut out = String::with_capacity(prefix.len() + name.len());
    out.push_str(prefix);
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn push_help_type(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    // HELP text escapes: backslash and newline.
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

fn push_label_value(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_gauge(out: &mut String, name: &str, help: &str, value: &str) {
    push_help_type(out, name, help, "gauge");
    out.push_str(name);
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Renders one snapshot as Prometheus text exposition format. Output is
/// a pure function of the inputs (names in `BTreeMap` order, floats via
/// the shortest round-trip formatter), so identical snapshots render to
/// identical bytes.
pub fn render(
    counters: &BTreeMap<String, u64>,
    gauges: &GaugesSample,
    hists: &BTreeMap<String, Histogram>,
) -> String {
    let mut out = String::with_capacity(4096);

    // --- serve gauges -----------------------------------------------------
    push_help_type(
        &mut out,
        "dota_serve_cell_info",
        "Currently running bench cell (label `cell`).",
        "gauge",
    );
    out.push_str("dota_serve_cell_info{cell=");
    push_label_value(&mut out, &gauges.cell);
    out.push_str("} 1\n");
    let g = |out: &mut String, name: &str, help: &str, v: u64| {
        push_gauge(out, name, help, &v.to_string());
    };
    g(
        &mut out,
        "dota_serve_cycle",
        "Simulated cycle of the last published sample.",
        gauges.cycle,
    );
    g(
        &mut out,
        "dota_serve_steps",
        "Scheduler steps taken in the current cell.",
        gauges.steps,
    );
    g(
        &mut out,
        "dota_serve_queue_depth",
        "Requests waiting in the admission queue.",
        gauges.queue_depth,
    );
    g(
        &mut out,
        "dota_serve_occupancy",
        "Occupied decode slots.",
        gauges.occupancy,
    );
    g(
        &mut out,
        "dota_serve_capacity",
        "Total decode slots.",
        gauges.capacity,
    );
    g(
        &mut out,
        "dota_serve_admitted",
        "Requests admitted in the current cell.",
        gauges.admitted,
    );
    g(
        &mut out,
        "dota_serve_decoded_tokens",
        "Tokens decoded in the current cell.",
        gauges.decoded_tokens,
    );
    g(
        &mut out,
        "dota_serve_quarantined_lanes",
        "Lanes currently quarantined by the fault layer.",
        gauges.quarantined_lanes,
    );
    if let Some(hr) = gauges.slo_hit_rate_milli {
        push_gauge(
            &mut out,
            "dota_serve_slo_hit_rate",
            "Rolling SLO hit rate (0-1).",
            &fmt_f64(hr as f64 / 1000.0),
        );
    }
    if let Some(burn) = gauges.slo_burn_milli {
        push_gauge(
            &mut out,
            "dota_serve_slo_burn",
            "Worst per-slot SLO burn at the last step (1.0 = budget spent).",
            &fmt_f64(burn as f64 / 1000.0),
        );
    }
    if let Some(rung) = gauges.rung {
        g(
            &mut out,
            "dota_serve_retention_rung",
            "Retention-ladder rung the closed-loop controller sits at.",
            rung,
        );
    }
    if let Some(closed) = gauges.gate_closed {
        g(
            &mut out,
            "dota_serve_gate_closed",
            "1 while the controller's admission gate is closed.",
            u64::from(closed),
        );
    }
    push_gauge(
        &mut out,
        "dota_serve_lane_skew",
        "Retained-work skew across busy lanes (max/mean; 1 = balanced).",
        &fmt_f64(gauges.lane_skew_milli as f64 / 1000.0),
    );
    if !gauges.lane_retained.is_empty() {
        push_help_type(
            &mut out,
            "dota_serve_lane_retained",
            "Retained (attended) connections per lane at the last step.",
            "gauge",
        );
        for (lane, &r) in gauges.lane_retained.iter().enumerate() {
            out.push_str("dota_serve_lane_retained{lane=\"");
            out.push_str(&lane.to_string());
            out.push_str("\"} ");
            out.push_str(&r.to_string());
            out.push('\n');
        }
    }

    // --- dota-trace counters ---------------------------------------------
    for (name, &v) in counters {
        let pname = format!("{}_total", sanitize_name(name));
        push_help_type(
            &mut out,
            &pname,
            &format!("dota-trace counter `{name}`."),
            "counter",
        );
        out.push_str(&pname);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }

    // --- dota-metrics histograms ------------------------------------------
    for (name, h) in hists {
        let pname = sanitize_with_prefix("dota_hist_", name);
        push_help_type(
            &mut out,
            &pname,
            &format!("dota-metrics histogram `{name}`."),
            "histogram",
        );
        for (ub, cum) in h.cumulative_buckets() {
            out.push_str(&pname);
            out.push_str("_bucket{le=\"");
            out.push_str(&fmt_f64(ub));
            out.push_str("\"} ");
            out.push_str(&cum.to_string());
            out.push('\n');
        }
        out.push_str(&pname);
        out.push_str("_bucket{le=\"+Inf\"} ");
        out.push_str(&h.count().to_string());
        out.push('\n');
        out.push_str(&pname);
        out.push_str("_sum ");
        out.push_str(&fmt_f64(h.sum()));
        out.push('\n');
        out.push_str(&pname);
        out.push_str("_count ");
        out.push_str(&h.count().to_string());
        out.push('\n');
    }

    out
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses one sample line (`name{labels} value`).
fn parse_sample_line(line: &str) -> Result<Sample, String> {
    let err = |m: &str| format!("{m}: `{line}`");
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}').ok_or_else(|| err("unclosed label set"))?;
            if close < brace {
                return Err(err("unclosed label set"));
            }
            (
                &line[..brace],
                Some((&line[brace + 1..close], &line[close + 1..])),
            )
        }
        None => (
            line.split_once(' ').ok_or_else(|| err("missing value"))?.0,
            None,
        ),
    };
    if !valid_metric_name(name_part) {
        return Err(err("invalid metric name"));
    }
    let (labels, value_part) = match rest {
        Some((labels_raw, after)) => {
            let mut labels = Vec::new();
            let mut chars = labels_raw.chars().peekable();
            while chars.peek().is_some() {
                let mut lname = String::new();
                for c in chars.by_ref() {
                    if c == '=' {
                        break;
                    }
                    lname.push(c);
                }
                if !valid_label_name(&lname) {
                    return Err(err("invalid label name"));
                }
                if chars.next() != Some('"') {
                    return Err(err("label value must be quoted"));
                }
                let mut lval = String::new();
                let mut closed = false;
                while let Some(c) = chars.next() {
                    match c {
                        '\\' => match chars.next() {
                            Some('\\') => lval.push('\\'),
                            Some('"') => lval.push('"'),
                            Some('n') => lval.push('\n'),
                            _ => return Err(err("bad escape in label value")),
                        },
                        '"' => {
                            closed = true;
                            break;
                        }
                        c => lval.push(c),
                    }
                }
                if !closed {
                    return Err(err("unterminated label value"));
                }
                labels.push((lname, lval));
                match chars.next() {
                    Some(',') | None => {}
                    Some(_) => return Err(err("expected `,` between labels")),
                }
            }
            (labels, after.trim_start())
        }
        None => {
            let (_, v) = line.split_once(' ').expect("checked above");
            (Vec::new(), v)
        }
    };
    let value_str = value_part.trim();
    if value_str.is_empty() || value_str.contains(' ') {
        // A trailing timestamp would show up as a second token; this
        // exposition never emits timestamps, so reject them.
        return Err(err("expected exactly one value token"));
    }
    let value: f64 = value_str
        .parse()
        .map_err(|_| err("unparseable sample value"))?;
    Ok(Sample {
        name: name_part.to_owned(),
        labels,
        value,
    })
}

/// Parses every sample line of an exposition document, skipping comments
/// and blank lines. Errors on the first malformed sample line.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim_end_matches('\r');
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_sample_line(line)?);
    }
    Ok(out)
}

/// Strictly validates an exposition document:
///
/// * every line is a `# HELP`, `# TYPE`, or sample line in grammar;
/// * every sample belongs to a family declared with `# TYPE` *before*
///   its first sample, and the family's type admits the sample name
///   (`_bucket`/`_sum`/`_count` for histograms);
/// * no duplicate `(name, labels)` sample;
/// * counter and gauge values are finite, counters non-negative;
/// * every histogram has `_sum`, `_count`, and a `le="+Inf"` bucket equal
///   to `_count`; bucket `le` bounds strictly increase and cumulative
///   counts are monotone non-decreasing.
pub fn validate(text: &str) -> Result<(), String> {
    if text.is_empty() {
        return Err("empty exposition".into());
    }
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".into());
    }
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    // family -> (buckets in order of appearance, sum, count)
    #[derive(Default)]
    struct HistFamily {
        buckets: Vec<(f64, f64)>,
        sum: Option<f64>,
        count: Option<f64>,
    }
    let mut hist_families: BTreeMap<String, HistFamily> = BTreeMap::new();

    for raw in text.lines() {
        let line = raw.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split(' ').next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("HELP for invalid metric name: `{line}`"));
                }
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("TYPE for invalid metric name: `{line}`"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("unknown TYPE `{kind}`: `{line}`"));
                }
                if types.insert(name.to_owned(), kind.to_owned()).is_some() {
                    return Err(format!("duplicate TYPE for `{name}`"));
                }
            } else {
                return Err(format!("comment is neither HELP nor TYPE: `{line}`"));
            }
            continue;
        }
        let sample = parse_sample_line(line)?;
        if !seen.insert(sample.key()) {
            return Err(format!("duplicate sample: `{line}`"));
        }
        // Resolve the declaring family.
        let (family, kind) = if let Some(kind) = types.get(&sample.name) {
            (sample.name.clone(), kind.clone())
        } else {
            let stripped = sample
                .name
                .strip_suffix("_bucket")
                .or_else(|| sample.name.strip_suffix("_sum"))
                .or_else(|| sample.name.strip_suffix("_count"));
            match stripped.and_then(|f| types.get(f).map(|k| (f.to_owned(), k.clone()))) {
                Some((f, k)) if k == "histogram" => (f, k),
                _ => {
                    return Err(format!(
                        "sample `{}` has no TYPE declaration above it",
                        sample.name
                    ))
                }
            }
        };
        match kind.as_str() {
            "counter" if !sample.value.is_finite() || sample.value < 0.0 => {
                return Err(format!("counter `{}` must be finite and >= 0", sample.name));
            }
            "gauge" if !sample.value.is_finite() => {
                return Err(format!("gauge `{}` must be finite", sample.name));
            }
            "histogram" => {
                let fam = hist_families.entry(family.clone()).or_default();
                if sample.name.ends_with("_bucket") {
                    let le = sample
                        .labels
                        .iter()
                        .find(|(n, _)| n == "le")
                        .map(|(_, v)| v.as_str())
                        .ok_or_else(|| format!("bucket without `le` label: `{line}`"))?;
                    let bound: f64 = le
                        .parse()
                        .map_err(|_| format!("unparseable `le` bound `{le}`"))?;
                    fam.buckets.push((bound, sample.value));
                } else if sample.name.ends_with("_sum") {
                    fam.sum = Some(sample.value);
                } else if sample.name.ends_with("_count") {
                    fam.count = Some(sample.value);
                }
            }
            _ => {}
        }
    }

    // Histogram family invariants.
    for (name, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let fam = hist_families
            .get(name)
            .ok_or_else(|| format!("histogram `{name}` has no samples"))?;
        let count = fam
            .count
            .ok_or_else(|| format!("histogram `{name}` missing _count"))?;
        if fam.sum.is_none() {
            return Err(format!("histogram `{name}` missing _sum"));
        }
        if fam.buckets.is_empty() {
            return Err(format!("histogram `{name}` has no buckets"));
        }
        let (last_bound, last_cum) = *fam.buckets.last().expect("non-empty");
        if last_bound != f64::INFINITY {
            return Err(format!("histogram `{name}` missing +Inf bucket"));
        }
        if last_cum != count {
            return Err(format!(
                "histogram `{name}`: +Inf bucket {last_cum} != _count {count}"
            ));
        }
        for w in fam.buckets.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!(
                    "histogram `{name}`: le bounds not strictly increasing ({} then {})",
                    w[0].0, w[1].0
                ));
            }
            if w[1].1 < w[0].1 {
                return Err(format!(
                    "histogram `{name}`: cumulative counts decreased ({} then {})",
                    w[0].1, w[1].1
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_inputs() -> (
        BTreeMap<String, u64>,
        GaugesSample,
        BTreeMap<String, Histogram>,
    ) {
        let mut counters = BTreeMap::new();
        counters.insert("serve.steps".to_owned(), 42);
        counters.insert("serve.tokens".to_owned(), 900);
        let gauges = GaugesSample {
            cell: "serve[slo@4x]".into(),
            cycle: 5000,
            steps: 17,
            queue_depth: 3,
            occupancy: 6,
            capacity: 8,
            admitted: 21,
            decoded_tokens: 130,
            slo_hit_rate_milli: Some(925),
            slo_burn_milli: Some(1310),
            rung: Some(2),
            gate_closed: Some(true),
            quarantined_lanes: 1,
            lane_retained: vec![4, 0, 2],
            lane_skew_milli: 1333,
        };
        let mut h = Histogram::new();
        h.record_all([0.5, 1.0, 2.0, 2.0, 40.0]);
        let mut hists = BTreeMap::new();
        hists.insert("serve.slo.step_burn_max".to_owned(), h);
        (counters, gauges, hists)
    }

    #[test]
    fn render_passes_strict_validation() {
        let (c, g, h) = sample_inputs();
        let text = render(&c, &g, &h);
        validate(&text).unwrap();
        // The key families are present under their sanitized names.
        for needle in [
            "dota_serve_queue_depth 3",
            "dota_serve_retention_rung 2",
            "dota_serve_gate_closed 1",
            "dota_serve_lane_retained{lane=\"0\"} 4",
            "dota_serve_steps_total 42",
            "dota_hist_serve_slo_step_burn_max_bucket{le=\"+Inf\"} 5",
            "dota_hist_serve_slo_step_burn_max_count 5",
            "dota_serve_cell_info{cell=\"serve[slo@4x]\"} 1",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn render_is_deterministic() {
        let (c, g, h) = sample_inputs();
        assert_eq!(render(&c, &g, &h), render(&c, &g, &h));
    }

    #[test]
    fn parse_round_trips_samples() {
        let (c, g, h) = sample_inputs();
        let text = render(&c, &g, &h);
        let samples = parse(&text).unwrap();
        let find = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("no sample `{name}`"))
        };
        assert_eq!(find("dota_serve_occupancy").value, 6.0);
        assert_eq!(find("dota_serve_slo_hit_rate").value, 0.925);
        assert_eq!(find("dota_serve_tokens_total").value, 900.0);
        let inf_bucket = samples
            .iter()
            .find(|s| {
                s.name == "dota_hist_serve_slo_step_burn_max_bucket"
                    && s.labels.iter().any(|(n, v)| n == "le" && v == "+Inf")
            })
            .expect("+Inf bucket");
        assert_eq!(inf_bucket.value, 5.0);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        let (c, g, h) = sample_inputs();
        let good = render(&c, &g, &h);
        let cases: Vec<(String, &str)> = vec![
            (String::new(), "empty"),
            (good.trim_end().to_owned(), "missing trailing newline"),
            (
                good.replacen("dota_serve_queue_depth 3", "dota_serve_queue_depth 3\ndota_serve_queue_depth 4", 1),
                "duplicate sample",
            ),
            (
                good.replacen("# TYPE dota_serve_queue_depth gauge\n", "", 1),
                "sample without TYPE",
            ),
            (
                good.replacen("dota_serve_lane_skew ", "1bad_name ", 1),
                "invalid metric name",
            ),
            ("# TYPE h histogram\nh_sum 1\nh_count 2\n".to_owned(), "no buckets"),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n".to_owned(),
                "missing +Inf",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 2\n"
                    .to_owned(),
                "+Inf != count",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"
                    .to_owned(),
                "cumulative counts decreased",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"
                    .to_owned(),
                "le bounds not increasing",
            ),
            (
                "# TYPE g gauge\ng 1 1234567890\n".to_owned(),
                "trailing timestamp token",
            ),
            ("just some words\n".to_owned(), "garbage line"),
        ];
        for (doc, why) in cases {
            assert!(validate(&doc).is_err(), "validator accepted: {why}");
        }
        validate(&good).unwrap();
    }

    #[test]
    fn label_values_escape_and_parse_back() {
        let g = GaugesSample {
            cell: "we\"ird\\cell".into(),
            ..GaugesSample::default()
        };
        let text = render(&BTreeMap::new(), &g, &BTreeMap::new());
        validate(&text).unwrap();
        let samples = parse(&text).unwrap();
        let info = samples
            .iter()
            .find(|s| s.name == "dota_serve_cell_info")
            .expect("info sample");
        assert_eq!(info.labels[0].1, "we\"ird\\cell");
    }
}
