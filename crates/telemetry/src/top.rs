//! Rendering for the `dota top` terminal dashboard.
//!
//! `dota top` polls a `/metrics` endpoint, parses the exposition with
//! [`crate::exposition::parse`], feeds the samples into a [`TopState`],
//! and prints [`TopState::render`] each tick. The state keeps a short
//! history of the headline gauges so occupancy, queue depth, and SLO
//! burn show as sparklines; per-lane retained work renders as one bar
//! per lane, which is exactly the skew signal an operator rebalances on.

use crate::exposition::Sample;
use std::collections::VecDeque;

/// Sparkline history length (one entry per poll tick).
const HISTORY: usize = 48;

const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a unicode sparkline scaled to the slice maximum
/// (all-zero slices render as all-minimum bars).
pub fn sparkline(values: &[f64]) -> String {
    let max = values.iter().copied().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 || v <= 0.0 {
                BARS[0]
            } else {
                let idx = ((v / max) * (BARS.len() - 1) as f64).round() as usize;
                BARS[idx.min(BARS.len() - 1)]
            }
        })
        .collect()
}

/// The value of the first sample named `name`, if present.
pub fn sample_value(samples: &[Sample], name: &str) -> Option<f64> {
    samples.iter().find(|s| s.name == name).map(|s| s.value)
}

fn label_of<'a>(samples: &'a [Sample], name: &str, label: &str) -> Option<&'a str> {
    samples
        .iter()
        .find(|s| s.name == name)?
        .labels
        .iter()
        .find(|(n, _)| n == label)
        .map(|(_, v)| v.as_str())
}

#[derive(Debug, Clone, Copy, Default)]
struct Tick {
    occupancy: f64,
    queue_depth: f64,
    burn: f64,
}

/// Rolling dashboard state (see module docs).
#[derive(Debug, Default)]
pub struct TopState {
    history: VecDeque<Tick>,
}

impl TopState {
    /// An empty dashboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one poll's samples into the history.
    pub fn observe(&mut self, samples: &[Sample]) {
        let tick = Tick {
            occupancy: sample_value(samples, "dota_serve_occupancy").unwrap_or(0.0),
            queue_depth: sample_value(samples, "dota_serve_queue_depth").unwrap_or(0.0),
            burn: sample_value(samples, "dota_serve_slo_burn").unwrap_or(0.0),
        };
        if self.history.len() == HISTORY {
            self.history.pop_front();
        }
        self.history.push_back(tick);
    }

    /// Renders the dashboard for the most recent samples. Pure text (no
    /// cursor control) so it is testable and pipeable; the CLI prepends
    /// a clear-screen sequence when attached to a terminal.
    pub fn render(&self, samples: &[Sample]) -> String {
        let v = |name: &str| sample_value(samples, name);
        let int = |name: &str| v(name).unwrap_or(0.0) as u64;
        let spark = |f: fn(&Tick) -> f64| {
            let vals: Vec<f64> = self.history.iter().map(f).collect();
            sparkline(&vals)
        };
        let mut out = String::with_capacity(1024);
        let cell = label_of(samples, "dota_serve_cell_info", "cell").unwrap_or("?");
        out.push_str(&format!(
            "dota top — {cell} · cycle {} · step {}\n",
            int("dota_serve_cycle"),
            int("dota_serve_steps"),
        ));
        out.push_str(&format!(
            "  occupancy   {:>4}/{:<4} {}\n",
            int("dota_serve_occupancy"),
            int("dota_serve_capacity"),
            spark(|t| t.occupancy),
        ));
        out.push_str(&format!(
            "  queue depth {:>4}     {}\n",
            int("dota_serve_queue_depth"),
            spark(|t| t.queue_depth),
        ));
        match (v("dota_serve_slo_hit_rate"), v("dota_serve_slo_burn")) {
            (Some(hit), Some(burn)) => {
                out.push_str(&format!(
                    "  slo hit-rate {:5.1}% · burn {:.2} {}\n",
                    hit * 100.0,
                    burn,
                    spark(|t| t.burn),
                ));
            }
            _ => out.push_str("  slo         (no monitor)\n"),
        }
        match (v("dota_serve_retention_rung"), v("dota_serve_gate_closed")) {
            (Some(rung), gate) => {
                let gate = match gate {
                    Some(g) if g > 0.0 => "closed",
                    Some(_) => "open",
                    None => "-",
                };
                out.push_str(&format!("  rung {rung:.0} · admission gate {gate}\n"));
            }
            _ => out.push_str("  control     (no controller)\n"),
        }
        out.push_str(&format!(
            "  admitted {} · tokens {} · quarantined lanes {}\n",
            int("dota_serve_admitted"),
            int("dota_serve_decoded_tokens"),
            int("dota_serve_quarantined_lanes"),
        ));
        // Per-lane retained work, ordered by lane index.
        let mut lanes: Vec<(u64, f64)> = samples
            .iter()
            .filter(|s| s.name == "dota_serve_lane_retained")
            .filter_map(|s| {
                let lane = s.labels.iter().find(|(n, _)| n == "lane")?.1.parse().ok()?;
                Some((lane, s.value))
            })
            .collect();
        lanes.sort_unstable_by_key(|&(lane, _)| lane);
        if !lanes.is_empty() {
            let vals: Vec<f64> = lanes.iter().map(|&(_, v)| v).collect();
            out.push_str(&format!(
                "  lanes {} · skew {:.2}\n",
                sparkline(&vals),
                v("dota_serve_lane_skew").unwrap_or(0.0),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exposition::{parse, render as render_exposition};
    use crate::gauges::GaugesSample;
    use std::collections::BTreeMap;

    #[test]
    fn sparkline_scales_to_the_maximum() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        let s = sparkline(&[1.0, 4.0, 8.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[2], '█');
        assert!(chars[0] < chars[1] && chars[1] < chars[2]);
    }

    #[test]
    fn dashboard_renders_the_headline_gauges() {
        let gauges = GaugesSample {
            cell: "serve[slo@4x]".into(),
            cycle: 999,
            steps: 12,
            queue_depth: 5,
            occupancy: 7,
            capacity: 8,
            admitted: 30,
            decoded_tokens: 120,
            slo_hit_rate_milli: Some(880),
            slo_burn_milli: Some(450),
            rung: Some(1),
            gate_closed: Some(false),
            quarantined_lanes: 2,
            lane_retained: vec![3, 0, 6],
            lane_skew_milli: 2000,
        };
        let text = render_exposition(&BTreeMap::new(), &gauges, &BTreeMap::new());
        let samples = parse(&text).unwrap();
        let mut top = TopState::new();
        top.observe(&samples);
        let view = top.render(&samples);
        for needle in [
            "serve[slo@4x]",
            "cycle 999",
            "occupancy      7/8",
            "queue depth    5",
            "slo hit-rate  88.0% · burn 0.45",
            "rung 1 · admission gate open",
            "quarantined lanes 2",
            "skew 2.00",
        ] {
            assert!(view.contains(needle), "missing `{needle}` in:\n{view}");
        }
    }

    #[test]
    fn history_is_bounded() {
        let mut top = TopState::new();
        for _ in 0..(HISTORY + 10) {
            top.observe(&[]);
        }
        assert_eq!(top.history.len(), HISTORY);
    }
}
