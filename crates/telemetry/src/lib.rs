//! Live telemetry plane for `dota serve`.
//!
//! Every earlier observability layer (counters, JSONL metrics, profiles,
//! request timelines) is post-hoc: the run must end before anything is
//! visible. This crate makes the serving engine observable *while it
//! moves*, without perturbing it:
//!
//! * [`exposition`] — a Prometheus text-format encoder and strict
//!   validator. The encoder snapshots `dota-trace` counters, live serve
//!   gauges, and `dota-metrics` histograms (cumulative buckets, exact
//!   `_sum`/`_count`) into valid exposition format; the validator is the
//!   same grammar check CI lints scraped output with.
//! * [`gauges`] — a shared [`ServeGauges`] cell the engine publishes its
//!   per-step state into (queue depth, occupancy, SLO burn, retention
//!   rung, admission-gate state, quarantined lanes, per-lane retained
//!   work) and the endpoint reads at scrape time.
//! * [`http`] — a minimal blocking HTTP/1.1 listener
//!   ([`MetricsServer`]) serving `GET /metrics` from a background
//!   thread, plus the tiny client [`http::get`] that `dota top` and the
//!   tests poll it with. Zero dependencies: `std::net` only.
//! * [`flight`] — a bounded ring buffer of cycle-stamped engine events
//!   ([`FlightRecorder`]): admissions, expiries, terminals, controller
//!   rung changes and gate flips, fault retries, quarantine
//!   enter/probe/exit. Dumped as canonical, byte-deterministic
//!   `flight.json` on typed failure, on SIGTERM, or via `--flight-out`,
//!   and diffable with `dota report diff`.
//! * [`top`] — rendering for the `dota top` terminal dashboard
//!   (sparklines over polled gauge history).
//!
//! Everything here is **observation-only**: recorders never feed back
//! into scheduling, so every committed baseline stays byte-identical
//! whether telemetry is enabled or not. Events and gauges are stamped
//! with simulated cycles, never wall time, so `flight.json` is identical
//! across thread counts and build modes.

#![deny(missing_docs)]

pub mod exposition;
pub mod flight;
pub mod gauges;
pub mod http;
pub mod top;

pub use flight::{FlightEvent, FlightEventKind, FlightHandle, FlightRecorder, FLIGHT_VERSION};
pub use gauges::{GaugesSample, ServeGauges};
pub use http::MetricsServer;

use std::sync::atomic::{AtomicBool, Ordering};

static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sigterm {
    /// `SIGTERM` on every unix this repo targets.
    const SIGTERM: i32 = 15;

    extern "C" fn on_term(_sig: i32) {
        // A relaxed store is async-signal-safe; no allocation, no locks.
        super::TERM_REQUESTED.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    extern "C" {
        // libc's classic signal(2); std already links libc, so no crate
        // dependency is needed. The returned previous handler is unused.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub(super) fn install() {
        // SAFETY: installing an async-signal-safe handler (single relaxed
        // atomic store) for SIGTERM; signal(2) itself has no memory
        // preconditions beyond a valid handler pointer.
        unsafe {
            signal(SIGTERM, on_term);
        }
    }
}

/// Installs a `SIGTERM` handler that records the request in a flag read
/// by [`term_requested`], letting `dota serve --metrics-addr` keep its
/// endpoint alive until an operator (or CI) tears it down, then dump the
/// flight recorder and exit cleanly. Idempotent; a no-op off unix.
pub fn install_term_handler() {
    #[cfg(unix)]
    sigterm::install();
}

/// `true` once a `SIGTERM` arrived after [`install_term_handler`].
pub fn term_requested() -> bool {
    TERM_REQUESTED.load(Ordering::Relaxed)
}
