//! Minimal blocking HTTP/1.1 plumbing for the metrics endpoint.
//!
//! [`MetricsServer`] binds a `std::net::TcpListener`, answers
//! `GET /metrics` from a background accept thread by calling a
//! caller-supplied render closure at scrape time (so every scrape sees a
//! fresh snapshot), and shuts down cooperatively. [`get`] is the
//! matching two-line client used by `dota top` and the smoke tests.
//! Deliberately tiny: one request per connection, `Connection: close`,
//! no keep-alive, no TLS — this is an operator loopback port, not a web
//! server.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the accept loop sleeps between polls of its shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(20);
/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Longest request head we bother reading.
const MAX_REQUEST: usize = 4096;

/// A background metrics endpoint (see module docs).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the accept thread. `render` produces the exposition body
    /// for each `GET /metrics`.
    ///
    /// # Errors
    ///
    /// Propagates bind errors (bad address, port in use).
    pub fn start<F>(addr: &str, render: F) -> std::io::Result<Self>
    where
        F: Fn() -> String + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("dota-metrics".to_owned())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Per-connection errors (client hung up, slow
                            // reader) must not kill the endpoint.
                            let _ = answer(stream, &render);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => std::thread::sleep(ACCEPT_POLL),
                    }
                }
            })
            .expect("spawn metrics accept thread");
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn answer<F: Fn() -> String>(mut stream: TcpStream, render: &F) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.set_nonblocking(false)?;
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < MAX_REQUEST {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
    }
    let request = String::from_utf8_lossy(&head);
    let mut parts = request.lines().next().unwrap_or("").split(' ');
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = match (method, path) {
        ("GET", "/metrics") => ("200 OK", render()),
        ("GET", _) => ("404 Not Found", "not found; try /metrics\n".to_owned()),
        _ => ("405 Method Not Allowed", "GET only\n".to_owned()),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())
}

/// Fetches `http://{addr}{path}` with one blocking GET and returns the
/// body.
///
/// # Errors
///
/// I/O errors propagate; non-200 statuses and malformed responses map to
/// `ErrorKind::Other`/`InvalidData`.
pub fn get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<String> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP response")
    })?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(std::io::Error::other(format!("HTTP error: {status}")));
    }
    Ok(body.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_and_404s_everything_else() {
        let server =
            MetricsServer::start("127.0.0.1:0", || "# TYPE up gauge\nup 1\n".to_owned()).unwrap();
        let addr = server.addr();
        let body = get(addr, "/metrics").unwrap();
        assert_eq!(body, "# TYPE up gauge\nup 1\n");
        // A second scrape re-renders.
        assert_eq!(get(addr, "/metrics").unwrap(), body);
        let err = get(addr, "/other").unwrap_err();
        assert!(err.to_string().contains("404"), "{err}");
        server.shutdown();
        // After shutdown the port stops answering (connect may succeed
        // briefly on some kernels, so only assert the request fails).
        assert!(get(addr, "/metrics").is_err());
    }

    #[test]
    fn render_closure_sees_fresh_state_each_scrape() {
        use std::sync::atomic::AtomicU64;
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let server = MetricsServer::start("127.0.0.1:0", move || {
            format!(
                "# TYPE n counter\nn_total {}\n",
                n2.fetch_add(1, Ordering::SeqCst)
            )
        })
        .unwrap();
        let a = get(server.addr(), "/metrics").unwrap();
        let b = get(server.addr(), "/metrics").unwrap();
        assert_ne!(a, b);
    }
}
