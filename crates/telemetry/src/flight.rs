//! Flight recorder: a bounded ring buffer of cycle-stamped engine events.
//!
//! The recorder keeps the **last `capacity` events** of a serve run —
//! admissions, terminals (completions, expiries, drops, failures),
//! controller rung changes and admission-gate flips, fault retries, and
//! quarantine enter/probe/exit — so a postmortem after a typed failure or
//! a SIGTERM has the recent control history even when the full run is
//! too long to log.
//!
//! Events are stamped with **simulated cycles and a monotone sequence
//! number**, never wall time, and recorded from the serial scheduler
//! loop, so [`FlightRecorder::to_json`] is byte-identical across
//! `DOTA_THREADS` values and build modes. The JSON is canonical (fixed
//! key order) and structured for `dota report diff`.

use std::collections::VecDeque;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Version stamp of the flight JSON schema.
pub const FLIGHT_VERSION: u32 = 1;

/// Shared handle to a [`FlightRecorder`]: the engine records through it
/// while the CLI keeps a clone to dump from, even when the run returns a
/// typed error. The scheduler loop is serial, so the mutex is
/// uncontended in practice.
pub type FlightHandle = Arc<Mutex<FlightRecorder>>;

/// What happened (see module docs for the sources).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightEventKind {
    /// A request was admitted into a decode slot.
    Admit {
        /// Request id.
        id: u64,
        /// Lane (slot index) it landed in.
        lane: u64,
        /// Retention-ladder rung it was admitted at.
        rung: u64,
    },
    /// A request reached a terminal state (completed, expired, dropped,
    /// failed, …).
    Terminal {
        /// Request id.
        id: u64,
        /// Terminal reason, e.g. `completed`, `expired_queued`, `failed`.
        reason: String,
        /// Tokens decoded for the request by then.
        tokens: u64,
    },
    /// The closed-loop controller moved between retention rungs.
    Rung {
        /// Rung before the change.
        from: u64,
        /// Rung after the change.
        to: u64,
    },
    /// The controller's admission gate flipped.
    Gate {
        /// `true` when the gate closed, `false` when it reopened.
        closed: bool,
    },
    /// A faulted request was scheduled for re-admission.
    Retry {
        /// Request id.
        id: u64,
        /// Decode attempt number after this retry.
        attempt: u64,
    },
    /// A lane entered quarantine after a fault.
    Quarantine {
        /// Lane index.
        lane: u64,
    },
    /// A quarantined lane was probed.
    Probe {
        /// Lane index.
        lane: u64,
        /// `true` when the probe passed and the lane was restored.
        passed: bool,
    },
}

impl FlightEventKind {
    fn name(&self) -> &'static str {
        match self {
            Self::Admit { .. } => "admit",
            Self::Terminal { .. } => "terminal",
            Self::Rung { .. } => "rung",
            Self::Gate { .. } => "gate",
            Self::Retry { .. } => "retry",
            Self::Quarantine { .. } => "quarantine",
            Self::Probe { .. } => "probe",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone sequence number across the whole run (never resets, so
    /// ring wraparound is visible as a nonzero first sequence).
    pub seq: u64,
    /// Index into [`FlightRecorder::cells`] of the cell that was running.
    pub cell: u32,
    /// Simulated cycle the event happened at.
    pub cycle: u64,
    /// What happened.
    pub kind: FlightEventKind,
}

impl FlightEvent {
    fn to_json(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = write!(
            out,
            "{{\"seq\":{},\"cell\":{},\"cycle\":{},\"kind\":\"{}\"",
            self.seq,
            self.cell,
            self.cycle,
            self.kind.name()
        );
        match &self.kind {
            FlightEventKind::Admit { id, lane, rung } => {
                let _ = write!(out, ",\"id\":{id},\"lane\":{lane},\"rung\":{rung}");
            }
            FlightEventKind::Terminal { id, reason, tokens } => {
                let _ = write!(out, ",\"id\":{id},\"reason\":");
                dota_metrics::write_json_string(out, reason);
                let _ = write!(out, ",\"tokens\":{tokens}");
            }
            FlightEventKind::Rung { from, to } => {
                let _ = write!(out, ",\"from\":{from},\"to\":{to}");
            }
            FlightEventKind::Gate { closed } => {
                let _ = write!(out, ",\"closed\":{}", u8::from(*closed));
            }
            FlightEventKind::Retry { id, attempt } => {
                let _ = write!(out, ",\"id\":{id},\"attempt\":{attempt}");
            }
            FlightEventKind::Quarantine { lane } => {
                let _ = write!(out, ",\"lane\":{lane}");
            }
            FlightEventKind::Probe { lane, passed } => {
                let _ = write!(out, ",\"lane\":{lane},\"passed\":{}", u8::from(*passed));
            }
        }
        out.push('}');
    }
}

/// The bounded ring buffer (see module docs).
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    cells: Vec<String>,
    events: VecDeque<FlightEvent>,
    seq: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            cells: Vec::new(),
            events: VecDeque::new(),
            seq: 0,
        }
    }

    /// A shared handle around a fresh recorder.
    pub fn shared(capacity: usize) -> FlightHandle {
        Arc::new(Mutex::new(Self::new(capacity)))
    }

    /// Starts a new cell section; subsequent events are attributed to
    /// `label`.
    pub fn begin_cell(&mut self, label: &str) {
        self.cells.push(label.to_owned());
    }

    /// Records one event at the given simulated cycle, evicting the
    /// oldest event when the ring is full.
    pub fn record(&mut self, cycle: u64, kind: FlightEventKind) {
        if self.cells.is_empty() {
            self.cells.push("default".to_owned());
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(FlightEvent {
            seq: self.seq,
            cell: (self.cells.len() - 1) as u32,
            cycle,
            kind,
        });
        self.seq += 1;
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been recorded (or everything was evicted —
    /// impossible, eviction only happens on insert).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded, including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.seq
    }

    /// Events lost to ring eviction.
    pub fn dropped(&self) -> u64 {
        self.seq - self.events.len() as u64
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.events.iter()
    }

    /// Cell labels, in the order `begin_cell` declared them.
    pub fn cells(&self) -> &[String] {
        &self.cells
    }

    /// The canonical flight document: fixed key order, integers only,
    /// trailing newline. A pure function of the recorded events, hence
    /// byte-deterministic.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 64);
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {},\n", FLIGHT_VERSION));
        out.push_str(&format!("  \"capacity\": {},\n", self.capacity));
        out.push_str(&format!("  \"recorded\": {},\n", self.seq));
        out.push_str(&format!("  \"dropped\": {},\n", self.dropped()));
        out.push_str("  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            dota_metrics::write_json_string(&mut out, cell);
        }
        out.push_str("],\n");
        out.push_str("  \"events\": [");
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            ev.to_json(&mut out);
        }
        if !self.events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Writes the flight document to `path` (write-then-rename so a
    /// crash mid-dump never leaves a torn file).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64) -> FlightEventKind {
        FlightEventKind::Terminal {
            id,
            reason: "completed".to_owned(),
            tokens: id * 2,
        }
    }

    #[test]
    fn ring_keeps_the_last_capacity_events() {
        let mut fr = FlightRecorder::new(4);
        fr.begin_cell("cell-a");
        for i in 0..10 {
            fr.record(i * 100, ev(i));
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.recorded(), 10);
        assert_eq!(fr.dropped(), 6);
        let seqs: Vec<u64> = fr.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        // Dropped count is visible in the dump.
        assert!(fr.to_json().contains("\"dropped\": 6"));
    }

    #[test]
    fn events_attribute_to_the_current_cell() {
        let mut fr = FlightRecorder::new(16);
        fr.begin_cell("first");
        fr.record(1, ev(0));
        fr.begin_cell("second");
        fr.record(2, ev(1));
        let cells: Vec<u32> = fr.events().map(|e| e.cell).collect();
        assert_eq!(cells, vec![0, 1]);
        assert_eq!(fr.cells(), ["first", "second"]);
    }

    #[test]
    fn recording_without_a_cell_synthesizes_one() {
        let mut fr = FlightRecorder::new(4);
        fr.record(0, FlightEventKind::Gate { closed: true });
        assert_eq!(fr.cells(), ["default"]);
    }

    #[test]
    fn json_is_canonical_and_covers_every_kind() {
        let mut fr = FlightRecorder::new(16);
        fr.begin_cell("cell");
        fr.record(
            10,
            FlightEventKind::Admit {
                id: 1,
                lane: 2,
                rung: 0,
            },
        );
        fr.record(20, FlightEventKind::Rung { from: 0, to: 1 });
        fr.record(21, FlightEventKind::Gate { closed: true });
        fr.record(30, FlightEventKind::Retry { id: 1, attempt: 2 });
        fr.record(31, FlightEventKind::Quarantine { lane: 2 });
        fr.record(
            40,
            FlightEventKind::Probe {
                lane: 2,
                passed: false,
            },
        );
        fr.record(
            50,
            FlightEventKind::Terminal {
                id: 1,
                reason: "failed".to_owned(),
                tokens: 3,
            },
        );
        let json = fr.to_json();
        // Deterministic: same recorder, same bytes.
        assert_eq!(json, fr.to_json());
        for needle in [
            "\"kind\":\"admit\",\"id\":1,\"lane\":2,\"rung\":0",
            "\"kind\":\"rung\",\"from\":0,\"to\":1",
            "\"kind\":\"gate\",\"closed\":1",
            "\"kind\":\"retry\",\"id\":1,\"attempt\":2",
            "\"kind\":\"quarantine\",\"lane\":2",
            "\"kind\":\"probe\",\"lane\":2,\"passed\":0",
            "\"kind\":\"terminal\",\"id\":1,\"reason\":\"failed\",\"tokens\":3",
        ] {
            assert!(json.contains(needle), "missing `{needle}` in:\n{json}");
        }
        assert!(json.ends_with("]\n}\n"));
    }

    #[test]
    fn write_is_atomic_and_readable() {
        let dir = std::env::temp_dir().join("dota-telemetry-flight-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight.json");
        let mut fr = FlightRecorder::new(4);
        fr.begin_cell("c");
        fr.record(1, ev(0));
        fr.write(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, fr.to_json());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
