//! Shared live gauges the serve engine publishes into.
//!
//! The engine owns the scheduling loop; the metrics endpoint runs on an
//! accept thread. [`ServeGauges`] is the cell between them: the engine
//! [`publish`](ServeGauges::publish)es a full [`GaugesSample`] once per
//! step (and at terminal transitions), the endpoint
//! [`snapshot`](ServeGauges::snapshot)s it at scrape time. Publishing is
//! observation-only — nothing in the engine ever reads the cell back.

use std::sync::{Mutex, PoisonError};

/// One coherent reading of the engine's live state, in simulated cycles
/// and counts — never wall time, so published values are deterministic
/// functions of the workload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GaugesSample {
    /// Label of the cell currently running (e.g. `serve[slo@4x]`).
    pub cell: String,
    /// Simulated cycle of this sample.
    pub cycle: u64,
    /// Scheduler steps taken so far in the current cell.
    pub steps: u64,
    /// Requests waiting in the admission queue.
    pub queue_depth: u64,
    /// Occupied decode slots.
    pub occupancy: u64,
    /// Total decode slots.
    pub capacity: u64,
    /// Requests admitted so far in the current cell.
    pub admitted: u64,
    /// Tokens decoded so far in the current cell.
    pub decoded_tokens: u64,
    /// Rolling SLO hit rate ×1000 (`None` until the monitor has a window).
    pub slo_hit_rate_milli: Option<u64>,
    /// Worst per-slot SLO burn this step ×1000 (`None` without a monitor).
    pub slo_burn_milli: Option<u64>,
    /// Current retention rung of the closed-loop controller
    /// (`None` when no controller is attached).
    pub rung: Option<u64>,
    /// Whether the controller's admission gate is closed.
    pub gate_closed: Option<bool>,
    /// Lanes currently quarantined.
    pub quarantined_lanes: u64,
    /// Per-lane retained (attended) connections at the last step; index
    /// is the lane id, `0` for idle lanes.
    pub lane_retained: Vec<u64>,
    /// Retained-work skew across busy lanes ×1000: max lane retention
    /// over mean lane retention (1000 = perfectly balanced).
    pub lane_skew_milli: u64,
}

/// The shared gauge cell (see module docs).
#[derive(Debug, Default)]
pub struct ServeGauges {
    inner: Mutex<GaugesSample>,
}

impl ServeGauges {
    /// An empty gauge cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the published sample.
    pub fn publish(&self, sample: &GaugesSample) {
        *self.inner.lock().unwrap_or_else(PoisonError::into_inner) = sample.clone();
    }

    /// A copy of the most recently published sample.
    pub fn snapshot(&self) -> GaugesSample {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// Retained-work skew across busy lanes ×1000 (max/mean); 1000 when the
/// busy lanes are perfectly balanced, 0 when every lane is idle.
pub fn lane_skew_milli(lane_retained: &[u64]) -> u64 {
    let busy: Vec<u64> = lane_retained.iter().copied().filter(|&r| r > 0).collect();
    if busy.is_empty() {
        return 0;
    }
    let max = *busy.iter().max().expect("non-empty");
    let sum: u64 = busy.iter().sum();
    // max/mean = max * n / sum, scaled to milli.
    (max * busy.len() as u64 * 1000) / sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_snapshot_round_trips() {
        let g = ServeGauges::new();
        assert_eq!(g.snapshot(), GaugesSample::default());
        let s = GaugesSample {
            cell: "serve[slo@4x]".into(),
            cycle: 123,
            steps: 7,
            queue_depth: 3,
            occupancy: 8,
            capacity: 8,
            admitted: 11,
            decoded_tokens: 40,
            slo_hit_rate_milli: Some(925),
            slo_burn_milli: Some(1310),
            rung: Some(2),
            gate_closed: Some(false),
            quarantined_lanes: 1,
            lane_retained: vec![4, 0, 2, 2],
            lane_skew_milli: 1500,
        };
        g.publish(&s);
        assert_eq!(g.snapshot(), s);
    }

    #[test]
    fn lane_skew_ignores_idle_lanes() {
        assert_eq!(lane_skew_milli(&[]), 0);
        assert_eq!(lane_skew_milli(&[0, 0, 0]), 0);
        // Balanced busy lanes: skew exactly 1000 regardless of idle lanes.
        assert_eq!(lane_skew_milli(&[3, 3, 0, 3]), 1000);
        // One lane with all the work among two busy lanes: max/mean = 2.
        assert_eq!(lane_skew_milli(&[4, 0, 0, 0]), 1000);
        assert_eq!(lane_skew_milli(&[6, 2]), 1500);
    }
}
