//! Lints Prometheus text-exposition files with the strict validator.
//!
//! ```text
//! cargo run -p dota-telemetry --example validate_exposition -- scrape.txt...
//! ```
//!
//! Exits nonzero on the first malformed document — CI runs this over
//! every `/metrics` scrape it takes during the serve telemetry smoke.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_exposition FILE...");
        return ExitCode::FAILURE;
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = dota_telemetry::exposition::validate(&text) {
            eprintln!("{path}: invalid exposition: {e}");
            return ExitCode::FAILURE;
        }
        let samples = dota_telemetry::exposition::parse(&text).expect("validated above");
        println!("{path}: ok ({} samples)", samples.len());
    }
    ExitCode::SUCCESS
}
