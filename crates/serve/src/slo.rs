//! Rolling SLO monitor for the serving engine.
//!
//! The engine's terminal histograms say *how* latency was distributed; the
//! monitor says *how the SLO is doing right now*, on the simulated clock,
//! while the run is in flight. Two windowed signals, both over the last
//! `window` terminal requests:
//!
//! * **deadline-hit rate** — fraction that produced their full output
//!   within their deadline budget;
//! * **burn-rate** — mean fraction of the deadline budget each request
//!   consumed (`e2e / budget`; > 1 means the budget was blown). A healthy
//!   service burns well under 1; a service headed for SLO violation burns
//!   toward 1 long before the hit rate moves, which is what makes burn the
//!   leading indicator a later PR can drive shedding from.
//!
//! Samples land at step boundaries (every terminal event is recorded at
//! its simulated finish time), so the monitor is as deterministic as the
//! engine itself. Each signal is surfaced three ways: `serve.slo.*` trace
//! counters (end-of-run totals), `dota-metrics` histograms (per-sample
//! distributions), and `ph:"C"` counter tracks in any live Chrome-trace
//! session. Disjoint window summaries are also kept for the timeline
//! report, where `dota analyze --serve` picks them up.

use dota_metrics::RollingWindow;

/// Aggregate over one disjoint window of `window` consecutive terminals
/// (the final window of a run may be shorter).
#[derive(Debug, Clone)]
pub struct SloWindow {
    /// Terminal requests summarized by this window.
    pub completions: u64,
    /// Simulated time of the window's last terminal event.
    pub end_cycle: u64,
    /// Terminals that met their deadline with full output.
    pub hits: u64,
    /// `hits / completions`.
    pub hit_rate: f64,
    /// Mean `e2e / budget` over the window.
    pub mean_burn: f64,
}

/// Windowed deadline-hit-rate and burn-rate tracking (see module docs).
#[derive(Debug)]
pub struct SloMonitor {
    window: usize,
    rolling: RollingWindow,
    hits: u64,
    misses: u64,
    windows: Vec<SloWindow>,
    // Accumulator for the current disjoint window.
    cur_count: u64,
    cur_hits: u64,
    cur_burn_sum: f64,
    cur_end: u64,
}

impl SloMonitor {
    /// Creates a monitor with the given rolling-window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero — the engine models "monitor off" by not
    /// constructing one, not by a degenerate window.
    pub fn new(window: usize) -> Self {
        Self {
            window,
            rolling: RollingWindow::new(window),
            hits: 0,
            misses: 0,
            windows: Vec::new(),
            cur_count: 0,
            cur_hits: 0,
            cur_burn_sum: 0.0,
            cur_end: 0,
        }
    }

    /// Records one terminal request: whether it `hit` its SLO (full output
    /// within the deadline), its `burn` (`e2e / budget`), at simulated
    /// time `now`.
    pub fn complete(&mut self, hit: bool, burn: f64, now: u64) {
        self.rolling.push(hit, burn);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        dota_metrics::observe("serve.slo.burn", burn);
        dota_metrics::observe("serve.slo.hit_rate", self.rolling.hit_rate());
        if dota_trace::enabled() {
            dota_trace::sim_counter(
                "serve.slo.hit_rate_milli",
                now,
                (self.rolling.hit_rate() * 1e3).round() as u64,
            );
            dota_trace::sim_counter(
                "serve.slo.burn_milli",
                now,
                (self.rolling.mean() * 1e3).round() as u64,
            );
        }
        self.cur_count += 1;
        if hit {
            self.cur_hits += 1;
        }
        self.cur_burn_sum += burn;
        self.cur_end = self.cur_end.max(now);
        if self.cur_count as usize >= self.window {
            self.flush_window();
        }
    }

    fn flush_window(&mut self) {
        if self.cur_count == 0 {
            return;
        }
        self.windows.push(SloWindow {
            completions: self.cur_count,
            end_cycle: self.cur_end,
            hits: self.cur_hits,
            hit_rate: self.cur_hits as f64 / self.cur_count as f64,
            mean_burn: self.cur_burn_sum / self.cur_count as f64,
        });
        self.cur_count = 0;
        self.cur_hits = 0;
        self.cur_burn_sum = 0.0;
    }

    /// Finishes the run: flushes any partial window and emits the
    /// `serve.slo.*` end-of-run trace counters.
    pub fn finish(&mut self) {
        self.flush_window();
        if dota_trace::enabled() {
            dota_trace::count("serve.slo.hits", self.hits);
            dota_trace::count("serve.slo.misses", self.misses);
            dota_trace::count("serve.slo.windows", self.windows.len() as u64);
        }
    }

    /// Terminals that met their SLO so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Terminals that missed their SLO so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over the rolling window (not the whole run).
    pub fn rolling_hit_rate(&self) -> f64 {
        self.rolling.hit_rate()
    }

    /// Mean burn over the rolling window (not the whole run).
    pub fn rolling_burn(&self) -> f64 {
        self.rolling.mean()
    }

    /// The disjoint window summaries flushed so far.
    pub fn windows(&self) -> &[SloWindow] {
        &self.windows
    }

    /// Consumes the monitor, returning its window summaries.
    pub fn into_windows(self) -> Vec<SloWindow> {
        self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_flush_at_capacity_and_on_finish() {
        let mut m = SloMonitor::new(2);
        m.complete(true, 0.2, 100);
        m.complete(false, 1.5, 200);
        m.complete(true, 0.4, 300);
        m.finish();
        let w = m.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].completions, 2);
        assert_eq!(w[0].hits, 1);
        assert_eq!(w[0].end_cycle, 200);
        assert_eq!(w[0].hit_rate, 0.5);
        assert!((w[0].mean_burn - 0.85).abs() < 1e-12);
        // Partial trailing window still flushes.
        assert_eq!(w[1].completions, 1);
        assert_eq!(w[1].hit_rate, 1.0);
        assert_eq!(m.hits(), 2);
        assert_eq!(m.misses(), 1);
    }

    #[test]
    fn rolling_signals_track_recent_samples_only() {
        let mut m = SloMonitor::new(2);
        m.complete(false, 2.0, 10);
        m.complete(false, 2.0, 20);
        assert_eq!(m.rolling_hit_rate(), 0.0);
        m.complete(true, 0.5, 30);
        m.complete(true, 0.5, 40);
        // The two misses have rolled out of the window.
        assert_eq!(m.rolling_hit_rate(), 1.0);
        assert_eq!(m.rolling_burn(), 0.5);
        // Run totals still remember them.
        assert_eq!(m.misses(), 2);
    }

    #[test]
    fn finish_emits_slo_counters_inside_a_session() {
        let t = dota_trace::session("slo-counters");
        let mut m = SloMonitor::new(4);
        m.complete(true, 0.1, 5);
        m.complete(false, 3.0, 9);
        m.finish();
        assert_eq!(t.counter("serve.slo.hits"), 1);
        assert_eq!(t.counter("serve.slo.misses"), 1);
        assert_eq!(t.counter("serve.slo.windows"), 1);
        // Counter tracks were sampled on the simulated clock.
        assert!(t.chrome_trace_json().contains("serve.slo.burn_milli"));
    }
}
