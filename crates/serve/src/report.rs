//! The `dota serve --bench` load test and its canonical report.
//!
//! [`run_bench`] sweeps offered load × shed policy over a seeded traffic
//! trace and aggregates SLO histograms (queue wait, TTFT, inter-token gap,
//! end-to-end) per cell. Everything — the model, the traffic, the
//! simulated clock — is deterministic, and the JSON serialization is
//! hand-written in a canonical key order with [`dota_metrics::fmt_f64`]
//! formatting, so the report is *byte-identical* across `DOTA_THREADS`
//! settings, serial vs `parallel` builds, and machines. `dota report diff`
//! can therefore treat any drift as a real behaviour change.

use crate::cost::CostModel;
use crate::engine::{ServeConfig, ServeEngine, ServeOutcome, ShedPolicy};
use crate::request::FinishReason;
use crate::timeline::{CellTimeline, TimelineConfig, TimelineReport};
use crate::traffic::TrafficConfig;
use dota_accel::AccelConfig;
use dota_autograd::ParamSet;
use dota_metrics::{fmt_f64, Histogram};
use dota_telemetry::{FlightHandle, ServeGauges};
use dota_transformer::{Model, TransformerConfig};
use std::path::Path;
use std::sync::{Arc, PoisonError};

/// Report format version (bump on any schema change).
pub const SERVE_REPORT_VERSION: u32 = 1;

/// Parameters of one `dota serve --bench` sweep.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Seed for the model weights and every traffic trace.
    pub seed: u64,
    /// Requests offered per cell.
    pub requests: usize,
    /// Batch slots.
    pub capacity: usize,
    /// Pending-queue bound.
    pub queue_capacity: usize,
    /// Model sequence length (bounds prompt + generated tokens).
    pub seq: usize,
    /// Model vocabulary.
    pub vocab: usize,
    /// Offered loads to sweep, as multiples of estimated service capacity
    /// (1.0 ≈ arrivals match what the batch can sustain).
    pub loads: Vec<f64>,
    /// Shed policies to compare on identical traffic.
    pub sheds: Vec<ShedPolicy>,
    /// Retention ladder (best first).
    pub ladder: Vec<f64>,
    /// Interactive deadline budget, microseconds.
    pub interactive_deadline_us: f64,
    /// Batch deadline budget, microseconds.
    pub batch_deadline_us: f64,
    /// Inclusive prompt-length range.
    pub prompt_len: (usize, usize),
    /// Inclusive generated-token range.
    pub new_tokens: (usize, usize),
    /// Fraction of interactive-class requests.
    pub interactive_fraction: f64,
    /// Rolling window of the engine's SLO monitor (0 = monitor off). The
    /// monitor is observation-only; the bench report is byte-identical at
    /// any setting.
    pub slo_window: usize,
    /// Record per-request lifecycle timelines ([`BenchReport::timeline`]).
    /// Observation-only: scheduling and the bench report are unchanged.
    pub timeline: bool,
    /// Shared flight recorder fed by every cell's engine (one section per
    /// cell). Observation-only: the bench report is byte-identical with or
    /// without it.
    pub flight: Option<FlightHandle>,
    /// Live gauge cell for the metrics endpoint. Observation-only.
    pub gauges: Option<Arc<ServeGauges>>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            seed: 7,
            requests: 80,
            capacity: 8,
            queue_capacity: 64,
            seq: 48,
            vocab: 16,
            loads: vec![0.8, 2.0, 4.0],
            sheds: vec![ShedPolicy::QueueOnly, ShedPolicy::Retention],
            ladder: vec![1.0, 0.5, 0.25, 0.125],
            interactive_deadline_us: 50.0,
            batch_deadline_us: 500.0,
            prompt_len: (2, 8),
            new_tokens: (2, 8),
            interactive_fraction: 0.5,
            slo_window: 64,
            timeline: false,
            flight: None,
            gauges: None,
        }
    }
}

impl BenchOptions {
    /// Validates the sweep parameters.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.loads.is_empty() {
            return Err("at least one load point required".into());
        }
        for &l in &self.loads {
            // NaN must fail too, so test for the one acceptable state.
            if !(l > 0.0 && l.is_finite()) {
                return Err(format!("load {l} must be positive"));
            }
        }
        if self.sheds.is_empty() {
            return Err("at least one shed policy required".into());
        }
        if self.prompt_len.1 + self.new_tokens.1 > self.seq {
            return Err(format!(
                "prompt+output can reach {} but seq_len is {}",
                self.prompt_len.1 + self.new_tokens.1,
                self.seq
            ));
        }
        self.serve_config(self.sheds[0]).validate()?;
        Ok(())
    }

    pub(crate) fn serve_config(&self, shed: ShedPolicy) -> ServeConfig {
        ServeConfig {
            capacity: self.capacity,
            queue_capacity: self.queue_capacity,
            shed,
            ladder: self.ladder.clone(),
            interactive_deadline_us: self.interactive_deadline_us,
            batch_deadline_us: self.batch_deadline_us,
            slo_window: self.slo_window,
            ..ServeConfig::default()
        }
    }
}

/// Aggregated measurements of one (shed policy, load) cell.
#[derive(Debug)]
pub struct CellReport {
    /// Shed policy the cell ran under.
    pub shed: ShedPolicy,
    /// Offered load multiple.
    pub load: f64,
    /// Calibrated mean interarrival gap, cycles.
    pub mean_gap_cycles: f64,
    /// Requests offered.
    pub offered: usize,
    /// Terminal counts by [`FinishReason`] name order:
    /// completed, eos, deadline_evicted, queue_expired, rejected.
    pub completed: usize,
    /// Natural EOS stops.
    pub eos: usize,
    /// Evicted mid-decode at deadline.
    pub deadline_evicted: usize,
    /// Expired while queued.
    pub queue_expired: usize,
    /// Rejected at arrival (queue full).
    pub rejected: usize,
    /// Lost to injected faults (retry cap exhausted or deadline passed
    /// during backoff). Always 0 without fault injection, and then omitted
    /// from the JSON so fault-free reports keep their exact bytes.
    pub failed: usize,
    /// Fault-retry re-admissions. Omitted from the JSON when 0.
    pub retries: u64,
    /// Requests admitted below full retention.
    pub degraded: u64,
    /// Admissions per ladder rung (index-aligned with the ladder).
    pub admitted_per_level: Vec<u64>,
    /// Scheduler steps.
    pub steps: u64,
    /// Simulated cycles start to finish.
    pub cycles: u64,
    /// Tokens generated.
    pub tokens: u64,
    /// Mean batch occupancy over all steps.
    pub mean_occupancy: f64,
    /// Peak batch occupancy.
    pub max_occupancy: usize,
    /// Queue-wait histogram, microseconds.
    pub queue_wait_us: Histogram,
    /// Time-to-first-token histogram, microseconds.
    pub ttft_us: Histogram,
    /// Inter-token gap histogram, microseconds.
    pub per_token_us: Histogram,
    /// End-to-end residence histogram, microseconds (all non-rejected
    /// terminals, so SLO misses show up in the tail).
    pub e2e_us: Histogram,
    /// SLO-monitor terminal hits (0 when the monitor was off). Not
    /// serialized; the windows already summarize SLO behaviour.
    pub slo_hits: u64,
    /// SLO-monitor terminal misses (0 when the monitor was off). Not
    /// serialized.
    pub slo_misses: u64,
    /// Closed-loop controller activity; present (and serialized) only for
    /// [`ShedPolicy::Slo`] cells, so other cells keep their exact bytes.
    pub control: Option<crate::control::ControlSummary>,
}

impl CellReport {
    fn from_outcome(
        shed: ShedPolicy,
        load: f64,
        mean_gap_cycles: f64,
        ladder: &[f64],
        out: &ServeOutcome,
    ) -> Self {
        let mut cell = CellReport {
            shed,
            load,
            mean_gap_cycles,
            offered: out.completions.len(),
            completed: 0,
            eos: 0,
            deadline_evicted: 0,
            queue_expired: 0,
            rejected: 0,
            failed: 0,
            retries: out.retries,
            degraded: out.degraded,
            admitted_per_level: vec![0; ladder.len()],
            steps: out.steps,
            cycles: out.total_cycles,
            tokens: out.tokens,
            mean_occupancy: out.mean_occupancy(),
            max_occupancy: out.max_occupancy,
            queue_wait_us: Histogram::new(),
            ttft_us: Histogram::new(),
            per_token_us: Histogram::new(),
            e2e_us: Histogram::new(),
            slo_hits: out.slo_hits,
            slo_misses: out.slo_misses,
            control: out.control,
        };
        for c in &out.completions {
            match c.reason {
                FinishReason::Completed => cell.completed += 1,
                FinishReason::Eos => cell.eos += 1,
                FinishReason::DeadlineEvicted => cell.deadline_evicted += 1,
                FinishReason::QueueExpired => cell.queue_expired += 1,
                FinishReason::Rejected => cell.rejected += 1,
                FinishReason::Failed => cell.failed += 1,
            }
            if c.admit_seq.is_some() {
                if let Some(level) = ladder.iter().position(|&r| r == c.retention) {
                    cell.admitted_per_level[level] += 1;
                }
            }
            if c.reason == FinishReason::Rejected {
                continue;
            }
            let wait = CostModel::cycles_to_us(c.queue_wait());
            cell.queue_wait_us.record(wait);
            dota_metrics::observe("serve.queue_wait_us", wait);
            if let Some(t) = c.ttft() {
                let t = CostModel::cycles_to_us(t);
                cell.ttft_us.record(t);
                dota_metrics::observe("serve.ttft_us", t);
            }
            if let Some(gap) = c.per_token() {
                let gap = gap / 1e3; // cycles -> µs on the 1 GHz clock
                cell.per_token_us.record(gap);
                dota_metrics::observe("serve.per_token_us", gap);
            }
            let e2e = CostModel::cycles_to_us(c.e2e());
            cell.e2e_us.record(e2e);
            dota_metrics::observe("serve.e2e_us", e2e);
        }
        cell
    }

    /// Requests that produced their full requested output.
    pub fn served(&self) -> usize {
        self.completed + self.eos
    }

    /// The SLO monitor's overall deadline hit rate for the cell (`None`
    /// when the monitor was off or saw no terminals).
    pub fn slo_hit_rate(&self) -> Option<f64> {
        let total = self.slo_hits + self.slo_misses;
        (total > 0).then(|| self.slo_hits as f64 / total as f64)
    }

    fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"shed\":\"{}\",\"load\":{},\"mean_gap_cycles\":{},\"offered\":{}",
            self.shed.name(),
            fmt_f64(self.load),
            fmt_f64(self.mean_gap_cycles),
            self.offered
        ));
        s.push_str(&format!(
            ",\"completed\":{},\"eos\":{},\"deadline_evicted\":{},\"queue_expired\":{},\"rejected\":{}",
            self.completed, self.eos, self.deadline_evicted, self.queue_expired, self.rejected
        ));
        // Fault-path keys appear only when the path fired, so fault-free
        // reports (every committed baseline) keep their exact bytes.
        if self.failed > 0 {
            s.push_str(&format!(",\"failed\":{}", self.failed));
        }
        if self.retries > 0 {
            s.push_str(&format!(",\"retries\":{}", self.retries));
        }
        s.push_str(&format!(",\"degraded\":{}", self.degraded));
        s.push_str(",\"admitted_per_level\":[");
        for (i, n) in self.admitted_per_level.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&n.to_string());
        }
        s.push(']');
        s.push_str(&format!(
            ",\"steps\":{},\"cycles\":{},\"tokens\":{},\"mean_occupancy\":{},\"max_occupancy\":{}",
            self.steps,
            self.cycles,
            self.tokens,
            fmt_f64(self.mean_occupancy),
            self.max_occupancy
        ));
        s.push_str(&format!(
            ",\"queue_wait_us\":{}",
            self.queue_wait_us.summary_json()
        ));
        s.push_str(&format!(",\"ttft_us\":{}", self.ttft_us.summary_json()));
        s.push_str(&format!(
            ",\"per_token_us\":{}",
            self.per_token_us.summary_json()
        ));
        s.push_str(&format!(",\"e2e_us\":{}", self.e2e_us.summary_json()));
        if let Some(ctl) = &self.control {
            s.push_str(&format!(",\"control\":{}", ctl.to_json()));
        }
        s.push('}');
        s
    }
}

/// Full result of one bench sweep.
#[derive(Debug)]
pub struct BenchReport {
    /// The options the sweep ran with.
    pub options: BenchOptions,
    /// One cell per (load, shed) pair, loads outer, sheds inner.
    pub cells: Vec<CellReport>,
    /// Per-request lifecycle timelines, present when
    /// [`BenchOptions::timeline`] was set. Serialized separately
    /// ([`TimelineReport::to_json`]) so the bench report stays
    /// byte-identical with recording on or off.
    pub timeline: Option<TimelineReport>,
}

impl BenchReport {
    /// Finds the cell for a (shed, load) pair.
    pub fn cell(&self, shed: ShedPolicy, load: f64) -> Option<&CellReport> {
        self.cells.iter().find(|c| c.shed == shed && c.load == load)
    }

    /// Canonical JSON serialization (stable key order, [`fmt_f64`]
    /// number formatting; byte-identical for identical runs).
    pub fn to_json(&self) -> String {
        let o = &self.options;
        let mut s = String::new();
        s.push_str(&format!("{{\"version\":{SERVE_REPORT_VERSION}"));
        s.push_str(&format!(
            ",\"config\":{{\"seed\":{},\"requests\":{},\"capacity\":{},\"queue_capacity\":{},\"seq\":{},\"vocab\":{}",
            o.seed, o.requests, o.capacity, o.queue_capacity, o.seq, o.vocab
        ));
        s.push_str(",\"ladder\":[");
        for (i, r) in o.ladder.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&fmt_f64(*r));
        }
        s.push(']');
        s.push_str(&format!(
            ",\"interactive_deadline_us\":{},\"batch_deadline_us\":{}",
            fmt_f64(o.interactive_deadline_us),
            fmt_f64(o.batch_deadline_us)
        ));
        s.push_str(&format!(
            ",\"prompt_len\":[{},{}],\"new_tokens\":[{},{}],\"interactive_fraction\":{}}}",
            o.prompt_len.0,
            o.prompt_len.1,
            o.new_tokens.0,
            o.new_tokens.1,
            fmt_f64(o.interactive_fraction)
        ));
        s.push_str(",\"cells\":[");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&c.to_json());
        }
        s.push_str("]}");
        s.push('\n');
        s
    }

    /// Writes the canonical JSON atomically (temp file + rename, so a
    /// crash cannot leave a torn report).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }
}

/// Traffic-trace prototype for one sweep (per-load `mean_gap_cycles` is
/// filled in by the caller). Shared with the chaos campaign so both sweeps
/// offer identical seeded arrivals for identical options.
pub(crate) fn traffic_proto(opts: &BenchOptions) -> TrafficConfig {
    TrafficConfig {
        requests: opts.requests,
        seed: opts.seed,
        mean_gap_cycles: 1.0, // placeholder, set per load by the caller
        prompt_len: opts.prompt_len,
        new_tokens: opts.new_tokens,
        interactive_fraction: opts.interactive_fraction,
        vocab: opts.vocab,
        eos: None,
    }
}

/// Dense per-request service estimate (cycles) at full occupancy, over the
/// mean context a request sees across its lifetime; offered load `L` maps
/// to a mean interarrival gap of `mean_service / L`.
pub(crate) fn mean_service_cycles(
    opts: &BenchOptions,
    cost: &CostModel,
    mcfg: &TransformerConfig,
) -> f64 {
    let mean_positions = traffic_proto(opts).mean_positions();
    let mean_context = (mean_positions / 2.0).max(1.0) as usize;
    let per_token = cost.per_token_estimate(mcfg, opts.capacity, mean_context);
    mean_positions * per_token
}

/// Runs the load-test sweep described by `opts`.
///
/// Traffic for a given load point uses the same seed for every shed
/// policy, so policies are compared on *identical* arrivals; offered load
/// is calibrated against the cost model's dense service estimate at full
/// occupancy.
///
/// # Errors
///
/// Rejects invalid options ([`BenchOptions::validate`]).
pub fn run_bench(opts: BenchOptions) -> Result<BenchReport, String> {
    opts.validate()?;
    let _sp = dota_prof::span("serve.bench");
    let mcfg = TransformerConfig::tiny_causal(opts.seq, opts.vocab);
    let mut params = ParamSet::new();
    let model = Model::init(mcfg.clone(), &mut params, opts.seed);
    let accel = AccelConfig::default();
    let cost = CostModel::new(&accel, &mcfg);

    let traffic_proto = traffic_proto(&opts);
    let mean_service = mean_service_cycles(&opts, &cost, &mcfg);

    let mut cells = Vec::with_capacity(opts.loads.len() * opts.sheds.len());
    let mut timeline_cells = Vec::new();
    for &load in &opts.loads {
        let mean_gap = mean_service / load;
        let mut traffic = traffic_proto.clone();
        traffic.mean_gap_cycles = mean_gap;
        let requests = traffic.generate();
        for &shed in &opts.sheds {
            let _cell_sp = dota_prof::span("serve.bench.cell");
            let mut engine = ServeEngine::new(&model, &params, opts.serve_config(shed), &accel)?;
            let label = format!("serve[{}@{}x]", shed.name(), fmt_f64(load));
            engine.set_label(&label);
            if opts.timeline {
                engine.enable_timeline(&label);
            }
            if let Some(flight) = &opts.flight {
                flight
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .begin_cell(&label);
                engine.set_flight(Arc::clone(flight));
            }
            if let Some(gauges) = &opts.gauges {
                engine.set_gauges(Arc::clone(gauges));
            }
            let mut outcome = engine.run(requests.clone());
            if let Some(requests) = outcome.timeline.take() {
                timeline_cells.push(CellTimeline {
                    shed,
                    load,
                    slo_windows: std::mem::take(&mut outcome.slo_windows),
                    control: outcome.control,
                    requests,
                });
            }
            cells.push(CellReport::from_outcome(
                shed,
                load,
                mean_gap,
                &opts.ladder,
                &outcome,
            ));
        }
    }
    let timeline = opts.timeline.then(|| TimelineReport {
        config: TimelineConfig {
            seed: opts.seed,
            requests: opts.requests,
            capacity: opts.capacity,
            queue_capacity: opts.queue_capacity,
            seq: opts.seq,
            vocab: opts.vocab,
            n_layers: mcfg.n_layers,
            n_heads: mcfg.n_heads,
            slo_window: opts.slo_window,
            ladder: opts.ladder.clone(),
            interactive_deadline_us: opts.interactive_deadline_us,
            batch_deadline_us: opts.batch_deadline_us,
        },
        cells: timeline_cells,
    });
    Ok(BenchReport {
        options: opts,
        cells,
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> BenchOptions {
        BenchOptions {
            requests: 40,
            loads: vec![0.8, 4.0],
            ..Default::default()
        }
    }

    #[test]
    fn bench_report_is_deterministic() {
        let _quiet = crate::quiet_faults();
        let a = run_bench(quick_opts()).unwrap().to_json();
        let b = run_bench(quick_opts()).unwrap().to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn every_offered_request_terminates() {
        let _quiet = crate::quiet_faults();
        let report = run_bench(quick_opts()).unwrap();
        for cell in &report.cells {
            assert_eq!(cell.offered, report.options.requests);
            assert_eq!(
                cell.completed
                    + cell.eos
                    + cell.deadline_evicted
                    + cell.queue_expired
                    + cell.rejected
                    + cell.failed,
                cell.offered
            );
            assert!(cell.max_occupancy <= report.options.capacity);
        }
    }

    #[test]
    fn underload_serves_nearly_everything() {
        let _quiet = crate::quiet_faults();
        let report = run_bench(quick_opts()).unwrap();
        for &shed in &report.options.sheds {
            let cell = report.cell(shed, 0.8).unwrap();
            assert!(
                cell.served() >= cell.offered * 9 / 10,
                "{} served only {}/{} at load 0.8",
                shed.name(),
                cell.served(),
                cell.offered
            );
        }
    }

    #[test]
    fn retention_shedding_beats_queueing_at_overload() {
        let _quiet = crate::quiet_faults();
        let report = run_bench(quick_opts()).unwrap();
        let queue = report.cell(ShedPolicy::QueueOnly, 4.0).unwrap();
        let shed = report.cell(ShedPolicy::Retention, 4.0).unwrap();
        assert!(shed.degraded > 0, "overload should push down the ladder");
        let qp99 = queue.e2e_us.quantile(0.99).unwrap();
        let sp99 = shed.e2e_us.quantile(0.99).unwrap();
        assert!(
            sp99 < qp99,
            "retention p99 {sp99} should beat queue-only p99 {qp99}"
        );
        assert!(shed.served() >= queue.served());
    }

    #[test]
    fn json_has_all_cells_and_round_trips_write() {
        let _quiet = crate::quiet_faults();
        let report = run_bench(quick_opts()).unwrap();
        let json = report.to_json();
        assert_eq!(json.matches("\"shed\"").count(), 4);
        assert!(json.contains("\"e2e_us\""));
        let dir = std::env::temp_dir().join("dota_serve_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        report.write(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), json);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_options_are_rejected() {
        for f in [
            |o: &mut BenchOptions| o.loads.clear(),
            |o: &mut BenchOptions| o.loads = vec![0.0],
            |o: &mut BenchOptions| o.sheds.clear(),
            |o: &mut BenchOptions| o.seq = 4,
            |o: &mut BenchOptions| o.ladder.clear(),
        ] {
            let mut o = quick_opts();
            f(&mut o);
            assert!(run_bench(o).is_err());
        }
    }
}
