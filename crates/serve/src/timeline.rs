//! Request-scoped lifecycle timelines for the serving engine.
//!
//! The bench report aggregates; the timeline *attributes*. Every request
//! that enters the engine gets a cycle-timestamped record of its whole
//! life: enqueued → admitted (or expired/rejected) → prefill → first
//! token → one [`StepRecord`] per decode step — each carrying the step's
//! weight-stream vs K/V-stream cycle split from the cost model and the
//! attended vs omitted position counts its retention produced → terminal
//! event. Because the scheduler is serial and every timestamp comes off
//! the simulated clock, the recording is a pure function of the trace and
//! configuration: the exported `timeline.json` is byte-identical across
//! `DOTA_THREADS` settings and serial vs `parallel` builds, so
//! `dota report diff` treats any drift as a behaviour change.
//!
//! Two consumers:
//!
//! * [`TimelineReport::to_json`] — the canonical document
//!   `dota analyze --serve` joins with the cost model for the
//!   degradation audit;
//! * a Chrome-trace view: when a `dota-trace` session is live, each
//!   terminal event replays the request onto per-batch-slot tracks
//!   (`<cell>.slot<lane>`) on the *simulated* clock, merging with
//!   whatever else the session is recording.
//!
//! The per-request latency decomposition is exact by construction: while
//! a request is queued or in flight the clock only advances through steps
//! it observes, so `queue + prefill + decode == e2e` and
//! `weight + kv + head_of_line == prefill + decode` hold cycle-for-cycle
//! (the audit re-checks both for every request).

use crate::engine::ShedPolicy;
use crate::request::{DeadlineClass, FinishReason, Request};
use crate::slo::SloWindow;
use dota_metrics::fmt_f64;
use std::collections::BTreeMap;
use std::path::Path;

/// Timeline format version (bump on any schema change).
pub const TIMELINE_VERSION: u32 = 1;

/// One decode step as one request experienced it. All cycle counts come
/// from the engine's cost model at the moment the step ran.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// Simulated time the step began.
    pub start: u64,
    /// Full batch-step duration (shared by every slot in the step).
    pub cycles: u64,
    /// Weight-stream share of the step (paid once, batch-amortized).
    pub weight_cycles: u64,
    /// This request's own K/V-stream cycles (scales with attended count).
    pub kv_cycles: u64,
    /// Connections attended, summed over layers × heads.
    pub attended: u64,
    /// Connections omitted by the retention window (dense minus attended).
    pub omitted: u64,
    /// Cache positions after the step (the `t` the selector windowed).
    pub context: u64,
}

/// Full lifecycle of one request (see module docs for the invariants).
#[derive(Debug, Clone)]
pub struct RequestTimeline {
    /// Request id.
    pub id: u64,
    /// SLO class.
    pub class: DeadlineClass,
    /// Arrival (enqueue) time.
    pub arrival: u64,
    /// Absolute deadline (`arrival + class budget`).
    pub deadline: u64,
    /// Retention the request was admitted at (`ladder[0]` if never
    /// admitted).
    pub retention: f64,
    /// Ladder rung index behind `retention`.
    pub level: usize,
    /// Batch-slot lane occupied while in flight (`None` if never
    /// admitted). Lanes are reused as slots free, giving the Chrome view
    /// one stable track per slot.
    pub lane: Option<usize>,
    /// Admission time (`None` if never admitted).
    pub admit: Option<u64>,
    /// Time the first generated token finished (`None` if none was).
    pub first_token: Option<u64>,
    /// Terminal time.
    pub finish: u64,
    /// Terminal reason.
    pub reason: FinishReason,
    /// Tokens generated.
    pub tokens: u64,
    /// Fault-retry attempts (0 without injected faults). A retry resets
    /// the in-flight fields, so `admit`/`first_token`/`steps` describe the
    /// final attempt; everything before it counts as queueing.
    pub retries: u64,
    /// Tokens emitted by aborted attempts and discarded (never delivered;
    /// a retry regenerates the identical stream from scratch).
    pub discarded_tokens: u64,
    /// One record per decode step the request participated in.
    pub steps: Vec<StepRecord>,
}

impl RequestTimeline {
    /// End-to-end residence, cycles.
    pub fn e2e_cycles(&self) -> u64 {
        self.finish - self.arrival
    }

    /// Queue phase: arrival to admission (whole residence if never
    /// admitted).
    pub fn queue_cycles(&self) -> u64 {
        self.admit.unwrap_or(self.finish) - self.arrival
    }

    /// Prefill phase: admission to first token (admission to terminal if
    /// no token was produced).
    pub fn prefill_cycles(&self) -> u64 {
        match (self.admit, self.first_token) {
            (Some(a), Some(f)) => f - a,
            (Some(a), None) => self.finish - a,
            (None, _) => 0,
        }
    }

    /// Decode phase: first token to terminal.
    pub fn decode_cycles(&self) -> u64 {
        self.first_token.map_or(0, |f| self.finish - f)
    }

    /// Weight-stream cycles across all steps.
    pub fn weight_cycles(&self) -> u64 {
        self.steps.iter().map(|s| s.weight_cycles).sum()
    }

    /// Own K/V-stream cycles across all steps.
    pub fn kv_cycles(&self) -> u64 {
        self.steps.iter().map(|s| s.kv_cycles).sum()
    }

    /// Head-of-line cycles: time spent inside steps on *other* slots'
    /// K/V streams (`Σ step − weight − own kv`).
    pub fn hol_cycles(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| s.cycles - s.weight_cycles - s.kv_cycles)
            .sum()
    }

    /// Attended connections summed over all steps.
    pub fn attended_total(&self) -> u64 {
        self.steps.iter().map(|s| s.attended).sum()
    }

    /// Omitted connections summed over all steps.
    pub fn omitted_total(&self) -> u64 {
        self.steps.iter().map(|s| s.omitted).sum()
    }

    /// Fraction of the deadline budget the request consumed (> 1 means it
    /// blew the budget).
    pub fn burn(&self) -> f64 {
        self.e2e_cycles() as f64 / (self.deadline - self.arrival) as f64
    }

    fn to_json(&self) -> String {
        let opt = |v: Option<u64>| v.map_or_else(|| "null".into(), |x: u64| x.to_string());
        let lane = self
            .lane
            .map_or_else(|| "null".into(), |x: usize| x.to_string());
        let mut s = format!(
            "{{\"id\":{},\"class\":\"{}\",\"reason\":\"{}\",\"retention\":{},\"level\":{},\"lane\":{}",
            self.id,
            self.class.name(),
            self.reason.name(),
            fmt_f64(self.retention),
            self.level,
            lane
        );
        s.push_str(&format!(
            ",\"arrival\":{},\"deadline\":{},\"admit\":{},\"first_token\":{},\"finish\":{},\"tokens\":{}",
            self.arrival,
            self.deadline,
            opt(self.admit),
            opt(self.first_token),
            self.finish,
            self.tokens
        ));
        s.push_str(&format!(
            ",\"attended\":{},\"omitted\":{},\"queue_cycles\":{},\"prefill_cycles\":{},\"decode_cycles\":{}",
            self.attended_total(),
            self.omitted_total(),
            self.queue_cycles(),
            self.prefill_cycles(),
            self.decode_cycles()
        ));
        s.push_str(&format!(
            ",\"weight_cycles\":{},\"kv_cycles\":{},\"hol_cycles\":{},\"burn\":{}",
            self.weight_cycles(),
            self.kv_cycles(),
            self.hol_cycles(),
            fmt_f64(self.burn())
        ));
        // Fault-path fields only appear when a fault actually touched the
        // request, so fault-free timelines keep their exact byte layout.
        if self.retries > 0 || self.discarded_tokens > 0 {
            s.push_str(&format!(
                ",\"retries\":{},\"discarded_tokens\":{}",
                self.retries, self.discarded_tokens
            ));
        }
        s.push_str(",\"steps\":[");
        for (i, st) in self.steps.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "[{},{},{},{},{},{},{}]",
                st.start,
                st.cycles,
                st.weight_cycles,
                st.kv_cycles,
                st.attended,
                st.omitted,
                st.context
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Records lifecycles for one engine run and replays terminals into any
/// live Chrome-trace session.
#[derive(Debug)]
pub struct TimelineRecorder {
    /// Track-name prefix in the Chrome view (one recorder per cell, so
    /// cells sharing a session do not collide).
    label: String,
    requests: BTreeMap<u64, RequestTimeline>,
}

impl TimelineRecorder {
    /// Creates a recorder; `label` prefixes the Chrome-trace track names.
    pub fn new(label: &str) -> Self {
        Self {
            label: label.to_owned(),
            requests: BTreeMap::new(),
        }
    }

    /// A request entered the system (before any admission decision).
    pub fn offered(&mut self, req: &Request, deadline: u64, base_retention: f64) {
        self.requests.insert(
            req.id,
            RequestTimeline {
                id: req.id,
                class: req.class,
                arrival: req.arrival,
                deadline,
                retention: base_retention,
                level: 0,
                lane: None,
                admit: None,
                first_token: None,
                finish: req.arrival,
                reason: FinishReason::Rejected,
                tokens: 0,
                retries: 0,
                discarded_tokens: 0,
                steps: Vec::new(),
            },
        );
    }

    /// A request was admitted to batch-slot `lane` at retention
    /// `ladder[level]`.
    pub fn admitted(&mut self, id: u64, now: u64, retention: f64, level: usize, lane: usize) {
        if let Some(r) = self.requests.get_mut(&id) {
            r.admit = Some(now);
            r.retention = retention;
            r.level = level;
            r.lane = Some(lane);
        }
    }

    /// One decode step ran for the request.
    pub fn step(&mut self, id: u64, record: StepRecord) {
        if let Some(r) = self.requests.get_mut(&id) {
            r.steps.push(record);
        }
    }

    /// The request's first generated token landed.
    pub fn first_token(&mut self, id: u64, now: u64) {
        if let Some(r) = self.requests.get_mut(&id) {
            if r.first_token.is_none() {
                r.first_token = Some(now);
            }
        }
    }

    /// An injected fault aborted the request's current attempt and a retry
    /// was scheduled: the in-flight fields reset (the time spent so far
    /// reads as queueing, keeping the phase decomposition exact for the
    /// final attempt) and the aborted attempt's tokens count as discarded.
    pub fn retried(&mut self, id: u64, discarded_tokens: u64) {
        if let Some(r) = self.requests.get_mut(&id) {
            r.retries += 1;
            r.discarded_tokens += discarded_tokens;
            r.admit = None;
            r.first_token = None;
            r.lane = None;
            r.steps.clear();
        }
    }

    /// Tokens of a final, non-retried attempt were discarded (the request
    /// failed with its retry cap exhausted).
    pub fn discarded(&mut self, id: u64, discarded_tokens: u64) {
        if let Some(r) = self.requests.get_mut(&id) {
            r.discarded_tokens += discarded_tokens;
            // The failed attempt delivered nothing, so its first-token
            // timestamp is not a serving event; fold decode into prefill.
            r.first_token = None;
        }
    }

    /// The request left the system; replays its spans into any live trace
    /// session.
    pub fn finished(&mut self, id: u64, reason: FinishReason, now: u64, tokens: u64) {
        let Some(r) = self.requests.get_mut(&id) else {
            return;
        };
        r.reason = reason;
        r.finish = now;
        r.tokens = tokens;
        if !dota_trace::enabled() {
            return;
        }
        // Queued phase on the cell's shared queue track (skipped when
        // admission was immediate — a zero-width span is just noise).
        let queued_until = r.admit.unwrap_or(r.finish);
        if queued_until > r.arrival {
            dota_trace::sim_event_args(
                &format!("{}.queue", self.label),
                &format!("req{} queued", r.id),
                r.arrival,
                queued_until - r.arrival,
                &[("deadline", r.deadline)],
            );
        }
        let (Some(lane), Some(admit)) = (r.lane, r.admit) else {
            return;
        };
        let track = format!("{}.slot{}", self.label, lane);
        dota_trace::sim_event_args(
            &track,
            &format!("req{} {}", r.id, reason.name()),
            admit,
            r.finish - admit,
            &[
                ("retention_milli", (r.retention * 1e3).round() as u64),
                ("level", r.level as u64),
                ("tokens", r.tokens),
                ("attended", r.attended_total()),
                ("omitted", r.omitted_total()),
            ],
        );
        for (i, st) in r.steps.iter().enumerate() {
            dota_trace::sim_event_args(
                &track,
                &format!("req{}[{}]", r.id, i),
                st.start,
                st.cycles,
                &[
                    ("weight_cycles", st.weight_cycles),
                    ("kv_cycles", st.kv_cycles),
                    ("attended", st.attended),
                    ("omitted", st.omitted),
                    ("context", st.context),
                ],
            );
        }
    }

    /// Consumes the recorder, returning the records sorted by request id.
    pub fn into_requests(self) -> Vec<RequestTimeline> {
        self.requests.into_values().collect()
    }
}

/// Timelines of one (shed policy, load) bench cell.
#[derive(Debug)]
pub struct CellTimeline {
    /// Shed policy the cell ran under.
    pub shed: ShedPolicy,
    /// Offered load multiple.
    pub load: f64,
    /// SLO monitor window summaries (empty when the monitor was off).
    pub slo_windows: Vec<SloWindow>,
    /// Closed-loop controller activity, present for
    /// [`ShedPolicy::Slo`] cells only and then serialized, so the audit
    /// can cross-check controller behaviour; other cells keep their
    /// exact bytes.
    pub control: Option<crate::control::ControlSummary>,
    /// Per-request lifecycles, sorted by id.
    pub requests: Vec<RequestTimeline>,
}

impl CellTimeline {
    fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"shed\":\"{}\",\"load\":{},\"slo_windows\":[",
            self.shed.name(),
            fmt_f64(self.load)
        );
        for (i, w) in self.slo_windows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"completions\":{},\"end_cycle\":{},\"hits\":{},\"hit_rate\":{},\"mean_burn\":{}}}",
                w.completions,
                w.end_cycle,
                w.hits,
                fmt_f64(w.hit_rate),
                fmt_f64(w.mean_burn)
            ));
        }
        s.push(']');
        if let Some(ctl) = &self.control {
            s.push_str(&format!(",\"control\":{}", ctl.to_json()));
        }
        s.push_str(",\"requests\":[");
        for (i, r) in self.requests.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&r.to_json());
        }
        s.push_str("]}");
        s
    }
}

/// The model/engine parameters the audit needs to re-derive expected
/// attention counts from the timelines.
#[derive(Debug, Clone)]
pub struct TimelineConfig {
    /// Seed for weights and traffic.
    pub seed: u64,
    /// Requests offered per cell.
    pub requests: usize,
    /// Batch slots.
    pub capacity: usize,
    /// Pending-queue bound.
    pub queue_capacity: usize,
    /// Model sequence length.
    pub seq: usize,
    /// Model vocabulary.
    pub vocab: usize,
    /// Transformer layers.
    pub n_layers: usize,
    /// Attention heads per layer.
    pub n_heads: usize,
    /// SLO monitor window (0 = monitor off).
    pub slo_window: usize,
    /// Retention ladder, best first.
    pub ladder: Vec<f64>,
    /// Interactive deadline budget, microseconds.
    pub interactive_deadline_us: f64,
    /// Batch deadline budget, microseconds.
    pub batch_deadline_us: f64,
}

/// The full canonical timeline document of one bench sweep.
#[derive(Debug)]
pub struct TimelineReport {
    /// Engine/model parameters shared by every cell.
    pub config: TimelineConfig,
    /// One entry per (load, shed) cell, loads outer, sheds inner.
    pub cells: Vec<CellTimeline>,
}

impl TimelineReport {
    /// Canonical JSON serialization (stable key order, [`fmt_f64`] number
    /// formatting; byte-identical for identical runs).
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let mut s = format!("{{\"version\":{TIMELINE_VERSION}");
        s.push_str(&format!(
            ",\"config\":{{\"seed\":{},\"requests\":{},\"capacity\":{},\"queue_capacity\":{},\"seq\":{},\"vocab\":{}",
            c.seed, c.requests, c.capacity, c.queue_capacity, c.seq, c.vocab
        ));
        s.push_str(&format!(
            ",\"n_layers\":{},\"n_heads\":{},\"slo_window\":{}",
            c.n_layers, c.n_heads, c.slo_window
        ));
        s.push_str(",\"ladder\":[");
        for (i, r) in c.ladder.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&fmt_f64(*r));
        }
        s.push(']');
        s.push_str(&format!(
            ",\"interactive_deadline_us\":{},\"batch_deadline_us\":{}}}",
            fmt_f64(c.interactive_deadline_us),
            fmt_f64(c.batch_deadline_us)
        ));
        s.push_str(",\"cells\":[");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&cell.to_json());
        }
        s.push_str("]}");
        s.push('\n');
        s
    }

    /// Writes the canonical JSON atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival: u64) -> Request {
        Request {
            id,
            arrival,
            prompt: vec![1, 2],
            max_new: 2,
            eos: None,
            class: DeadlineClass::Interactive,
        }
    }

    fn step(start: u64, cycles: u64, weight: u64, kv: u64) -> StepRecord {
        StepRecord {
            start,
            cycles,
            weight_cycles: weight,
            kv_cycles: kv,
            attended: 4,
            omitted: 2,
            context: 3,
        }
    }

    #[test]
    fn decomposition_sums_to_e2e() {
        let mut tl = TimelineRecorder::new("t");
        tl.offered(&req(1, 100), 100 + 50_000, 1.0);
        tl.admitted(1, 150, 0.5, 1, 0);
        tl.step(1, step(150, 100, 40, 20));
        tl.first_token(1, 250);
        tl.step(1, step(250, 110, 40, 25));
        tl.finished(1, FinishReason::Completed, 360, 2);
        let r = &tl.into_requests()[0];
        assert_eq!(r.queue_cycles(), 50);
        assert_eq!(r.prefill_cycles(), 100);
        assert_eq!(r.decode_cycles(), 110);
        assert_eq!(
            r.queue_cycles() + r.prefill_cycles() + r.decode_cycles(),
            r.e2e_cycles()
        );
        assert_eq!(r.weight_cycles(), 80);
        assert_eq!(r.kv_cycles(), 45);
        assert_eq!(r.hol_cycles(), 210 - 80 - 45);
        assert_eq!(
            r.weight_cycles() + r.kv_cycles() + r.hol_cycles(),
            r.prefill_cycles() + r.decode_cycles()
        );
        assert_eq!(r.attended_total(), 8);
        assert_eq!(r.omitted_total(), 4);
        assert!((r.burn() - 260.0 / 50_000.0).abs() < 1e-12);
    }

    #[test]
    fn never_admitted_requests_decompose_as_pure_queueing() {
        let mut tl = TimelineRecorder::new("t");
        tl.offered(&req(3, 10), 510, 1.0);
        tl.finished(3, FinishReason::QueueExpired, 510, 0);
        let r = &tl.into_requests()[0];
        assert_eq!(r.queue_cycles(), 500);
        assert_eq!(r.prefill_cycles(), 0);
        assert_eq!(r.decode_cycles(), 0);
        assert_eq!(r.e2e_cycles(), 500);
        assert_eq!(r.burn(), 1.0);
        assert_eq!(r.lane, None);
    }

    #[test]
    fn json_is_canonical_and_null_safe() {
        let mut tl = TimelineRecorder::new("t");
        tl.offered(&req(2, 0), 50_000, 1.0);
        tl.finished(2, FinishReason::Rejected, 0, 0);
        let report = TimelineReport {
            config: TimelineConfig {
                seed: 7,
                requests: 1,
                capacity: 8,
                queue_capacity: 64,
                seq: 48,
                vocab: 16,
                n_layers: 2,
                n_heads: 2,
                slo_window: 64,
                ladder: vec![1.0, 0.5],
                interactive_deadline_us: 50.0,
                batch_deadline_us: 500.0,
            },
            cells: vec![CellTimeline {
                shed: ShedPolicy::Retention,
                load: 4.0,
                slo_windows: Vec::new(),
                control: None,
                requests: tl.into_requests(),
            }],
        };
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"lane\":null"));
        assert!(a.contains("\"admit\":null"));
        assert!(a.contains("\"reason\":\"rejected\""));
        assert!(a.ends_with("\n"));
        // The document parses back as JSON.
        assert!(serde_json::parse(&a).is_ok());
    }

    #[test]
    fn finished_replays_slot_tracks_into_a_live_session() {
        let t = dota_trace::session("timeline-chrome");
        let mut tl = TimelineRecorder::new("cellA");
        tl.offered(&req(5, 0), 50_000, 1.0);
        tl.admitted(5, 40, 1.0, 0, 2);
        tl.step(5, step(40, 100, 40, 20));
        tl.finished(5, FinishReason::Completed, 140, 1);
        let json = t.chrome_trace_json();
        assert!(json.contains("cellA.slot2"), "{json}");
        assert!(json.contains("req5 completed"));
        assert!(json.contains("\"retention_milli\":1000"));
        assert!(json.contains("req5 queued"));
    }
}
