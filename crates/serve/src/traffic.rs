//! Seeded deterministic traffic generation.
//!
//! Load tests are only comparable if the offered traffic is exactly
//! reproducible, so the generator is a pure function of a
//! [`TrafficConfig`]: a seeded [`StdRng`] drives heavy-tailed (bounded
//! Pareto) interarrival gaps and uniform prompt/output lengths. Two runs
//! with the same configuration — on any machine, any thread count — offer
//! the identical request trace, which is what lets `dota serve --bench`
//! compare shed policies on the *same* arrivals and emit byte-identical
//! reports.

use crate::request::{DeadlineClass, Request};
use rand::{Rng, SeedableRng, StdRng};

/// Pareto shape for interarrival gaps. `1 < α < 2` gives the bursty,
/// infinite-variance arrivals that make tail latency interesting.
const PARETO_ALPHA: f64 = 1.5;

/// Gap cap as a multiple of the mean, so one extreme draw cannot turn a
/// bounded bench into a mostly-idle trace.
const GAP_CAP: f64 = 50.0;

/// Parameters of one deterministic traffic trace.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Number of requests to offer.
    pub requests: usize,
    /// RNG seed; same seed, same trace, bit for bit.
    pub seed: u64,
    /// Mean interarrival gap in cycles (sets the offered load).
    pub mean_gap_cycles: f64,
    /// Inclusive prompt-length range in tokens.
    pub prompt_len: (usize, usize),
    /// Inclusive generated-token range.
    pub new_tokens: (usize, usize),
    /// Fraction of requests in the interactive class.
    pub interactive_fraction: f64,
    /// Vocabulary size; prompt tokens are drawn from `1..vocab`.
    pub vocab: usize,
    /// EOS token attached to every request (usually `None` in benches so
    /// output length stays controlled).
    pub eos: Option<usize>,
}

impl TrafficConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.requests == 0 {
            return Err("traffic needs at least one request".into());
        }
        // NaN must fail too, so test for the one acceptable state.
        if !(self.mean_gap_cycles > 0.0 && self.mean_gap_cycles.is_finite()) {
            return Err("mean interarrival gap must be positive".into());
        }
        let (p0, p1) = self.prompt_len;
        let (n0, n1) = self.new_tokens;
        if p0 == 0 || p0 > p1 {
            return Err(format!("bad prompt length range {p0}..={p1}"));
        }
        if n0 == 0 || n0 > n1 {
            return Err(format!("bad new-token range {n0}..={n1}"));
        }
        if !(0.0..=1.0).contains(&self.interactive_fraction) {
            return Err("interactive fraction must be in [0, 1]".into());
        }
        if self.vocab < 2 {
            return Err("vocabulary must have at least 2 tokens".into());
        }
        Ok(())
    }

    /// Mean request length (prompt + generated tokens) under this
    /// configuration, used to calibrate offered load.
    pub fn mean_positions(&self) -> f64 {
        let (p0, p1) = self.prompt_len;
        let (n0, n1) = self.new_tokens;
        (p0 + p1) as f64 / 2.0 + (n0 + n1) as f64 / 2.0
    }

    /// Generates the trace: `requests` requests sorted by arrival.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid ([`Self::validate`]).
    pub fn generate(&self) -> Vec<Request> {
        if let Err(e) = self.validate() {
            panic!("invalid traffic config: {e}");
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Bounded Pareto: gap = xm · u^(-1/α) has mean α·xm/(α-1), so pick
        // xm to hit the requested mean (the cap trims a negligible share).
        let xm = self.mean_gap_cycles * (PARETO_ALPHA - 1.0) / PARETO_ALPHA;
        let cap = self.mean_gap_cycles * GAP_CAP;
        let mut now = 0u64;
        let mut out = Vec::with_capacity(self.requests);
        for id in 0..self.requests {
            let u: f64 = rng.gen();
            let gap = (xm * (1.0 - u).powf(-1.0 / PARETO_ALPHA)).min(cap);
            now += gap.round() as u64;
            let plen = rng.gen_range(self.prompt_len.0..=self.prompt_len.1);
            let max_new = rng.gen_range(self.new_tokens.0..=self.new_tokens.1);
            let prompt = (0..plen).map(|_| rng.gen_range(1..self.vocab)).collect();
            let interactive = rng.gen::<f64>() < self.interactive_fraction;
            out.push(Request {
                id: id as u64,
                arrival: now,
                prompt,
                max_new,
                eos: self.eos,
                class: if interactive {
                    DeadlineClass::Interactive
                } else {
                    DeadlineClass::Batch
                },
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TrafficConfig {
        TrafficConfig {
            requests: 200,
            seed: 7,
            mean_gap_cycles: 1000.0,
            prompt_len: (2, 6),
            new_tokens: (1, 8),
            interactive_fraction: 0.5,
            vocab: 16,
            eos: None,
        }
    }

    #[test]
    fn same_seed_same_trace() {
        let a = cfg().generate();
        let b = cfg().generate();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.prompt, y.prompt);
            assert_eq!(x.max_new, y.max_new);
            assert_eq!(x.class, y.class);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = cfg().generate();
        let mut c = cfg();
        c.seed = 8;
        let b = c.generate();
        assert!(a.iter().zip(&b).any(|(x, y)| x.arrival != y.arrival));
    }

    #[test]
    fn trace_is_sorted_and_in_bounds() {
        let reqs = cfg().generate();
        for w in reqs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        for r in &reqs {
            assert!((2..=6).contains(&r.prompt.len()));
            assert!((1..=8).contains(&r.max_new));
            assert!(r.prompt.iter().all(|&t| (1..16).contains(&t)));
        }
    }

    #[test]
    fn mean_gap_lands_near_target() {
        let mut c = cfg();
        c.requests = 4000;
        let reqs = c.generate();
        let span = reqs.last().unwrap().arrival as f64;
        let mean = span / (c.requests - 1) as f64;
        // Heavy-tailed, so generous tolerance; the cap keeps it finite.
        assert!(
            mean > 0.4 * c.mean_gap_cycles && mean < 2.5 * c.mean_gap_cycles,
            "observed mean gap {mean}"
        );
    }

    #[test]
    fn gaps_are_heavy_tailed_but_capped() {
        let mut c = cfg();
        c.requests = 4000;
        let reqs = c.generate();
        let gaps: Vec<u64> = reqs
            .windows(2)
            .map(|w| w[1].arrival - w[0].arrival)
            .collect();
        let max = *gaps.iter().max().unwrap() as f64;
        assert!(max <= c.mean_gap_cycles * GAP_CAP + 1.0);
        // A genuinely heavy tail: the max gap dwarfs the median.
        let mut sorted = gaps.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        assert!(max > 10.0 * median, "max {max} vs median {median}");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        for f in [
            |c: &mut TrafficConfig| c.requests = 0,
            |c: &mut TrafficConfig| c.mean_gap_cycles = 0.0,
            |c: &mut TrafficConfig| c.prompt_len = (0, 3),
            |c: &mut TrafficConfig| c.new_tokens = (5, 2),
            |c: &mut TrafficConfig| c.interactive_fraction = 1.5,
            |c: &mut TrafficConfig| c.vocab = 1,
        ] {
            let mut c = cfg();
            f(&mut c);
            assert!(c.validate().is_err());
        }
    }
}
