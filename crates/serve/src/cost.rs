//! Decode step latency model.
//!
//! Mirrors [`dota_accel::decode::simulate_decode`]'s memory-bound decode
//! accounting, restructured for *batched* steps: one scheduler step decodes
//! one token for every in-flight request, so the layer weights stream from
//! DRAM **once per step** (amortized over the whole batch — the reason
//! continuous batching raises throughput at all), while K/V-cache traffic
//! is paid per request and scales with how many cached connections its
//! attention actually touched. Retention shedding attacks exactly that
//! second, per-request term.

use dota_accel::{energy, AccelConfig};
use dota_transformer::TransformerConfig;

/// Bytes per FX16 value streamed from DRAM (matches `accel::decode`).
const BYTES: u64 = 2;

/// Cycle accounting for one continuous-batching decode step.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Per-step weight traffic in bytes (all layers: QKV + output + FFN).
    weight_bytes: u64,
    /// DRAM bytes fetched per attended connection (K and V vectors).
    bytes_per_connection: u64,
    /// Sustained DRAM bandwidth in bytes per cycle (1 GHz clock).
    bw: f64,
}

impl CostModel {
    /// Builds the model for an accelerator configuration and model shape.
    pub fn new(accel: &AccelConfig, model: &TransformerConfig) -> Self {
        let d = model.d_model as u64;
        let d_ff = model.d_ff as u64;
        let layers = model.n_layers as u64;
        Self {
            weight_bytes: layers * (4 * d * d + 2 * d * d_ff) * BYTES,
            bytes_per_connection: 2 * model.head_dim() as u64 * BYTES,
            bw: accel.dram_gbps,
        }
    }

    /// Cycles to stream the layer weights once (paid once per step,
    /// independent of batch occupancy).
    pub fn weight_cycles(&self) -> u64 {
        (self.weight_bytes as f64 / self.bw).ceil() as u64
    }

    /// Cycles to stream one request's K/V traffic for a step in which its
    /// attention touched `attended` cached connections (summed over all
    /// layers and heads, as reported by
    /// [`Model::decode_step`](dota_transformer::Model::decode_step)).
    pub fn kv_cycles(&self, attended: u64) -> u64 {
        ((attended * self.bytes_per_connection) as f64 / self.bw).ceil() as u64
    }

    /// Total cycles of one step: one weight stream plus every member's K/V
    /// traffic.
    pub fn step_cycles(&self, attended: impl IntoIterator<Item = u64>) -> u64 {
        let mut cycles = self.weight_cycles();
        for a in attended {
            cycles += self.kv_cycles(a);
        }
        cycles
    }

    /// Rough dense per-token service-cycle estimate for one request in a
    /// batch of `occupancy`, attending over `context` cached positions:
    /// its share of the weight stream plus its own dense K/V traffic. The
    /// traffic generator calibrates offered load against this.
    pub fn per_token_estimate(
        &self,
        model: &TransformerConfig,
        occupancy: usize,
        context: usize,
    ) -> f64 {
        let connections = (model.n_layers * model.n_heads * context) as u64;
        self.weight_cycles() as f64 / occupancy.max(1) as f64
            + (connections * self.bytes_per_connection) as f64 / self.bw
    }

    /// Converts cycles on the 1 GHz model clock to microseconds.
    pub fn cycles_to_us(cycles: u64) -> f64 {
        cycles as f64 / (energy::FREQ_GHZ * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CostModel, TransformerConfig) {
        let model = TransformerConfig::tiny_causal(48, 16);
        (CostModel::new(&AccelConfig::default(), &model), model)
    }

    #[test]
    fn weight_stream_is_paid_once_per_step() {
        let (cost, _) = setup();
        let solo = cost.step_cycles([100]);
        let batch = cost.step_cycles([100, 100, 100, 100]);
        // Four members cost far less than four solo steps.
        assert!(batch < 4 * solo, "batch {batch} vs 4x solo {}", 4 * solo);
        assert_eq!(
            batch - cost.weight_cycles(),
            4 * (solo - cost.weight_cycles())
        );
    }

    #[test]
    fn kv_cycles_scale_with_attended_connections() {
        let (cost, _) = setup();
        let sparse = cost.kv_cycles(50);
        let dense = cost.kv_cycles(400);
        assert!(dense >= 8 * sparse - 8, "{dense} vs {sparse}");
        assert_eq!(cost.kv_cycles(0), 0);
    }

    #[test]
    fn estimate_brackets_actual_dense_step_share() {
        let (cost, model) = setup();
        let context = 24;
        let attended = (model.n_layers * model.n_heads * context) as u64;
        let occupancy = 8;
        let est = cost.per_token_estimate(&model, occupancy, context);
        let actual_share =
            cost.weight_cycles() as f64 / occupancy as f64 + cost.kv_cycles(attended) as f64;
        assert!((est - actual_share).abs() <= 1.0, "{est} vs {actual_share}");
    }

    #[test]
    fn cycles_to_us_uses_model_clock() {
        assert_eq!(CostModel::cycles_to_us(1000), 1.0);
    }
}
