//! Retention-degraded decode selection.
//!
//! The serving layer needs a [`DecodeSelector`] whose cost knob is a plain
//! retention ratio and whose decisions are a pure function of the cache
//! length — so a shed request's output is bit-identical whatever batch it
//! shares steps with, and whatever thread decoded it. [`WindowSelector`]
//! keeps the most recent `ceil(retention · t)` cached positions (recency is
//! the strongest single prior for causal attention; the DOTA detector's
//! learned selection plugs in through the same trait via
//! `dota_detector::DotaDecodeSelector` when accuracy matters more than
//! isolation).

use dota_tensor::Matrix;
use dota_transformer::DecodeSelector;

/// Attends to the most recent `ceil(retention · t)` cached positions.
///
/// `retention == 1.0` reports dense attention (`None`), so an undegraded
/// request is indistinguishable from one decoded outside the service.
#[derive(Debug, Clone, Copy)]
pub struct WindowSelector {
    retention: f64,
}

impl WindowSelector {
    /// A selector keeping `retention` of the cache per step.
    ///
    /// # Panics
    ///
    /// Panics if `retention` is outside `(0, 1]`.
    pub fn new(retention: f64) -> Self {
        assert!(
            retention > 0.0 && retention <= 1.0,
            "retention {retention} out of range (0, 1]"
        );
        Self { retention }
    }

    /// The configured retention ratio.
    pub fn retention(&self) -> f64 {
        self.retention
    }
}

impl DecodeSelector for WindowSelector {
    fn select(&self, _l: usize, _h: usize, _x: &Matrix, cache_len: usize) -> Option<Vec<u32>> {
        if self.retention >= 1.0 {
            return None;
        }
        let keep = ((self.retention * cache_len as f64).ceil() as usize).clamp(1, cache_len);
        Some(((cache_len - keep)..cache_len).map(|i| i as u32).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_retention_is_dense() {
        let s = WindowSelector::new(1.0);
        assert_eq!(s.select(0, 0, &Matrix::zeros(1, 4), 10), None);
    }

    #[test]
    fn window_keeps_most_recent_share() {
        let s = WindowSelector::new(0.25);
        let kept = s.select(1, 0, &Matrix::zeros(1, 4), 8).unwrap();
        assert_eq!(kept, vec![6, 7]);
        // Never empty, even for a single cached position.
        assert_eq!(s.select(0, 0, &Matrix::zeros(1, 4), 1).unwrap(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_retention_rejected() {
        let _ = WindowSelector::new(0.0);
    }

    #[test]
    fn window_never_exceeds_context() {
        // A window wider than the cache degenerates to dense coverage of
        // whatever exists: retention 0.5 of a 1-long cache is 1 position.
        let s = WindowSelector::new(0.5);
        for t in 1..=4usize {
            let kept = s.select(0, 0, &Matrix::zeros(1, 4), t).unwrap();
            assert!(kept.len() <= t, "t={t}: kept {} positions", kept.len());
            assert_eq!(
                kept,
                ((t - kept.len())..t).map(|i| i as u32).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn ceil_rounding_at_eighth_retention() {
        // The bottom ladder rung (r = 0.125) stays at one position until
        // the ninth cached token: ceil(0.125·8) = 1, ceil(0.125·9) = 2.
        let s = WindowSelector::new(0.125);
        for t in 1..=8usize {
            assert_eq!(
                s.select(0, 0, &Matrix::zeros(1, 4), t).unwrap().len(),
                1,
                "t={t}"
            );
        }
        assert_eq!(s.select(0, 0, &Matrix::zeros(1, 4), 9).unwrap(), vec![7, 8]);
        assert_eq!(s.select(0, 0, &Matrix::zeros(1, 4), 16).unwrap().len(), 2);
        assert_eq!(s.select(0, 0, &Matrix::zeros(1, 4), 17).unwrap().len(), 3);
    }

    #[test]
    fn single_token_context_always_attended() {
        // Whatever the rung, a 1-token cache is fully attended — the clamp
        // floor, not the ceil, decides.
        for r in [0.125, 0.25, 0.5, 0.999] {
            let s = WindowSelector::new(r);
            assert_eq!(
                s.select(0, 0, &Matrix::zeros(1, 4), 1).unwrap(),
                vec![0],
                "r={r}"
            );
        }
    }

    #[test]
    fn ladder_edges_match_closed_form() {
        // Every ladder rung × context agrees with clamp(ceil(r·t), 1, t) —
        // the same closed form the timeline audit re-derives.
        for r in [1.0, 0.5, 0.25, 0.125] {
            let s = WindowSelector::new(r);
            for t in 1..=64usize {
                let expect = ((r * t as f64).ceil() as usize).clamp(1, t);
                let got = match s.select(0, 0, &Matrix::zeros(1, 4), t) {
                    None => t, // dense
                    Some(kept) => kept.len(),
                };
                assert_eq!(got, expect, "r={r} t={t}");
            }
        }
    }
}
