//! Retention-degraded decode selection.
//!
//! The serving layer needs a [`DecodeSelector`] whose cost knob is a plain
//! retention ratio and whose decisions are a pure function of the cache
//! length — so a shed request's output is bit-identical whatever batch it
//! shares steps with, and whatever thread decoded it. [`WindowSelector`]
//! keeps the most recent `ceil(retention · t)` cached positions (recency is
//! the strongest single prior for causal attention; the DOTA detector's
//! learned selection plugs in through the same trait via
//! `dota_detector::DotaDecodeSelector` when accuracy matters more than
//! isolation).

use dota_tensor::Matrix;
use dota_transformer::DecodeSelector;

/// Attends to the most recent `ceil(retention · t)` cached positions.
///
/// `retention == 1.0` reports dense attention (`None`), so an undegraded
/// request is indistinguishable from one decoded outside the service.
#[derive(Debug, Clone, Copy)]
pub struct WindowSelector {
    retention: f64,
}

impl WindowSelector {
    /// A selector keeping `retention` of the cache per step.
    ///
    /// # Panics
    ///
    /// Panics if `retention` is outside `(0, 1]`.
    pub fn new(retention: f64) -> Self {
        assert!(
            retention > 0.0 && retention <= 1.0,
            "retention {retention} out of range (0, 1]"
        );
        Self { retention }
    }

    /// The configured retention ratio.
    pub fn retention(&self) -> f64 {
        self.retention
    }
}

impl DecodeSelector for WindowSelector {
    fn select(&self, _l: usize, _h: usize, _x: &Matrix, cache_len: usize) -> Option<Vec<u32>> {
        if self.retention >= 1.0 {
            return None;
        }
        let keep = ((self.retention * cache_len as f64).ceil() as usize).clamp(1, cache_len);
        Some(((cache_len - keep)..cache_len).map(|i| i as u32).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_retention_is_dense() {
        let s = WindowSelector::new(1.0);
        assert_eq!(s.select(0, 0, &Matrix::zeros(1, 4), 10), None);
    }

    #[test]
    fn window_keeps_most_recent_share() {
        let s = WindowSelector::new(0.25);
        let kept = s.select(1, 0, &Matrix::zeros(1, 4), 8).unwrap();
        assert_eq!(kept, vec![6, 7]);
        // Never empty, even for a single cached position.
        assert_eq!(s.select(0, 0, &Matrix::zeros(1, 4), 1).unwrap(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_retention_rejected() {
        let _ = WindowSelector::new(0.0);
    }
}
