//! Requests, deadline classes and terminal outcomes.

/// SLO class of a request. Admission is FIFO *within* a class;
/// [`Interactive`](DeadlineClass::Interactive) requests are admitted ahead
/// of [`Batch`](DeadlineClass::Batch) ones and carry a tighter deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeadlineClass {
    /// Latency-sensitive traffic (tight deadline, admitted first).
    Interactive,
    /// Throughput traffic (loose deadline).
    Batch,
}

impl DeadlineClass {
    /// Stable lower-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DeadlineClass::Interactive => "interactive",
            DeadlineClass::Batch => "batch",
        }
    }
}

/// One inference request offered to the service.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen id, echoed in the [`Completion`].
    pub id: u64,
    /// Arrival time in accelerator cycles (1 GHz model clock).
    pub arrival: u64,
    /// Prompt token ids (non-empty; consumed one per scheduler step).
    pub prompt: Vec<usize>,
    /// Number of new tokens to generate (at least 1).
    pub max_new: usize,
    /// Generation stops early if this token is produced.
    pub eos: Option<usize>,
    /// SLO class (selects the deadline budget and admission order).
    pub class: DeadlineClass,
}

impl Request {
    /// Total cache positions the request needs (`prompt + max_new`).
    pub fn total_positions(&self) -> usize {
        self.prompt.len() + self.max_new
    }
}

/// Why a request left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishReason {
    /// Generated all `max_new` tokens.
    Completed,
    /// Generated its EOS token before `max_new`.
    Eos,
    /// Deadline passed while decoding; evicted with partial output.
    DeadlineEvicted,
    /// Deadline passed while still queued; never admitted.
    QueueExpired,
    /// The pending queue was full at arrival.
    Rejected,
    /// Lost to injected faults: the retry cap was exhausted, or the
    /// deadline passed while the request waited out a retry backoff.
    /// Only reachable with serve-layer fault injection active.
    Failed,
}

impl FinishReason {
    /// Stable lower-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            FinishReason::Completed => "completed",
            FinishReason::Eos => "eos",
            FinishReason::DeadlineEvicted => "deadline_evicted",
            FinishReason::QueueExpired => "queue_expired",
            FinishReason::Rejected => "rejected",
            FinishReason::Failed => "failed",
        }
    }

    /// `true` when the request produced its full requested output
    /// (all tokens, or a natural EOS stop).
    pub fn is_served(self) -> bool {
        matches!(self, FinishReason::Completed | FinishReason::Eos)
    }
}

/// Terminal record of one request, with the timestamps the SLO histograms
/// are built from. All times are cycles on the simulated clock.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Request id.
    pub id: u64,
    /// SLO class.
    pub class: DeadlineClass,
    /// Why the request terminated.
    pub reason: FinishReason,
    /// Attention retention the request was admitted at (the shed policy's
    /// choice; `ladder[0]` when it never reached a slot).
    pub retention: f64,
    /// Tokens generated (possibly partial under eviction; includes the EOS
    /// token when the stop was natural).
    pub tokens: Vec<usize>,
    /// Arrival time.
    pub arrival: u64,
    /// Admission time (`None` when never admitted).
    pub admit: Option<u64>,
    /// Time the first generated token finished (`None` when none was).
    pub first_token: Option<u64>,
    /// Time the request left the system.
    pub finish: u64,
    /// Global admission sequence number (`None` when never admitted);
    /// strictly increasing in admission order, so FIFO properties are
    /// checkable from completions alone. Fault retries re-admit under a
    /// fresh sequence number, so this reflects the final attempt.
    pub admit_seq: Option<u64>,
    /// Fault-retry attempts the request went through (0 without injected
    /// faults; each retry restarts decode from scratch).
    pub retries: u64,
}

impl Completion {
    /// Queue wait in cycles (admission minus arrival; full residence time
    /// for requests that expired or were rejected in the queue).
    pub fn queue_wait(&self) -> u64 {
        self.admit
            .unwrap_or(self.finish)
            .saturating_sub(self.arrival)
    }

    /// Time-to-first-token in cycles (`None` when no token was produced).
    pub fn ttft(&self) -> Option<u64> {
        self.first_token.map(|t| t.saturating_sub(self.arrival))
    }

    /// End-to-end residence time in cycles (arrival to exit, whatever the
    /// outcome — an expired request *did* wait that long).
    pub fn e2e(&self) -> u64 {
        self.finish.saturating_sub(self.arrival)
    }

    /// Mean inter-token gap in cycles (`None` with fewer than two tokens).
    pub fn per_token(&self) -> Option<f64> {
        let first = self.first_token?;
        if self.tokens.len() < 2 {
            return None;
        }
        let span = self.finish.saturating_sub(first);
        Some(span as f64 / (self.tokens.len() - 1) as f64)
    }
}
