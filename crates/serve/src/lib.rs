//! Continuous-batching inference service with retention-based load
//! shedding (DOTA reproduction, serving layer).
//!
//! The DOTA accelerator's decode mode makes weak-attention omission a
//! *runtime* knob: lower retention means less K/V-cache DRAM traffic per
//! token, which means a faster token. This crate turns that knob into a
//! load-shedding policy for a batched inference service:
//!
//! - [`ServeEngine`] — a continuous-batching scheduler over the real
//!   incremental decode path ([`dota_transformer::Model::decode_step`]):
//!   requests join at step boundaries, leave on completion/EOS/deadline,
//!   and every step's latency comes from a DRAM-traffic [`CostModel`]
//!   (weights streamed once per step, K/V per request) on the simulated
//!   1 GHz cycle clock.
//! - [`ShedPolicy`] — under overload, either queue at full quality
//!   ([`ShedPolicy::QueueOnly`]) or admit at progressively sparser
//!   attention down a retention [ladder](ServeConfig::ladder)
//!   ([`ShedPolicy::Retention`]): trade a little per-request accuracy for
//!   a lot of tail latency.
//! - [`TrafficConfig`] — seeded heavy-tailed traffic, reproducible bit
//!   for bit.
//! - [`run_bench`] — the `dota serve --bench` sweep: load × policy grid,
//!   SLO histograms per cell, canonical byte-stable JSON
//!   ([`BenchReport`]) diffable with `dota report diff`.
//! - [`TimelineRecorder`] / [`TimelineReport`] — request-scoped
//!   observability: a cycle-timestamped lifecycle record per request
//!   (queue → admit → prefill → per-step weight/K-V splits → terminal)
//!   exported as canonical `timeline.json` and as per-batch-slot Chrome
//!   tracks, joined with the cost model by `dota analyze --serve`.
//! - [`SloMonitor`] — rolling deadline-hit-rate and burn-rate at step
//!   boundaries on the simulated clock ([`ServeConfig::slo_window`]),
//!   surfaced as `serve.slo.*` counters, histograms and counter tracks.
//!
//! Determinism is load-bearing: the scheduler loop is serial, per-slot
//! decodes are independent (batch-mates never mix state), and histograms
//! aggregate in completion order — so reports are byte-identical across
//! `DOTA_THREADS` and serial vs `parallel` builds, and the load-test
//! suite can assert on exact bytes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod chaos;
mod control;
mod cost;
mod engine;
mod report;
mod request;
mod selector;
mod slo;
mod timeline;
mod traffic;

pub use chaos::{run_chaos, ChaosCell, ChaosOptions, ChaosReport, SERVE_CHAOS_VERSION};
pub use control::{ControlConfig, ControlInputs, ControlSummary, Controller};
pub use cost::CostModel;
pub use engine::{QuarantineSpan, ServeConfig, ServeEngine, ServeOutcome, ShedPolicy};
pub use report::{run_bench, BenchOptions, BenchReport, CellReport, SERVE_REPORT_VERSION};
pub use request::{Completion, DeadlineClass, FinishReason, Request};
pub use selector::WindowSelector;
pub use slo::{SloMonitor, SloWindow};
pub use timeline::{
    CellTimeline, RequestTimeline, StepRecord, TimelineConfig, TimelineRecorder, TimelineReport,
    TIMELINE_VERSION,
};
pub use traffic::TrafficConfig;

/// Holds a zero-rate fault session for the duration of a test that runs
/// engines and asserts fault-free outcomes. Fault sessions are process
/// global and exclusive, so tests that *do* inject (the chaos suite, the
/// fault property tests) would otherwise contaminate concurrently running
/// fault-free tests in this binary; an empty session injects nothing but
/// takes the same exclusivity gate, serializing the two groups.
#[cfg(test)]
pub(crate) fn quiet_faults() -> dota_faults::FaultGuard {
    dota_faults::session(dota_faults::FaultPlan::new(0))
}

#[cfg(test)]
mod prop_tests {
    //! Property tests for the scheduler invariants the service's claims
    //! rest on: bounded occupancy, FIFO-within-class admission, no
    //! starvation, and batch-mate independence of decoded tokens.

    use super::*;
    use dota_accel::AccelConfig;
    use dota_autograd::ParamSet;
    use dota_transformer::{Model, TransformerConfig};
    use proptest::prelude::*;

    const SEQ: usize = 32;
    const VOCAB: usize = 12;

    fn model() -> (Model, ParamSet) {
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny_causal(SEQ, VOCAB), &mut params, 23);
        (model, params)
    }

    fn generous_cfg(capacity: usize, shed: ShedPolicy) -> ServeConfig {
        ServeConfig {
            capacity,
            queue_capacity: 1024,
            shed,
            // Deadlines far beyond any trace below: every request is
            // eventually admitted and served.
            interactive_deadline_us: 1e9,
            batch_deadline_us: 1e9,
            ..Default::default()
        }
    }

    /// Builds a valid request trace (sorted arrivals, shapes that fit the
    /// model) from one generated gap vector: each gap also seeds that
    /// request's prompt length, output budget and class, so one strategy
    /// exercises arrival bursts, shape mixes and class interleavings.
    fn trace_from(gaps: &[u64]) -> Vec<Request> {
        let mut now = 0u64;
        gaps.iter()
            .enumerate()
            .map(|(i, &gap)| {
                now += gap;
                let plen = 1 + (gap % 5) as usize;
                let max_new = 1 + ((gap / 7) % 5) as usize;
                Request {
                    id: i as u64,
                    arrival: now,
                    prompt: (0..plen).map(|j| 1 + (i + j) % (VOCAB - 1)).collect(),
                    max_new,
                    eos: None,
                    class: if (gap / 3) % 2 == 0 {
                        DeadlineClass::Interactive
                    } else {
                        DeadlineClass::Batch
                    },
                }
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Occupancy never exceeds capacity and every offered request
        /// terminates exactly once.
        #[test]
        fn occupancy_bounded_and_conservation(
            gaps in proptest::collection::vec(0u64..3000, 1..25),
            capacity in 1usize..5,
        ) {
            let _quiet = crate::quiet_faults();
            let requests = trace_from(&gaps);
            let (model, params) = model();
            let n = requests.len();
            let ids: Vec<u64> = requests.iter().map(|r| r.id).collect();
            let out = ServeEngine::new(
                &model, &params, generous_cfg(capacity, ShedPolicy::Retention),
                &AccelConfig::default(),
            ).unwrap().run(requests);
            prop_assert!(out.max_occupancy <= capacity);
            prop_assert_eq!(out.completions.len(), n);
            let mut seen: Vec<u64> = out.completions.iter().map(|c| c.id).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, ids);
        }

        /// With generous deadlines nobody starves: every request is
        /// admitted and served in full.
        #[test]
        fn no_starvation_under_generous_deadlines(
            gaps in proptest::collection::vec(0u64..3000, 1..21),
            capacity in 1usize..4,
        ) {
            let _quiet = crate::quiet_faults();
            let requests = trace_from(&gaps);
            let (model, params) = model();
            let out = ServeEngine::new(
                &model, &params, generous_cfg(capacity, ShedPolicy::Retention),
                &AccelConfig::default(),
            ).unwrap().run(requests);
            for c in &out.completions {
                prop_assert!(c.reason.is_served(), "request {} ended {:?}", c.id, c.reason);
                prop_assert!(c.admit_seq.is_some());
            }
        }

        /// Admission is FIFO within a deadline class: among admitted
        /// requests of one class, admission order follows arrival order
        /// (ties broken by offer order, which ids encode).
        #[test]
        fn admission_is_fifo_within_class(
            gaps in proptest::collection::vec(0u64..3000, 1..21),
            capacity in 1usize..4,
        ) {
            let _quiet = crate::quiet_faults();
            let requests = trace_from(&gaps);
            let (model, params) = model();
            let out = ServeEngine::new(
                &model, &params, generous_cfg(capacity, ShedPolicy::QueueOnly),
                &AccelConfig::default(),
            ).unwrap().run(requests);
            for class in [DeadlineClass::Interactive, DeadlineClass::Batch] {
                let mut admitted: Vec<&Completion> = out
                    .completions
                    .iter()
                    .filter(|c| c.class == class && c.admit_seq.is_some())
                    .collect();
                admitted.sort_by_key(|c| c.admit_seq.unwrap());
                for w in admitted.windows(2) {
                    prop_assert!(
                        (w[0].arrival, w[0].id) < (w[1].arrival, w[1].id),
                        "class {:?}: {} (arrival {}) admitted before {} (arrival {})",
                        class, w[0].id, w[0].arrival, w[1].id, w[1].arrival
                    );
                }
            }
        }

        /// The timeline's per-step attended counts are exactly the
        /// retention window's sizes: for every step with post-append
        /// context `t`, `attended == layers · heads · clamp(ceil(r·t), 1, t)`
        /// and `omitted` is its dense complement — so `dota analyze
        /// --serve`'s ladder-consistency audit holds by construction, not
        /// by luck, and each request's cycle decomposition tiles its
        /// recorded residence exactly.
        #[test]
        fn timeline_attended_counts_match_selector_windows(
            gaps in proptest::collection::vec(0u64..800, 1..17),
            capacity in 1usize..4,
        ) {
            let _quiet = crate::quiet_faults();
            let requests = trace_from(&gaps);
            let (model, params) = model();
            let cfg = generous_cfg(capacity, ShedPolicy::Retention);
            let ladder = cfg.ladder.clone();
            let mut engine = ServeEngine::new(
                &model, &params, cfg, &AccelConfig::default(),
            ).unwrap();
            engine.enable_timeline("prop");
            let out = engine.run(requests);
            let lh = (model.config().n_layers * model.config().n_heads) as u64;
            for tl in out.timeline.as_deref().unwrap() {
                prop_assert!(ladder.contains(&tl.retention), "retention {} off-ladder", tl.retention);
                for step in &tl.steps {
                    let t = step.context;
                    let window = if tl.retention >= 1.0 {
                        t
                    } else {
                        (((tl.retention * t as f64).ceil() as u64).max(1)).min(t)
                    };
                    prop_assert_eq!(step.attended, lh * window, "req {} t={}", tl.id, t);
                    prop_assert_eq!(step.attended + step.omitted, lh * t);
                    prop_assert!(
                        step.weight_cycles + step.kv_cycles <= step.cycles,
                        "req {}: own weight + KV share cannot exceed the step",
                        tl.id
                    );
                }
                let step_sum: u64 = tl.steps.iter().map(|s| s.attended).sum();
                prop_assert_eq!(tl.attended_total(), step_sum);
                prop_assert_eq!(
                    tl.queue_cycles() + tl.prefill_cycles() + tl.decode_cycles(),
                    tl.e2e_cycles(),
                    "req {}: phase decomposition must tile e2e", tl.id
                );
                prop_assert_eq!(
                    tl.weight_cycles() + tl.kv_cycles() + tl.hol_cycles(),
                    tl.prefill_cycles() + tl.decode_cycles(),
                    "req {}: service decomposition must tile in-slot time", tl.id
                );
            }
        }

        /// A request's tokens are a function of its own prompt and
        /// retention only — never of who shared its batch. Serving a
        /// request alongside arbitrary traffic yields bit-identical
        /// output to serving it alone.
        #[test]
        fn tokens_independent_of_batch_mates(
            gaps in proptest::collection::vec(0u64..3000, 1..13),
            capacity in 2usize..5,
        ) {
            let _quiet = crate::quiet_faults();
            let requests = trace_from(&gaps);
            let (model, params) = model();
            let accel = AccelConfig::default();
            // QueueOnly pins retention at ladder[0] for everyone, so the
            // solo run is admitted at the same retention as the shared run.
            let shared = ServeEngine::new(
                &model, &params, generous_cfg(capacity, ShedPolicy::QueueOnly), &accel,
            ).unwrap().run(requests.clone());
            for req in &requests {
                let solo_req = Request { arrival: 0, ..req.clone() };
                let solo = ServeEngine::new(
                    &model, &params, generous_cfg(capacity, ShedPolicy::QueueOnly), &accel,
                ).unwrap().run(vec![solo_req]);
                let shared_c = shared.completions.iter().find(|c| c.id == req.id).unwrap();
                prop_assert_eq!(&shared_c.tokens, &solo.completions[0].tokens);
            }
        }

        /// Conservation survives fault injection: under a random plan
        /// arming every serve-layer site, each offered request still
        /// terminates exactly once, occupancy stays bounded, and the
        /// served/failed split is clean (served requests have tokens,
        /// failed ones have none).
        #[test]
        fn faults_preserve_exactly_one_terminal(
            gaps in proptest::collection::vec(0u64..3000, 1..17),
            capacity in 1usize..4,
            fault_seed in 0u64..1000,
            rate_pct in 0u32..30,
        ) {
            let requests = trace_from(&gaps);
            let (model, params) = model();
            let n = requests.len();
            let ids: Vec<u64> = requests.iter().map(|r| r.id).collect();
            let rate = f64::from(rate_pct) / 100.0;
            let plan = dota_faults::FaultSite::SERVE
                .iter()
                .fold(dota_faults::FaultPlan::new(fault_seed), |p, &site| {
                    p.with_rate(site, rate)
                });
            let _session = dota_faults::session(plan);
            let out = ServeEngine::new(
                &model, &params, generous_cfg(capacity, ShedPolicy::Retention),
                &AccelConfig::default(),
            ).unwrap().run(requests);
            prop_assert!(out.max_occupancy <= capacity);
            prop_assert_eq!(out.completions.len(), n);
            let mut seen: Vec<u64> = out.completions.iter().map(|c| c.id).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, ids);
            for c in &out.completions {
                match c.reason {
                    FinishReason::Completed | FinishReason::Eos =>
                        prop_assert!(!c.tokens.is_empty(), "served {} has no tokens", c.id),
                    FinishReason::Failed =>
                        prop_assert!(c.tokens.is_empty(), "failed {} kept tokens", c.id),
                    _ => {}
                }
            }
        }

        /// Retries never corrupt output: a request served under fault
        /// injection — however many attempts it took — emits a token
        /// stream bit-identical to a fault-free solo run. Aborted
        /// attempts' partial tokens are discarded, never leaked.
        #[test]
        fn retried_tokens_match_fault_free_run(
            gaps in proptest::collection::vec(0u64..3000, 1..9),
            capacity in 2usize..4,
            fault_seed in 0u64..1000,
        ) {
            let requests = trace_from(&gaps);
            let (model, params) = model();
            let accel = AccelConfig::default();
            // QueueOnly pins retention at ladder[0], so the fault-free
            // solo run is admitted at the same retention as the faulted
            // shared run (retries re-pin the original level anyway).
            let plan = dota_faults::FaultSite::SERVE
                .iter()
                .fold(dota_faults::FaultPlan::new(fault_seed), |p, &site| {
                    p.with_rate(site, 0.15)
                });
            let faulted = {
                let _session = dota_faults::session(plan);
                ServeEngine::new(
                    &model, &params, generous_cfg(capacity, ShedPolicy::QueueOnly), &accel,
                ).unwrap().run(requests.clone())
            };
            let _quiet = crate::quiet_faults();
            for req in &requests {
                let c = faulted.completions.iter().find(|c| c.id == req.id).unwrap();
                if !c.reason.is_served() {
                    continue;
                }
                let solo_req = Request { arrival: 0, ..req.clone() };
                let solo = ServeEngine::new(
                    &model, &params, generous_cfg(capacity, ShedPolicy::QueueOnly), &accel,
                ).unwrap().run(vec![solo_req]);
                prop_assert_eq!(
                    &c.tokens, &solo.completions[0].tokens,
                    "request {} ({} retries) diverged from its fault-free run",
                    req.id, c.retries
                );
            }
        }

        /// Quarantined lanes are out of rotation: no request is admitted
        /// into a lane inside one of its quarantine windows (re-admission
        /// at the window's closing probe cycle is the first legal use).
        #[test]
        fn quarantined_lanes_receive_no_admissions(
            gaps in proptest::collection::vec(0u64..2000, 1..13),
            capacity in 2usize..4,
            fault_seed in 0u64..1000,
        ) {
            let requests = trace_from(&gaps);
            let (model, params) = model();
            let plan = dota_faults::FaultPlan::new(fault_seed)
                .with_rate(dota_faults::FaultSite::SlotFail, 0.3);
            let _session = dota_faults::session(plan);
            let mut engine = ServeEngine::new(
                &model, &params, generous_cfg(capacity, ShedPolicy::Retention),
                &AccelConfig::default(),
            ).unwrap();
            engine.enable_timeline("prop");
            let out = engine.run(requests);
            let timelines = out.timeline.as_deref().unwrap();
            for span in &out.quarantine_log {
                // A lane quarantined on the run's last cycle closes empty
                // (from == until) at run end.
                prop_assert!(span.from <= span.until);
                for tl in timelines {
                    if let (Some(lane), Some(admit)) = (tl.lane, tl.admit) {
                        prop_assert!(
                            lane != span.lane || admit < span.from || admit >= span.until,
                            "request {} admitted into lane {} at {} inside quarantine [{}, {})",
                            tl.id, lane, admit, span.from, span.until
                        );
                    }
                }
            }
        }
    }
}
