//! The `dota serve --chaos` availability campaign.
//!
//! [`run_chaos`] sweeps serve-layer fault rates × offered load over the
//! *same* seeded arrivals per load point (rates are compared on identical
//! traffic, exactly as bench compares shed policies) and reports an
//! availability summary per cell: goodput, served fraction, p99 end-to-end
//! latency, retry/quarantine activity and the raw fault counters. Each
//! cell runs inside its own exclusive [`dota_faults::session`] whose plan
//! sets every swept site to the cell's rate, so a chaos run composes with
//! nothing else — it refuses to start when a global fault session (the
//! `--faults` flag) is already active rather than deadlock.
//!
//! Fault decisions are pure hashes of `(fault_seed, site, request,
//! attempt, position)` and the scheduler lives entirely on the simulated
//! clock, so the report is byte-identical across `DOTA_THREADS` and serial
//! vs `parallel` builds — the chaos baseline is committed and diffed like
//! every other report in this repository.

use crate::control::{ControlConfig, ControlSummary};
use crate::cost::CostModel;
use crate::engine::{ServeEngine, ShedPolicy};
use crate::report::{mean_service_cycles, traffic_proto, BenchOptions};
use crate::request::FinishReason;
use dota_accel::AccelConfig;
use dota_autograd::ParamSet;
use dota_faults::{FaultPlan, FaultSite};
use dota_metrics::{fmt_f64, Histogram};
use dota_transformer::{Model, TransformerConfig};
use std::collections::BTreeMap;
use std::path::Path;

/// Chaos report format version (bump on any schema change).
pub const SERVE_CHAOS_VERSION: u32 = 1;

/// Parameters of one `dota serve --chaos` campaign.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Base sweep parameters (model, traffic, deadlines, loads). The
    /// `sheds` list is ignored — a chaos campaign runs one policy,
    /// [`ChaosOptions::shed`], across every cell.
    pub bench: BenchOptions,
    /// Shed policy every cell runs under.
    pub shed: ShedPolicy,
    /// Fault rates to sweep (applied to every swept site at once). Rate
    /// `0.0` is the availability control: same traffic, no injection.
    pub rates: Vec<f64>,
    /// Serve-layer sites the plan arms.
    pub sites: Vec<FaultSite>,
    /// Seed of every cell's fault plan (distinct from the traffic seed so
    /// the two streams can be varied independently).
    pub fault_seed: u64,
    /// Fault-retry attempts before a request fails typed.
    pub retry_cap: usize,
    /// Base retry backoff in cycles (doubles per attempt).
    pub retry_backoff_cycles: u64,
    /// Cycles a failed lane stays quarantined between probes.
    pub quarantine_cycles: u64,
    /// Closed-loop controller parameters (consulted when
    /// [`ChaosOptions::shed`] is [`ShedPolicy::Slo`]).
    pub control: ControlConfig,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        let serve = crate::engine::ServeConfig::default();
        Self {
            bench: BenchOptions::default(),
            shed: ShedPolicy::Slo,
            rates: vec![0.0, 0.05, 0.2],
            sites: FaultSite::SERVE.to_vec(),
            fault_seed: 0xD07A,
            retry_cap: serve.retry_cap,
            retry_backoff_cycles: serve.retry_backoff_cycles,
            quarantine_cycles: serve.quarantine_cycles,
            control: serve.control,
        }
    }
}

impl ChaosOptions {
    /// Validates the campaign parameters.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.bench.validate()?;
        if self.rates.is_empty() {
            return Err("at least one fault rate required".into());
        }
        for &r in &self.rates {
            if !(r.is_finite() && (0.0..=1.0).contains(&r)) {
                return Err(format!("fault rate {r} outside [0, 1]"));
            }
        }
        if self.sites.is_empty() {
            return Err("at least one fault site required".into());
        }
        self.serve_config().validate()
    }

    fn serve_config(&self) -> crate::engine::ServeConfig {
        crate::engine::ServeConfig {
            retry_cap: self.retry_cap,
            retry_backoff_cycles: self.retry_backoff_cycles,
            quarantine_cycles: self.quarantine_cycles,
            control: self.control.clone(),
            ..self.bench.serve_config(self.shed)
        }
    }
}

/// Availability summary of one (load, fault-rate) cell.
#[derive(Debug)]
pub struct ChaosCell {
    /// Offered load multiple.
    pub load: f64,
    /// Injection rate armed at every swept site.
    pub rate: f64,
    /// Requests offered.
    pub offered: usize,
    /// Requests that produced their full requested output.
    pub served: usize,
    /// Requests lost to faults (retry cap / deadline during backoff).
    pub failed: usize,
    /// Rejected at arrival (queue full).
    pub rejected: usize,
    /// Expired while queued.
    pub queue_expired: usize,
    /// Evicted mid-decode at deadline.
    pub deadline_evicted: usize,
    /// Fault-retry re-admissions.
    pub retries: u64,
    /// Decode steps discarded to injected timeouts.
    pub timeout_steps: u64,
    /// Lanes sent to quarantine.
    pub quarantine_events: u64,
    /// Peak number of simultaneously quarantined lanes.
    pub quarantine_peak: usize,
    /// Tokens delivered by served requests (discarded attempt tokens and
    /// evicted partials excluded).
    pub tokens_served: u64,
    /// Simulated cycles the cell ran for.
    pub cycles: u64,
    /// `served / offered`.
    pub served_fraction: f64,
    /// Served tokens per million simulated cycles.
    pub goodput_per_mcycle: f64,
    /// p99 end-to-end residence, microseconds (`None` when every request
    /// was rejected outright).
    pub p99_e2e_us: Option<f64>,
    /// Every fault counter the cell's session recorded (sorted by name;
    /// empty at rate 0).
    pub counters: BTreeMap<String, u64>,
    /// Controller activity ([`ShedPolicy::Slo`] cells only).
    pub control: Option<ControlSummary>,
}

impl ChaosCell {
    fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"load\":{},\"rate\":{},\"offered\":{},\"served\":{},\"served_fraction\":{}",
            fmt_f64(self.load),
            fmt_f64(self.rate),
            self.offered,
            self.served,
            fmt_f64(self.served_fraction)
        );
        s.push_str(&format!(
            ",\"failed\":{},\"rejected\":{},\"queue_expired\":{},\"deadline_evicted\":{}",
            self.failed, self.rejected, self.queue_expired, self.deadline_evicted
        ));
        s.push_str(&format!(
            ",\"retries\":{},\"timeout_steps\":{},\"quarantine_events\":{},\"quarantine_peak\":{}",
            self.retries, self.timeout_steps, self.quarantine_events, self.quarantine_peak
        ));
        s.push_str(&format!(
            ",\"tokens_served\":{},\"cycles\":{},\"goodput_per_mcycle\":{}",
            self.tokens_served,
            self.cycles,
            fmt_f64(self.goodput_per_mcycle)
        ));
        match self.p99_e2e_us {
            Some(v) => s.push_str(&format!(",\"p99_e2e_us\":{}", fmt_f64(v))),
            None => s.push_str(",\"p99_e2e_us\":null"),
        }
        s.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{k}\":{v}"));
        }
        s.push('}');
        if let Some(ctl) = &self.control {
            s.push_str(&format!(",\"control\":{}", ctl.to_json()));
        }
        s.push('}');
        s
    }
}

/// Full result of one chaos campaign.
#[derive(Debug)]
pub struct ChaosReport {
    /// The options the campaign ran with.
    pub options: ChaosOptions,
    /// One cell per (load, rate) pair, loads outer, rates inner.
    pub cells: Vec<ChaosCell>,
}

impl ChaosReport {
    /// Finds the cell for a (load, rate) pair.
    pub fn cell(&self, load: f64, rate: f64) -> Option<&ChaosCell> {
        self.cells.iter().find(|c| c.load == load && c.rate == rate)
    }

    /// Canonical JSON serialization (stable key order, [`fmt_f64`] number
    /// formatting; byte-identical for identical runs).
    pub fn to_json(&self) -> String {
        let o = &self.options;
        let b = &o.bench;
        let mut s = format!("{{\"version\":{SERVE_CHAOS_VERSION}");
        s.push_str(&format!(
            ",\"config\":{{\"seed\":{},\"fault_seed\":{},\"shed\":\"{}\",\"requests\":{},\"capacity\":{},\"queue_capacity\":{},\"seq\":{},\"vocab\":{}",
            b.seed,
            o.fault_seed,
            o.shed.name(),
            b.requests,
            b.capacity,
            b.queue_capacity,
            b.seq,
            b.vocab
        ));
        s.push_str(&format!(
            ",\"retry_cap\":{},\"retry_backoff_cycles\":{},\"quarantine_cycles\":{}",
            o.retry_cap, o.retry_backoff_cycles, o.quarantine_cycles
        ));
        s.push_str(",\"sites\":[");
        for (i, site) in o.sites.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\"", site.name()));
        }
        s.push_str("],\"rates\":[");
        for (i, r) in o.rates.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&fmt_f64(*r));
        }
        s.push_str("],\"loads\":[");
        for (i, l) in b.loads.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&fmt_f64(*l));
        }
        s.push_str("],\"ladder\":[");
        for (i, r) in b.ladder.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&fmt_f64(*r));
        }
        s.push(']');
        s.push_str(&format!(
            ",\"interactive_deadline_us\":{},\"batch_deadline_us\":{}}}",
            fmt_f64(b.interactive_deadline_us),
            fmt_f64(b.batch_deadline_us)
        ));
        s.push_str(",\"cells\":[");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&c.to_json());
        }
        s.push_str("]}");
        s.push('\n');
        s
    }

    /// Writes the canonical JSON atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }
}

/// Runs the chaos campaign described by `opts`.
///
/// Traffic for a given load point is generated once and replayed at every
/// fault rate, so rates are compared on *identical* arrivals; each cell
/// opens its own exclusive fault session.
///
/// # Errors
///
/// Rejects invalid options ([`ChaosOptions::validate`]) and refuses to run
/// while another fault session is active (sessions are exclusive; nesting
/// on one thread would deadlock).
pub fn run_chaos(opts: ChaosOptions) -> Result<ChaosReport, String> {
    opts.validate()?;
    if dota_faults::enabled() {
        return Err(
            "chaos campaign manages its own fault sessions; end the global --faults session first"
                .into(),
        );
    }
    let _sp = dota_prof::span("serve.chaos");
    let b = &opts.bench;
    let mcfg = TransformerConfig::tiny_causal(b.seq, b.vocab);
    let mut params = ParamSet::new();
    let model = Model::init(mcfg.clone(), &mut params, b.seed);
    let accel = AccelConfig::default();
    let cost = CostModel::new(&accel, &mcfg);
    let mean_service = mean_service_cycles(b, &cost, &mcfg);

    let mut cells = Vec::with_capacity(b.loads.len() * opts.rates.len());
    for &load in &b.loads {
        let mut traffic = traffic_proto(b);
        traffic.mean_gap_cycles = mean_service / load;
        let requests = traffic.generate();
        for &rate in &opts.rates {
            let _cell_sp = dota_prof::span("serve.chaos.cell");
            let plan = opts
                .sites
                .iter()
                .fold(FaultPlan::new(opts.fault_seed), |p, &site| {
                    p.with_rate(site, rate)
                });
            let guard = dota_faults::session(plan);
            let mut engine = ServeEngine::new(&model, &params, opts.serve_config(), &accel)?;
            engine.set_label(&format!(
                "serve.chaos[{}@{}x r={}]",
                opts.shed.name(),
                fmt_f64(load),
                fmt_f64(rate)
            ));
            let out = engine.run(requests.clone());
            let counters = guard.counters();
            drop(guard);

            let mut failed = 0;
            let mut rejected = 0;
            let mut queue_expired = 0;
            let mut deadline_evicted = 0;
            let mut served = 0;
            let mut tokens_served = 0u64;
            let mut e2e = Histogram::new();
            for c in &out.completions {
                match c.reason {
                    FinishReason::Completed | FinishReason::Eos => {
                        served += 1;
                        tokens_served += c.tokens.len() as u64;
                    }
                    FinishReason::DeadlineEvicted => deadline_evicted += 1,
                    FinishReason::QueueExpired => queue_expired += 1,
                    FinishReason::Rejected => rejected += 1,
                    FinishReason::Failed => failed += 1,
                }
                if c.reason != FinishReason::Rejected {
                    e2e.record(CostModel::cycles_to_us(c.e2e()));
                }
            }
            // Peak simultaneous quarantine from the interval log (the log
            // closes open intervals at run end, so a sweep over its
            // endpoints sees every overlap).
            let quarantine_peak = out
                .quarantine_log
                .iter()
                .map(|a| {
                    out.quarantine_log
                        .iter()
                        .filter(|b| b.from <= a.from && a.from < b.until)
                        .count()
                })
                .max()
                .unwrap_or(0);
            let offered = out.completions.len();
            cells.push(ChaosCell {
                load,
                rate,
                offered,
                served,
                failed,
                rejected,
                queue_expired,
                deadline_evicted,
                retries: out.retries,
                timeout_steps: out.timeout_steps,
                quarantine_events: out.quarantine_events,
                quarantine_peak,
                tokens_served,
                cycles: out.total_cycles,
                served_fraction: if offered == 0 {
                    0.0
                } else {
                    served as f64 / offered as f64
                },
                goodput_per_mcycle: if out.total_cycles == 0 {
                    0.0
                } else {
                    tokens_served as f64 * 1e6 / out.total_cycles as f64
                },
                p99_e2e_us: e2e.quantile(0.99),
                counters,
                control: out.control,
            });
        }
    }
    Ok(ChaosReport {
        options: opts,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> ChaosOptions {
        ChaosOptions {
            bench: BenchOptions {
                requests: 30,
                loads: vec![1.0, 4.0],
                ..Default::default()
            },
            rates: vec![0.0, 0.2],
            ..Default::default()
        }
    }

    #[test]
    fn chaos_report_is_deterministic() {
        let a = run_chaos(quick_opts()).unwrap().to_json();
        let b = run_chaos(quick_opts()).unwrap().to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn every_cell_conserves_requests() {
        let report = run_chaos(quick_opts()).unwrap();
        assert_eq!(report.cells.len(), 4);
        for cell in &report.cells {
            assert_eq!(cell.offered, report.options.bench.requests);
            assert_eq!(
                cell.served
                    + cell.failed
                    + cell.rejected
                    + cell.queue_expired
                    + cell.deadline_evicted,
                cell.offered,
                "cell load {} rate {} leaks requests",
                cell.load,
                cell.rate
            );
        }
    }

    #[test]
    fn zero_rate_cells_are_clean_and_faulted_cells_still_serve() {
        let report = run_chaos(quick_opts()).unwrap();
        for cell in &report.cells {
            if cell.rate == 0.0 {
                assert_eq!(cell.failed, 0);
                assert_eq!(cell.retries, 0);
                assert!(cell.counters.is_empty(), "{:?}", cell.counters);
            } else {
                assert!(
                    cell.served_fraction > 0.0,
                    "rate {} load {} served nothing",
                    cell.rate,
                    cell.load
                );
            }
        }
        // The sweep actually injected something at the nonzero rates.
        assert!(report
            .cells
            .iter()
            .any(|c| c.rate > 0.0 && !c.counters.is_empty()));
    }

    #[test]
    fn rates_share_identical_arrivals_per_load() {
        // The rate-0 cell at each load must match a plain bench run of the
        // same options: same offered count and (absent faults) same
        // terminal mix, because the arrivals are the same trace.
        let report = run_chaos(quick_opts()).unwrap();
        for &load in &report.options.bench.loads {
            let zero = report.cell(load, 0.0).unwrap();
            assert_eq!(zero.failed, 0);
            assert_eq!(zero.offered, report.options.bench.requests);
        }
    }

    #[test]
    fn refuses_nested_fault_sessions() {
        let _g = dota_faults::session(FaultPlan::new(1));
        let err = run_chaos(quick_opts()).unwrap_err();
        assert!(err.contains("--faults"), "{err}");
    }

    #[test]
    fn invalid_options_are_rejected() {
        for f in [
            |o: &mut ChaosOptions| o.rates.clear(),
            |o: &mut ChaosOptions| o.rates = vec![1.5],
            |o: &mut ChaosOptions| o.rates = vec![f64::NAN],
            |o: &mut ChaosOptions| o.sites.clear(),
            |o: &mut ChaosOptions| o.bench.loads.clear(),
            |o: &mut ChaosOptions| o.retry_backoff_cycles = 0,
        ] {
            let mut o = quick_opts();
            f(&mut o);
            assert!(run_chaos(o).is_err());
        }
    }

    #[test]
    fn json_round_trips_write() {
        let report = run_chaos(quick_opts()).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"version\":1"));
        assert!(json.contains("\"served_fraction\""));
        let dir = std::env::temp_dir().join("dota_serve_chaos_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chaos.json");
        report.write(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), json);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
