//! Closed-loop degradation control for the serving engine.
//!
//! PR 8's [`SloMonitor`](crate::slo::SloMonitor) was deliberately
//! observation-only; this module closes the loop. A [`Controller`] is a
//! pure function of simulated-clock state — the monitor's rolling SLO burn
//! and hit rate, the pending-queue depth and the batch occupancy, all of
//! which live on the 1 GHz cycle clock — that drives two actuators:
//!
//! * the **retention rung**: instead of the open-loop backlog ladder
//!   (`ShedPolicy::Retention`), admissions under `ShedPolicy::Slo` run at
//!   `ladder[controller.level()]`, and the level moves one rung at a time
//!   in response to sustained burn;
//! * the **admission gate**: under extreme burn with a full batch the
//!   controller stops admitting entirely, letting queued requests expire
//!   at their deadlines instead of wasting decode cycles on work that
//!   cannot finish in time.
//!
//! Two mechanisms keep it from oscillating: a **hysteresis band**
//! (`burn_low`, `burn_high`) inside which the rung never moves, and a
//! **cooldown** of scheduler steps after any rung change during which
//! further changes are suppressed. Because every input is derived from the
//! simulated clock (never wall time or thread scheduling), controller
//! decisions — and therefore reports — are byte-identical across
//! `DOTA_THREADS` and serial vs `parallel` builds.

/// Hysteresis and cooldown parameters of the [`Controller`].
#[derive(Debug, Clone, PartialEq)]
pub struct ControlConfig {
    /// Rolling burn at or above which the controller degrades one rung.
    pub burn_high: f64,
    /// Rolling burn at or below which the controller recovers one rung
    /// (provided the queue has also drained below `depth_low`).
    pub burn_low: f64,
    /// Queue depth (in multiples of batch capacity) at or above which the
    /// controller degrades regardless of burn — the fast path for bursts
    /// that arrive before any terminal feeds the monitor.
    pub depth_high: usize,
    /// Queue depth (in multiples of capacity) the queue must drain to
    /// before the controller recovers a rung.
    pub depth_low: usize,
    /// Rolling burn at or above which (with a full batch, at the deepest
    /// rung) the admission gate closes.
    pub gate_high: f64,
    /// Rolling burn at or below which the gate reopens. The gate also
    /// reopens whenever the batch empties: an idle engine has nothing
    /// left to protect.
    pub gate_low: f64,
    /// Scheduler steps after a rung change during which further rung
    /// changes are suppressed.
    pub cooldown_steps: u64,
}

impl Default for ControlConfig {
    fn default() -> Self {
        Self {
            burn_high: 0.9,
            burn_low: 0.55,
            depth_high: 1,
            depth_low: 1,
            gate_high: 2.0,
            gate_low: 1.0,
            cooldown_steps: 4,
        }
    }
}

impl ControlConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("burn_high", self.burn_high),
            ("burn_low", self.burn_low),
            ("gate_high", self.gate_high),
            ("gate_low", self.gate_low),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(format!("control {name} must be finite and >= 0, got {v}"));
            }
        }
        if self.burn_low >= self.burn_high {
            return Err(format!(
                "control burn band empty: burn_low {} >= burn_high {}",
                self.burn_low, self.burn_high
            ));
        }
        if self.gate_low >= self.gate_high {
            return Err(format!(
                "control gate band empty: gate_low {} >= gate_high {}",
                self.gate_low, self.gate_high
            ));
        }
        if self.depth_low > self.depth_high {
            return Err(format!(
                "control depth_low {} > depth_high {}",
                self.depth_low, self.depth_high
            ));
        }
        Ok(())
    }
}

/// One observation of engine state, all on the simulated cycle clock.
#[derive(Debug, Clone, Copy)]
pub struct ControlInputs {
    /// Mean deadline burn over the monitor's rolling window (0 before any
    /// terminal completes).
    pub rolling_burn: f64,
    /// Rolling SLO hit rate (1 before any terminal completes).
    pub rolling_hit_rate: f64,
    /// Terminals the monitor has observed so far; burn is meaningless at 0.
    pub samples: u64,
    /// Pending requests across both class queues.
    pub queue_depth: usize,
    /// In-flight batch slots.
    pub occupancy: usize,
    /// Batch capacity.
    pub capacity: usize,
    /// Scheduler steps executed so far (the cooldown clock).
    pub step: u64,
}

/// Aggregate controller activity for a run (reported per cell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlSummary {
    /// Rung changes over the run.
    pub changes: u64,
    /// Observations during which the admission gate was closed.
    pub gated_steps: u64,
    /// Rung at the end of the run.
    pub final_level: usize,
    /// Deepest rung reached.
    pub max_level: usize,
    /// Mean rung over all observations.
    pub mean_level: f64,
}

impl ControlSummary {
    /// Canonical JSON object (stable key order, [`dota_metrics::fmt_f64`]
    /// number formatting) embedded in serve/chaos cell reports.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"changes\":{},\"gated_steps\":{},\"final_level\":{},\"max_level\":{},\"mean_level\":{}}}",
            self.changes,
            self.gated_steps,
            self.final_level,
            self.max_level,
            dota_metrics::fmt_f64(self.mean_level)
        )
    }
}

/// The closed-loop degradation controller (see the module docs).
#[derive(Debug, Clone)]
pub struct Controller {
    cfg: ControlConfig,
    /// Deepest rung index (`ladder.len() - 1`).
    top: usize,
    level: usize,
    gated: bool,
    last_change: Option<u64>,
    changes: u64,
    gated_steps: u64,
    max_level: usize,
    level_sum: u64,
    observations: u64,
}

impl Controller {
    /// A controller over a ladder whose deepest rung is `top`
    /// (`ladder.len() - 1`), starting undegraded and ungated.
    pub fn new(cfg: ControlConfig, top: usize) -> Self {
        Self {
            cfg,
            top,
            level: 0,
            gated: false,
            last_change: None,
            changes: 0,
            gated_steps: 0,
            max_level: 0,
            level_sum: 0,
            observations: 0,
        }
    }

    /// Current retention rung (index into the ladder).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Whether the admission gate is currently closed.
    pub fn gated(&self) -> bool {
        self.gated
    }

    /// Feeds one observation and updates the rung and gate. Pure in the
    /// controller state and `inputs`: no clocks, no randomness.
    pub fn observe(&mut self, inputs: &ControlInputs) {
        let cap = inputs.capacity.max(1);
        let burn_known = inputs.samples > 0;
        let overloaded = (burn_known && inputs.rolling_burn >= self.cfg.burn_high)
            || inputs.queue_depth >= self.cfg.depth_high * cap;
        let relaxed = (!burn_known || inputs.rolling_burn <= self.cfg.burn_low)
            && inputs.queue_depth <= self.cfg.depth_low * cap;
        let cooled = match self.last_change {
            None => true,
            Some(at) => inputs.step.saturating_sub(at) >= self.cfg.cooldown_steps,
        };
        if cooled {
            if overloaded && self.level < self.top {
                self.level += 1;
                self.changes += 1;
                self.last_change = Some(inputs.step);
            } else if relaxed && !overloaded && self.level > 0 {
                self.level -= 1;
                self.changes += 1;
                self.last_change = Some(inputs.step);
            }
        }
        if self.gated {
            if !burn_known || inputs.rolling_burn <= self.cfg.gate_low || inputs.occupancy == 0 {
                self.gated = false;
            }
        } else if burn_known
            && inputs.rolling_burn >= self.cfg.gate_high
            && self.level == self.top
            && inputs.occupancy == inputs.capacity
        {
            self.gated = true;
        }
        if self.gated {
            self.gated_steps += 1;
        }
        self.max_level = self.max_level.max(self.level);
        self.level_sum += self.level as u64;
        self.observations += 1;
    }

    /// Aggregate activity so far.
    pub fn summary(&self) -> ControlSummary {
        ControlSummary {
            changes: self.changes,
            gated_steps: self.gated_steps,
            final_level: self.level,
            max_level: self.max_level,
            mean_level: if self.observations == 0 {
                0.0
            } else {
                self.level_sum as f64 / self.observations as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(burn: f64, depth: usize, step: u64) -> ControlInputs {
        ControlInputs {
            rolling_burn: burn,
            rolling_hit_rate: if burn <= 1.0 { 1.0 } else { 0.0 },
            samples: 64,
            queue_depth: depth,
            occupancy: 8,
            capacity: 8,
            step,
        }
    }

    fn converge(cfg: &ControlConfig, burn: f64) -> usize {
        let mut ctl = Controller::new(cfg.clone(), 3);
        for step in 0..512 {
            ctl.observe(&inputs(burn, 0, step));
        }
        ctl.level()
    }

    #[test]
    fn no_rung_change_inside_the_band() {
        let cfg = ControlConfig::default();
        let mut ctl = Controller::new(cfg.clone(), 3);
        // Degrade once at exactly burn_high, then hold strictly inside
        // the band: the rung must not move again in either direction.
        ctl.observe(&inputs(cfg.burn_high, 0, 0));
        assert_eq!(ctl.level(), 1);
        for step in 1..256 {
            let mid = (cfg.burn_low + cfg.burn_high) / 2.0;
            ctl.observe(&inputs(mid, 0, step));
            assert_eq!(ctl.level(), 1, "rung moved inside the band at {step}");
        }
        // Band edges are inclusive triggers: burn_low recovers...
        ctl.observe(&inputs(cfg.burn_low, 0, 300));
        assert_eq!(ctl.level(), 0);
        // ...and burn_high degrades (after the cooldown elapses).
        ctl.observe(&inputs(cfg.burn_high, 0, 300 + cfg.cooldown_steps));
        assert_eq!(ctl.level(), 1);
    }

    #[test]
    fn cooldown_suppresses_consecutive_changes() {
        let cfg = ControlConfig {
            cooldown_steps: 8,
            ..Default::default()
        };
        let mut ctl = Controller::new(cfg.clone(), 3);
        let mut change_steps = Vec::new();
        let mut last = ctl.level();
        for step in 0..64 {
            ctl.observe(&inputs(10.0, 64, step));
            if ctl.level() != last {
                change_steps.push(step);
                last = ctl.level();
            }
        }
        assert_eq!(change_steps, vec![0, 8, 16], "changes every cooldown");
        assert_eq!(ctl.level(), 3);
    }

    #[test]
    fn sustained_burn_response_is_monotone() {
        // Higher sustained burn must never converge to a *shallower* rung.
        let cfg = ControlConfig::default();
        let burns = [0.0, 0.3, 0.55, 0.7, 0.9, 1.2, 2.0, 5.0];
        let rungs: Vec<usize> = burns.iter().map(|&b| converge(&cfg, b)).collect();
        for pair in rungs.windows(2) {
            assert!(pair[0] <= pair[1], "non-monotone rungs {rungs:?}");
        }
        assert_eq!(*rungs.first().unwrap(), 0);
        assert_eq!(*rungs.last().unwrap(), 3);
    }

    #[test]
    fn queue_depth_degrades_before_any_terminal() {
        // A burst arrives before the monitor has a single sample: the
        // depth override must still walk the rung down.
        let cfg = ControlConfig::default();
        let mut ctl = Controller::new(cfg.clone(), 3);
        for step in 0..64 {
            ctl.observe(&ControlInputs {
                rolling_burn: 0.0,
                rolling_hit_rate: 1.0,
                samples: 0,
                queue_depth: 64,
                occupancy: 8,
                capacity: 8,
                step,
            });
        }
        assert_eq!(ctl.level(), 3);
    }

    #[test]
    fn gate_closes_only_at_top_rung_and_reopens_when_idle() {
        let cfg = ControlConfig::default();
        let mut ctl = Controller::new(cfg.clone(), 3);
        // Extreme burn, but rung still walking down: no gate yet at rung 0.
        ctl.observe(&inputs(5.0, 64, 0));
        assert!(!ctl.gated());
        // Walk to the top rung, then the gate closes.
        let mut step = 1;
        while ctl.level() < 3 {
            ctl.observe(&inputs(5.0, 64, step));
            step += 1;
        }
        ctl.observe(&inputs(5.0, 64, step));
        assert!(ctl.gated());
        // Burn inside the gate band keeps it closed (hysteresis)...
        ctl.observe(&inputs(1.5, 64, step + 1));
        assert!(ctl.gated());
        // ...and an empty batch reopens it regardless of burn.
        ctl.observe(&ControlInputs {
            occupancy: 0,
            ..inputs(5.0, 64, step + 2)
        });
        assert!(!ctl.gated());
    }

    #[test]
    fn summary_tracks_activity() {
        let cfg = ControlConfig::default();
        let mut ctl = Controller::new(cfg.clone(), 2);
        for step in 0..32 {
            ctl.observe(&inputs(10.0, 64, step));
        }
        let s = ctl.summary();
        assert_eq!(s.final_level, 2);
        assert_eq!(s.max_level, 2);
        assert_eq!(s.changes, 2);
        assert!(s.gated_steps > 0);
        assert!(s.mean_level > 0.0 && s.mean_level <= 2.0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(ControlConfig::default().validate().is_ok());
        for cfg in [
            ControlConfig {
                burn_low: 0.9,
                burn_high: 0.9,
                ..Default::default()
            },
            ControlConfig {
                gate_low: 2.0,
                gate_high: 2.0,
                ..Default::default()
            },
            ControlConfig {
                burn_high: f64::NAN,
                ..Default::default()
            },
            ControlConfig {
                depth_low: 3,
                depth_high: 1,
                ..Default::default()
            },
        ] {
            assert!(cfg.validate().is_err(), "{cfg:?} accepted");
        }
    }
}
