//! The continuous-batching scheduler.
//!
//! [`ServeEngine`] drives the real incremental decode path
//! ([`Model::decode_step`]) for a whole population of requests at once.
//! Time is the accelerator's 1 GHz cycle clock, advanced by the
//! [`CostModel`] after every step, so the run — admission decisions,
//! latencies, the serialized report — is a pure function of the request
//! trace and the configuration: byte-identical across `DOTA_THREADS` and
//! serial vs `parallel` builds (the scheduler loop is serial; only the
//! independent per-slot decodes fan out).
//!
//! Each scheduler step:
//!
//! 1. **ingest** — arrivals up to `now` join their class queue (FIFO
//!    within class; the queue rejects above `queue_capacity`);
//! 2. **expire** — queued requests whose deadline already passed leave as
//!    [`FinishReason::QueueExpired`];
//! 3. **admit** — free batch slots fill from the queues (interactive
//!    before batch, FIFO within each). Under [`ShedPolicy::Retention`]
//!    the backlog picks a rung of the retention ladder: the deeper the
//!    queue, the sparser the attention the new request runs at —
//!    *shedding load by degrading accuracy instead of waiting*;
//! 4. **decode** — every in-flight request advances one token (prompt
//!    tokens first, then greedy generation); the step costs one shared
//!    weight stream plus each member's measured K/V traffic;
//! 5. **evict** — requests that finished (`max_new` tokens or EOS) or
//!    overran their deadline leave the batch at step boundaries.

use crate::control::{ControlConfig, ControlInputs, ControlSummary, Controller};
use crate::cost::CostModel;
use crate::request::{Completion, DeadlineClass, FinishReason, Request};
use crate::selector::WindowSelector;
use crate::slo::{SloMonitor, SloWindow};
use crate::timeline::{RequestTimeline, StepRecord, TimelineRecorder};
use dota_accel::AccelConfig;
use dota_autograd::ParamSet;
use dota_faults::FaultSite;
use dota_telemetry::{FlightEventKind, FlightHandle, GaugesSample, ServeGauges};
use dota_tensor::ops;
use dota_transformer::{KvCache, Model};
use std::collections::VecDeque;
use std::sync::{Arc, PoisonError};

/// Coordinate namespace for quarantine probe decisions, disjoint from
/// request ids (which are the first coordinate of in-slot fault checks).
const PROBE_COORD: u64 = u64::MAX;

/// Consecutive decode-step timeouts at one position before the attempt is
/// abandoned and the request goes through the retry path.
const TIMEOUT_ESCALATE: u64 = 3;

/// What the scheduler does when demand outruns capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Classic behaviour: requests wait in the queue at full retention
    /// until a slot frees or their deadline expires.
    QueueOnly,
    /// DOTA's knob in reverse: admission proceeds, but the deeper the
    /// backlog, the lower the retention new requests are admitted at
    /// (`ladder[min(backlog / capacity, last rung)]`). Requests keep
    /// their admitted retention for life, so output remains a pure
    /// function of the admission decision.
    Retention,
    /// Closed-loop feedback: a [`Controller`] driven by the SLO monitor's
    /// rolling burn (plus queue depth and occupancy) picks the rung, with
    /// hysteresis and a cooldown, and can gate admission entirely under
    /// extreme burn. Requires `slo_window > 0`.
    Slo,
}

impl ShedPolicy {
    /// Stable lower-case name used in reports and on the CLI.
    pub fn name(self) -> &'static str {
        match self {
            ShedPolicy::QueueOnly => "queue",
            ShedPolicy::Retention => "retention",
            ShedPolicy::Slo => "slo",
        }
    }

    /// Parses a CLI/env spelling.
    ///
    /// # Errors
    ///
    /// Describes the accepted spellings when `s` is none of them.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "queue" | "queue-only" => Ok(ShedPolicy::QueueOnly),
            "retention" | "shed" => Ok(ShedPolicy::Retention),
            "slo" => Ok(ShedPolicy::Slo),
            other => Err(format!(
                "unknown shed policy `{other}` (use queue|retention|slo)"
            )),
        }
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum in-flight requests per step (batch slots).
    pub capacity: usize,
    /// Maximum pending requests across both class queues; arrivals beyond
    /// it are rejected outright.
    pub queue_capacity: usize,
    /// Overload behaviour.
    pub shed: ShedPolicy,
    /// Retention ladder, best first. `ladder[0]` is the undegraded service
    /// level; deeper backlog walks down the ladder (under
    /// [`ShedPolicy::Retention`] only).
    pub ladder: Vec<f64>,
    /// Deadline budget for [`DeadlineClass::Interactive`], microseconds.
    pub interactive_deadline_us: f64,
    /// Deadline budget for [`DeadlineClass::Batch`], microseconds.
    pub batch_deadline_us: f64,
    /// Rolling window (in terminal requests) of the SLO monitor; `0`
    /// disables the monitor entirely. Under [`ShedPolicy::QueueOnly`] and
    /// [`ShedPolicy::Retention`] the monitor never feeds back into
    /// scheduling, so outcomes and reports are identical either way;
    /// [`ShedPolicy::Slo`] consumes its rolling burn and requires a
    /// nonzero window.
    pub slo_window: usize,
    /// Hysteresis/cooldown parameters of the closed-loop controller
    /// (consulted under [`ShedPolicy::Slo`] only).
    pub control: ControlConfig,
    /// Fault-retry attempts before a request fails typed. Only reachable
    /// with serve-layer fault injection active.
    pub retry_cap: usize,
    /// Base retry backoff in cycles; doubles with each attempt.
    pub retry_backoff_cycles: u64,
    /// Cycles a failed lane stays quarantined between health probes.
    pub quarantine_cycles: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            capacity: 8,
            queue_capacity: 256,
            shed: ShedPolicy::Retention,
            ladder: vec![1.0, 0.5, 0.25, 0.125],
            interactive_deadline_us: 50.0,
            batch_deadline_us: 500.0,
            slo_window: 64,
            control: ControlConfig::default(),
            retry_cap: 3,
            retry_backoff_cycles: 2_000,
            quarantine_cycles: 20_000,
        }
    }
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity == 0 {
            return Err("capacity must be at least 1".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be at least 1".into());
        }
        if self.ladder.is_empty() {
            return Err("retention ladder must not be empty".into());
        }
        for w in self.ladder.windows(2) {
            if w[1] > w[0] {
                return Err("retention ladder must be non-increasing".into());
            }
        }
        for &r in &self.ladder {
            if !(r > 0.0 && r <= 1.0) {
                return Err(format!("ladder retention {r} out of range (0, 1]"));
            }
        }
        for us in [self.interactive_deadline_us, self.batch_deadline_us] {
            // NaN must fail too, so test for the one acceptable state.
            if !(us > 0.0 && us.is_finite()) {
                return Err("deadline budgets must be positive and finite".into());
            }
        }
        if self.shed == ShedPolicy::Slo && self.slo_window == 0 {
            return Err("shed policy slo needs the SLO monitor (slo_window > 0)".into());
        }
        self.control.validate()?;
        if self.retry_backoff_cycles == 0 {
            return Err("retry_backoff_cycles must be at least 1".into());
        }
        if self.quarantine_cycles == 0 {
            return Err("quarantine_cycles must be at least 1".into());
        }
        Ok(())
    }

    /// Deadline budget of a class in cycles (1 GHz clock: 1000/µs).
    pub fn deadline_cycles(&self, class: DeadlineClass) -> u64 {
        let us = match class {
            DeadlineClass::Interactive => self.interactive_deadline_us,
            DeadlineClass::Batch => self.batch_deadline_us,
        };
        (us * 1e3).round() as u64
    }
}

/// A queued request with its precomputed deadline.
#[derive(Debug)]
struct Queued {
    req: Request,
    deadline: u64,
}

/// An injected fault that aborts a slot's current attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotFault {
    /// The slot died mid-decode; the lane is quarantined too.
    Lane,
    /// A K/V-cache read came back corrupted; the cached state is lost.
    Kv,
    /// Consecutive decode-step timeouts exhausted the in-place budget.
    Timeout,
}

/// A faulted request waiting out its retry backoff. Retention and rung are
/// pinned from the original admission so a retried decode regenerates the
/// identical token stream.
#[derive(Debug)]
struct RetryEntry {
    req: Request,
    deadline: u64,
    retention: f64,
    level: usize,
    /// Attempt number the re-admission will run as (original run is 0).
    attempt: u64,
    /// Cycle at which the entry becomes admissible again.
    ready_at: u64,
}

/// A lane taken out of rotation after a slot failure.
#[derive(Debug)]
struct Quarantine {
    lane: usize,
    /// Cycle of the next health probe.
    release_at: u64,
    /// Probes attempted so far (a coordinate of the probe decision).
    probes: u64,
    /// Cycle the lane entered quarantine.
    from: u64,
}

/// One completed quarantine interval of a lane (closed at run end for
/// lanes still quarantined).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineSpan {
    /// Batch-slot lane that was taken out of rotation.
    pub lane: usize,
    /// Cycle the lane entered quarantine.
    pub from: u64,
    /// Cycle the lane was re-admitted (run end if never).
    pub until: u64,
}

/// One in-flight batch slot.
#[derive(Debug)]
struct Slot {
    req: Request,
    deadline: u64,
    retention: f64,
    /// Retention-ladder rung the request was admitted at.
    level: usize,
    /// Stable batch-slot lane (smallest index free at admission); lanes
    /// are reused as slots drain, giving timelines one track per slot.
    lane: usize,
    cache: KvCache,
    selector: WindowSelector,
    /// Prompt+generated tokens consumed by `decode_step` so far.
    consumed: usize,
    /// Generated tokens.
    tokens: Vec<usize>,
    /// Next generation input (argmax of the last step's logits).
    next_token: Option<usize>,
    eos_hit: bool,
    admit: u64,
    admit_seq: u64,
    first_token: Option<u64>,
    /// Connections the last decode step attended (drives K/V cost).
    attended_last: u64,
    emitted_this_step: bool,
    /// Fault-retry attempt this slot runs as (0 without faults).
    attempt: u64,
    /// Consecutive decode-step timeouts at the current position.
    timeouts_here: u64,
    /// The current step's decode timed out (output discarded, position
    /// repeats next step).
    timed_out: bool,
    /// An injected fault aborted this attempt; resolved at the step
    /// boundary (retry or typed failure).
    fault: Option<SlotFault>,
}

/// Aggregate result of one [`ServeEngine::run`].
#[derive(Debug)]
pub struct ServeOutcome {
    /// Terminal record per offered request, in completion order.
    pub completions: Vec<Completion>,
    /// Scheduler steps executed.
    pub steps: u64,
    /// Total simulated cycles from first arrival to last exit.
    pub total_cycles: u64,
    /// Largest batch occupancy observed (never exceeds capacity).
    pub max_occupancy: usize,
    /// Sum of per-step occupancies (mean = `occupancy_sum / steps`).
    pub occupancy_sum: u64,
    /// Requests admitted below `ladder[0]`.
    pub degraded: u64,
    /// Tokens generated across all requests.
    pub tokens: u64,
    /// Deepest pending-queue depth sampled at any step boundary.
    pub queue_depth_max: usize,
    /// Terminals that met their SLO (full output within deadline); `0`
    /// when the monitor was off.
    pub slo_hits: u64,
    /// Terminals that missed their SLO; `0` when the monitor was off.
    pub slo_misses: u64,
    /// Disjoint SLO window summaries (empty when the monitor was off).
    pub slo_windows: Vec<SloWindow>,
    /// Per-request lifecycle records, sorted by id (`None` unless
    /// [`ServeEngine::enable_timeline`] was called).
    pub timeline: Option<Vec<RequestTimeline>>,
    /// Fault-retry re-admissions performed (0 without injected faults).
    pub retries: u64,
    /// Requests that terminated as [`FinishReason::Failed`].
    pub failed: u64,
    /// Decode steps discarded to injected cycle-budget timeouts.
    pub timeout_steps: u64,
    /// Lanes sent to quarantine after a slot failure.
    pub quarantine_events: u64,
    /// Quarantine intervals, in event order (open intervals are closed at
    /// the run's final cycle).
    pub quarantine_log: Vec<QuarantineSpan>,
    /// Closed-loop controller activity (`None` unless the policy was
    /// [`ShedPolicy::Slo`]).
    pub control: Option<ControlSummary>,
}

impl ServeOutcome {
    /// Mean batch occupancy over all steps.
    pub fn mean_occupancy(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.steps as f64
        }
    }

    /// Completions that produced their full requested output.
    pub fn served(&self) -> usize {
        self.completions
            .iter()
            .filter(|c| c.reason.is_served())
            .count()
    }
}

/// The continuous-batching scheduler (see the module docs for the step
/// anatomy).
#[derive(Debug)]
pub struct ServeEngine<'m> {
    model: &'m Model,
    params: &'m ParamSet,
    cfg: ServeConfig,
    cost: CostModel,
    now: u64,
    /// Pending queues: `[interactive, batch]`, each FIFO.
    queues: [VecDeque<Queued>; 2],
    slots: Vec<Slot>,
    completions: Vec<Completion>,
    admit_seq: u64,
    steps: u64,
    total_cycles: u64,
    max_occupancy: usize,
    occupancy_sum: u64,
    degraded: u64,
    tokens: u64,
    queue_depth_max: usize,
    slo: Option<SloMonitor>,
    timeline: Option<TimelineRecorder>,
    /// Prefix for Chrome-trace counter/track names, so engines sharing a
    /// trace session (e.g. bench cells) stay distinguishable.
    label: String,
    /// Closed-loop controller (present under [`ShedPolicy::Slo`] only).
    control: Option<Controller>,
    /// Faulted requests waiting out their retry backoff.
    retryq: VecDeque<RetryEntry>,
    /// Lanes out of rotation after a slot failure.
    quarantine: Vec<Quarantine>,
    quarantine_log: Vec<QuarantineSpan>,
    retries: u64,
    failed: u64,
    timeout_steps: u64,
    quarantine_events: u64,
    /// Flight recorder handle (shared with the CLI so the ring survives
    /// a typed failure). Pure observation: never read back.
    flight: Option<FlightHandle>,
    /// Live gauge cell the metrics endpoint scrapes. Pure observation:
    /// the engine only publishes into it.
    gauges: Option<Arc<ServeGauges>>,
}

impl<'m> ServeEngine<'m> {
    /// Builds an engine over a causal model.
    ///
    /// # Errors
    ///
    /// Rejects invalid configurations ([`ServeConfig::validate`]) and
    /// non-causal models.
    pub fn new(
        model: &'m Model,
        params: &'m ParamSet,
        cfg: ServeConfig,
        accel: &AccelConfig,
    ) -> Result<Self, String> {
        cfg.validate()?;
        if !model.config().causal {
            return Err("serving requires a causal (decoder) model".into());
        }
        let cost = CostModel::new(accel, model.config());
        let slo = (cfg.slo_window > 0).then(|| SloMonitor::new(cfg.slo_window));
        let control = (cfg.shed == ShedPolicy::Slo)
            .then(|| Controller::new(cfg.control.clone(), cfg.ladder.len() - 1));
        Ok(Self {
            model,
            params,
            cfg,
            cost,
            now: 0,
            queues: [VecDeque::new(), VecDeque::new()],
            slots: Vec::new(),
            completions: Vec::new(),
            admit_seq: 0,
            steps: 0,
            total_cycles: 0,
            max_occupancy: 0,
            occupancy_sum: 0,
            degraded: 0,
            tokens: 0,
            queue_depth_max: 0,
            slo,
            timeline: None,
            label: "serve".to_owned(),
            control,
            retryq: VecDeque::new(),
            quarantine: Vec::new(),
            quarantine_log: Vec::new(),
            retries: 0,
            failed: 0,
            timeout_steps: 0,
            quarantine_events: 0,
            flight: None,
            gauges: None,
        })
    }

    /// The engine's cost model (shared with traffic calibration).
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Sets the prefix of the engine's Chrome-trace counter tracks
    /// without enabling the timeline, so several engines sharing one
    /// trace session (e.g. bench cells) stay distinguishable.
    pub fn set_label(&mut self, label: &str) {
        self.label = label.to_owned();
    }

    /// Turns on per-request lifecycle recording. `label` prefixes the
    /// engine's Chrome-trace tracks (pass a distinct label per engine when
    /// several share one trace session).
    pub fn enable_timeline(&mut self, label: &str) {
        self.label = label.to_owned();
        self.timeline = Some(TimelineRecorder::new(label));
    }

    /// Attaches a shared flight recorder. The engine appends
    /// cycle-stamped events (admissions, terminals, controller moves,
    /// retries, quarantine transitions) and never reads the ring back,
    /// so attaching one changes no scheduling decision or report byte.
    pub fn set_flight(&mut self, flight: FlightHandle) {
        self.flight = Some(flight);
    }

    /// Attaches a live gauge cell for the metrics endpoint to scrape.
    /// The engine publishes a fresh [`GaugesSample`] at every step
    /// boundary and never reads the cell back.
    pub fn set_gauges(&mut self, gauges: Arc<ServeGauges>) {
        self.gauges = Some(gauges);
    }

    /// Appends one flight event, when a recorder is attached.
    fn flight_record(&self, cycle: u64, kind: FlightEventKind) {
        if let Some(f) = &self.flight {
            f.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .record(cycle, kind);
        }
    }

    /// Runs the trace to completion: every offered request terminates
    /// (served, evicted, expired or rejected) before this returns.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is not sorted by arrival, a prompt is empty,
    /// `max_new` is zero, or a request does not fit the model's `seq_len`.
    pub fn run(mut self, requests: Vec<Request>) -> ServeOutcome {
        let _sp = dota_prof::span("serve.run");
        for w in requests.windows(2) {
            assert!(
                w[0].arrival <= w[1].arrival,
                "requests must be sorted by arrival"
            );
        }
        let mut arrivals = requests.into_iter().peekable();
        loop {
            while arrivals.peek().is_some_and(|r| r.arrival <= self.now) {
                self.enqueue(arrivals.next().expect("peeked"));
            }
            self.expire_queued();
            self.expire_retries();
            self.probe_quarantine();
            self.observe_control();
            self.admit();
            if self.slots.is_empty() {
                // Idle: jump to the next instant anything can happen — an
                // arrival, a queued/retrying deadline, a retry backoff
                // elapsing, or a quarantine probe.
                let mut next = arrivals.peek().map(|r| r.arrival);
                let mut consider = |t: u64| match next {
                    Some(n) if n <= t => {}
                    _ => next = Some(t),
                };
                if self.pending_len() > 0 || !self.retryq.is_empty() {
                    for q in self.queues.iter().flat_map(|q| q.iter()) {
                        consider(q.deadline);
                    }
                    for r in &self.retryq {
                        consider(r.ready_at);
                        consider(r.deadline);
                    }
                    for q in &self.quarantine {
                        consider(q.release_at);
                    }
                }
                match next {
                    // Every candidate in the past was already drained
                    // above, but guarantee forward progress regardless.
                    Some(t) if t <= self.now => self.now += 1,
                    Some(t) => self.now = t,
                    None => {
                        assert!(
                            self.pending_len() == 0 && self.retryq.is_empty(),
                            "pending requests with free capacity"
                        );
                        break;
                    }
                }
                continue;
            }
            self.step();
        }
        // Close quarantine intervals still open at run end.
        let end = self.now;
        for q in self.quarantine.drain(..) {
            self.quarantine_log.push(QuarantineSpan {
                lane: q.lane,
                from: q.from,
                until: end,
            });
        }
        if let Some(slo) = self.slo.as_mut() {
            slo.finish();
        }
        if dota_trace::enabled() {
            dota_trace::count("serve.steps", self.steps);
            dota_trace::count("serve.cycles", self.total_cycles);
            dota_trace::count("serve.tokens", self.tokens);
            dota_trace::count("serve.admitted", self.admit_seq);
            dota_trace::count("serve.degraded", self.degraded);
            let served = self
                .completions
                .iter()
                .filter(|c| c.reason.is_served())
                .count() as u64;
            dota_trace::count("serve.served", served);
            dota_trace::count("serve.dropped", self.completions.len() as u64 - served);
            dota_trace::count("serve.queue_depth_max", self.queue_depth_max as u64);
            if let Some(mean_milli) = (self.occupancy_sum * 1000).checked_div(self.steps) {
                dota_trace::count("serve.occupancy_mean_milli", mean_milli);
            }
            // Fault-path counters only exist when something fired, so
            // fault-free traces keep their exact counter set.
            for (name, v) in [
                ("serve.retries", self.retries),
                ("serve.failed", self.failed),
                ("serve.timeout_steps", self.timeout_steps),
                ("serve.quarantine_events", self.quarantine_events),
            ] {
                if v > 0 {
                    dota_trace::count(name, v);
                }
            }
        }
        let (slo_hits, slo_misses, slo_windows) = match self.slo {
            Some(slo) => (slo.hits(), slo.misses(), slo.into_windows()),
            None => (0, 0, Vec::new()),
        };
        ServeOutcome {
            completions: self.completions,
            steps: self.steps,
            total_cycles: self.total_cycles,
            max_occupancy: self.max_occupancy,
            occupancy_sum: self.occupancy_sum,
            degraded: self.degraded,
            tokens: self.tokens,
            queue_depth_max: self.queue_depth_max,
            slo_hits,
            slo_misses,
            slo_windows,
            timeline: self.timeline.map(TimelineRecorder::into_requests),
            retries: self.retries,
            failed: self.failed,
            timeout_steps: self.timeout_steps,
            quarantine_events: self.quarantine_events,
            quarantine_log: self.quarantine_log,
            control: self.control.as_ref().map(Controller::summary),
        }
    }

    fn pending_len(&self) -> usize {
        self.queues[0].len() + self.queues[1].len()
    }

    fn class_queue(&mut self, class: DeadlineClass) -> &mut VecDeque<Queued> {
        match class {
            DeadlineClass::Interactive => &mut self.queues[0],
            DeadlineClass::Batch => &mut self.queues[1],
        }
    }

    /// Feeds a terminal event to the SLO monitor and the timeline; every
    /// exit path (reject, queue expiry, eviction, completion) runs through
    /// here so neither observer can miss a request.
    fn observe_terminal(
        &mut self,
        id: u64,
        reason: FinishReason,
        arrival: u64,
        deadline: u64,
        finish: u64,
        tokens: u64,
    ) {
        if let Some(tl) = self.timeline.as_mut() {
            tl.finished(id, reason, finish, tokens);
        }
        self.flight_record(
            finish,
            FlightEventKind::Terminal {
                id,
                reason: reason.name().to_owned(),
                tokens,
            },
        );
        if let Some(slo) = self.slo.as_mut() {
            let hit = reason.is_served() && finish <= deadline;
            let budget = deadline.saturating_sub(arrival).max(1);
            let burn = finish.saturating_sub(arrival) as f64 / budget as f64;
            slo.complete(hit, burn, finish);
        }
    }

    fn enqueue(&mut self, req: Request) {
        assert!(
            !req.prompt.is_empty(),
            "request {} has an empty prompt",
            req.id
        );
        assert!(req.max_new >= 1, "request {} asks for zero tokens", req.id);
        assert!(
            req.total_positions() <= self.model.config().seq_len,
            "request {} needs {} positions but seq_len is {}",
            req.id,
            req.total_positions(),
            self.model.config().seq_len
        );
        let deadline = req.arrival + self.cfg.deadline_cycles(req.class);
        let base = self.cfg.ladder[0];
        if let Some(tl) = self.timeline.as_mut() {
            tl.offered(&req, deadline, base);
        }
        if self.pending_len() >= self.cfg.queue_capacity {
            self.completions.push(Completion {
                id: req.id,
                class: req.class,
                reason: FinishReason::Rejected,
                retention: base,
                tokens: Vec::new(),
                arrival: req.arrival,
                admit: None,
                first_token: None,
                finish: self.now,
                admit_seq: None,
                retries: 0,
            });
            self.observe_terminal(
                req.id,
                FinishReason::Rejected,
                req.arrival,
                deadline,
                self.now,
                0,
            );
            return;
        }
        let class = req.class;
        self.class_queue(class).push_back(Queued { req, deadline });
    }

    fn expire_queued(&mut self) {
        let now = self.now;
        let base = self.cfg.ladder[0];
        for qi in 0..2 {
            // Deadlines are arrival + a per-class constant and the queue is
            // FIFO by arrival, so expired entries form a prefix.
            while self.queues[qi].front().is_some_and(|q| q.deadline <= now) {
                let q = self.queues[qi].pop_front().expect("checked front");
                self.completions.push(Completion {
                    id: q.req.id,
                    class: q.req.class,
                    reason: FinishReason::QueueExpired,
                    retention: base,
                    tokens: Vec::new(),
                    arrival: q.req.arrival,
                    admit: None,
                    first_token: None,
                    finish: q.deadline,
                    admit_seq: None,
                    retries: 0,
                });
                self.observe_terminal(
                    q.req.id,
                    FinishReason::QueueExpired,
                    q.req.arrival,
                    q.deadline,
                    q.deadline,
                    0,
                );
            }
        }
    }

    /// Feeds the controller one observation of the current engine state
    /// (no-op outside [`ShedPolicy::Slo`]). Runs once per scheduler
    /// iteration, before admission, entirely on the simulated clock.
    fn observe_control(&mut self) {
        let Some(ctl) = self.control.as_mut() else {
            return;
        };
        let (level_before, gated_before) = (ctl.level(), ctl.gated());
        let slo = self.slo.as_ref().expect("slo policy validated the monitor");
        ctl.observe(&ControlInputs {
            rolling_burn: slo.rolling_burn(),
            rolling_hit_rate: slo.rolling_hit_rate(),
            samples: slo.hits() + slo.misses(),
            queue_depth: self.queues[0].len() + self.queues[1].len(),
            occupancy: self.slots.len(),
            capacity: self.cfg.capacity,
            step: self.steps,
        });
        let (level_after, gated_after) = (ctl.level(), ctl.gated());
        if dota_trace::enabled() {
            dota_trace::sim_counter(
                &format!("{}.ctl.level", self.label),
                self.now,
                level_after as u64,
            );
        }
        if level_after != level_before {
            self.flight_record(
                self.now,
                FlightEventKind::Rung {
                    from: level_before as u64,
                    to: level_after as u64,
                },
            );
        }
        if gated_after != gated_before {
            self.flight_record(
                self.now,
                FlightEventKind::Gate {
                    closed: gated_after,
                },
            );
        }
    }

    /// Fails retrying requests whose deadline passed during backoff.
    fn expire_retries(&mut self) {
        let now = self.now;
        let mut i = 0;
        while i < self.retryq.len() {
            if self.retryq[i].deadline > now {
                i += 1;
                continue;
            }
            let r = self.retryq.remove(i).expect("index checked");
            self.failed += 1;
            dota_faults::record("faults.serve.failed", 1);
            self.completions.push(Completion {
                id: r.req.id,
                class: r.req.class,
                reason: FinishReason::Failed,
                retention: r.retention,
                tokens: Vec::new(),
                arrival: r.req.arrival,
                admit: None,
                first_token: None,
                finish: r.deadline,
                admit_seq: None,
                retries: r.attempt,
            });
            self.observe_terminal(
                r.req.id,
                FinishReason::Failed,
                r.req.arrival,
                r.deadline,
                r.deadline,
                0,
            );
        }
    }

    /// Runs due health probes on quarantined lanes; a passing probe
    /// re-admits the lane, a failing one (the fault site fires on the
    /// probe's own coordinates) extends the quarantine by another window.
    fn probe_quarantine(&mut self) {
        let now = self.now;
        let window = self.cfg.quarantine_cycles;
        let mut i = 0;
        while i < self.quarantine.len() {
            if self.quarantine[i].release_at > now {
                i += 1;
                continue;
            }
            let q = &mut self.quarantine[i];
            q.probes += 1;
            dota_faults::record("faults.serve.probes", 1);
            let failed = dota_faults::should_inject(
                FaultSite::SlotFail,
                &[PROBE_COORD, q.lane as u64, q.probes],
            );
            let lane = q.lane;
            if failed {
                q.release_at = now + window;
                i += 1;
            } else {
                let q = self.quarantine.remove(i);
                self.quarantine_log.push(QuarantineSpan {
                    lane: q.lane,
                    from: q.from,
                    until: now,
                });
                dota_faults::record("faults.serve.lanes_restored", 1);
            }
            self.flight_record(
                now,
                FlightEventKind::Probe {
                    lane: lane as u64,
                    passed: !failed,
                },
            );
        }
    }

    /// Smallest lane neither occupied nor quarantined (`None` when every
    /// lane is in use — possible below capacity while lanes sit in
    /// quarantine).
    fn free_lane(&self) -> Option<usize> {
        (0..self.cfg.capacity).find(|l| {
            self.slots.iter().all(|s| s.lane != *l) && self.quarantine.iter().all(|q| q.lane != *l)
        })
    }

    fn place(&mut self, req: Request, deadline: u64, retention: f64, level: usize, attempt: u64) {
        let seq = self.admit_seq;
        self.admit_seq += 1;
        // Smallest free lane; lanes recycle as slots drain, so a timeline
        // gets one stable track per batch slot.
        let lane = self.free_lane().expect("caller checked a lane is free");
        if let Some(tl) = self.timeline.as_mut() {
            tl.admitted(req.id, self.now, retention, level, lane);
        }
        self.flight_record(
            self.now,
            FlightEventKind::Admit {
                id: req.id,
                lane: lane as u64,
                rung: level as u64,
            },
        );
        let mcfg = self.model.config();
        self.slots.push(Slot {
            deadline,
            retention,
            level,
            lane,
            cache: KvCache::new(mcfg.n_layers, mcfg.d_model),
            selector: WindowSelector::new(retention),
            consumed: 0,
            tokens: Vec::new(),
            next_token: None,
            eos_hit: false,
            admit: self.now,
            admit_seq: seq,
            first_token: None,
            attended_last: 0,
            emitted_this_step: false,
            attempt,
            timeouts_here: 0,
            timed_out: false,
            fault: None,
            req,
        });
    }

    fn admit(&mut self) {
        let _sp = dota_prof::span("serve.admit");
        // Ready retries re-admit first, at their pinned retention and rung
        // (so the restarted decode regenerates the identical tokens). They
        // bypass the admission gate: the system already accepted them.
        loop {
            if self.slots.len() >= self.cfg.capacity || self.free_lane().is_none() {
                break;
            }
            let Some(pos) = self.retryq.iter().position(|r| r.ready_at <= self.now) else {
                break;
            };
            let r = self.retryq.remove(pos).expect("position from iterator");
            self.place(r.req, r.deadline, r.retention, r.level, r.attempt);
        }
        if self.control.as_ref().is_some_and(Controller::gated) {
            return;
        }
        while self.slots.len() < self.cfg.capacity && self.free_lane().is_some() {
            // Backlog behind the request being admitted sets the shed
            // pressure (an empty queue admits at full service).
            let backlog = self.pending_len().saturating_sub(1);
            let Some(q) = self.queues[0]
                .pop_front()
                .or_else(|| self.queues[1].pop_front())
            else {
                break;
            };
            let level = match self.cfg.shed {
                ShedPolicy::QueueOnly => 0,
                ShedPolicy::Retention => {
                    (backlog / self.cfg.capacity).min(self.cfg.ladder.len() - 1)
                }
                ShedPolicy::Slo => self
                    .control
                    .as_ref()
                    .expect("slo policy constructs the controller")
                    .level(),
            };
            let retention = self.cfg.ladder[level];
            if level > 0 {
                self.degraded += 1;
            }
            self.place(q.req, q.deadline, retention, level, 0);
        }
        debug_assert!(self.slots.len() <= self.cfg.capacity);
    }

    /// One decode step for one slot; independent of every other slot, so
    /// the parallel fan-out below is bitwise equivalent to the serial loop.
    /// Fault decisions are pure hashes of `(request, attempt, position)`,
    /// so they too are independent of thread interleaving.
    fn decode_slot(model: &Model, params: &ParamSet, slot: &mut Slot) {
        if dota_faults::enabled() {
            let coords = [slot.req.id, slot.attempt, slot.consumed as u64];
            if dota_faults::should_inject(FaultSite::SlotFail, &coords) {
                slot.fault = Some(SlotFault::Lane);
                slot.attended_last = 0;
                return;
            }
            if slot.consumed > 0 && dota_faults::should_inject(FaultSite::KvCorrupt, &coords) {
                slot.fault = Some(SlotFault::Kv);
                slot.attended_last = 0;
                return;
            }
            // Decided before the decode runs, so a timed-out step mutates
            // nothing: the position simply repeats next step. The retry
            // counter is a coordinate, so the re-decision is fresh.
            let t_coords = [
                slot.req.id,
                slot.attempt,
                slot.consumed as u64,
                slot.timeouts_here,
            ];
            if dota_faults::should_inject(FaultSite::DecodeTimeout, &t_coords) {
                slot.timeouts_here += 1;
                slot.timed_out = true;
                slot.attended_last = 0;
                if slot.timeouts_here >= TIMEOUT_ESCALATE {
                    slot.fault = Some(SlotFault::Timeout);
                }
                return;
            }
            slot.timeouts_here = 0;
        }
        let input = if slot.consumed < slot.req.prompt.len() {
            slot.req.prompt[slot.consumed]
        } else {
            slot.next_token.expect("generation input available")
        };
        let (logits, attended) = model.decode_step(params, &mut slot.cache, input, &slot.selector);
        slot.consumed += 1;
        slot.attended_last = attended;
        if slot.consumed >= slot.req.prompt.len() {
            let next = ops::argmax_rows(&logits)[0];
            slot.tokens.push(next);
            slot.next_token = Some(next);
            slot.emitted_this_step = true;
            if slot.req.eos == Some(next) {
                slot.eos_hit = true;
            }
        }
    }

    fn decode_all(&mut self) {
        let (model, params) = (self.model, self.params);
        #[cfg(feature = "parallel")]
        dota_parallel::par_partition_mut(&mut self.slots, 1, |_, span| {
            for slot in span {
                Self::decode_slot(model, params, slot);
            }
        });
        #[cfg(not(feature = "parallel"))]
        for slot in &mut self.slots {
            Self::decode_slot(model, params, slot);
        }
    }

    fn step(&mut self) {
        let _sp = dota_prof::span("serve.step");
        let start = self.now;
        self.decode_all();
        // Equivalent to `cost.step_cycles`, unrolled so each slot's own
        // K/V share is attributable in its timeline.
        let weight_cycles = self.cost.weight_cycles();
        let kv: Vec<u64> = self
            .slots
            .iter()
            .map(|s| self.cost.kv_cycles(s.attended_last))
            .collect();
        let cycles = weight_cycles + kv.iter().sum::<u64>();
        self.now += cycles;
        self.total_cycles += cycles;
        self.steps += 1;
        self.max_occupancy = self.max_occupancy.max(self.slots.len());
        self.occupancy_sum += self.slots.len() as u64;
        let depth = self.pending_len();
        self.queue_depth_max = self.queue_depth_max.max(depth);
        if dota_trace::enabled() {
            dota_trace::sim_counter(&format!("{}.queue_depth", self.label), start, depth as u64);
            dota_trace::sim_counter(
                &format!("{}.occupancy", self.label),
                start,
                self.slots.len() as u64,
            );
        }
        if let Some(tl) = self.timeline.as_mut() {
            let lh = (self.model.config().n_layers * self.model.config().n_heads) as u64;
            for (slot, &kv_cycles) in self.slots.iter().zip(&kv) {
                // A slot whose decode was discarded (injected fault or
                // timeout) consumed no position this step; its record
                // carries zero context and traffic so the audit's window
                // identities keep holding under injection.
                let context = if slot.fault.is_some() || slot.timed_out {
                    0
                } else {
                    slot.consumed as u64
                };
                tl.step(
                    slot.req.id,
                    StepRecord {
                        start,
                        cycles,
                        weight_cycles,
                        kv_cycles,
                        attended: slot.attended_last,
                        omitted: lh * context - slot.attended_last,
                        context,
                    },
                );
            }
        }

        let timeouts: u64 = self
            .slots
            .iter_mut()
            .map(|s| u64::from(std::mem::take(&mut s.timed_out)))
            .sum();
        if timeouts > 0 {
            self.timeout_steps += timeouts;
            dota_faults::record("faults.serve.timeout_steps", timeouts);
        }

        let now = self.now;
        let mut i = 0;
        while i < self.slots.len() {
            if self.slots[i].fault.is_some() {
                let slot = self.slots.remove(i);
                self.resolve_fault(slot, now);
                continue;
            }
            let slot = &mut self.slots[i];
            if slot.emitted_this_step {
                self.tokens += 1;
                if slot.first_token.is_none() {
                    slot.first_token = Some(now);
                    if let Some(tl) = self.timeline.as_mut() {
                        tl.first_token(slot.req.id, now);
                    }
                }
                slot.emitted_this_step = false;
            }
            let slot = &self.slots[i];
            let done = slot.eos_hit || slot.tokens.len() >= slot.req.max_new;
            let expired = !done && now > slot.deadline;
            if done || expired {
                let slot = self.slots.remove(i);
                let reason = if slot.eos_hit {
                    FinishReason::Eos
                } else if done {
                    FinishReason::Completed
                } else {
                    FinishReason::DeadlineEvicted
                };
                let n_tokens = slot.tokens.len() as u64;
                self.completions.push(Completion {
                    id: slot.req.id,
                    class: slot.req.class,
                    reason,
                    retention: slot.retention,
                    tokens: slot.tokens,
                    arrival: slot.req.arrival,
                    admit: Some(slot.admit),
                    first_token: slot.first_token,
                    finish: now,
                    admit_seq: Some(slot.admit_seq),
                    retries: slot.attempt,
                });
                self.observe_terminal(
                    slot.req.id,
                    reason,
                    slot.req.arrival,
                    slot.deadline,
                    now,
                    n_tokens,
                );
            } else {
                i += 1;
            }
        }
        // Burn of the worst still-in-flight request at this step boundary
        // (pure observation: histograms and Chrome counter tracks only).
        let mut max_burn = None;
        if self.slo.is_some() && !self.slots.is_empty() {
            let burn = self
                .slots
                .iter()
                .map(|s| {
                    let budget = s.deadline.saturating_sub(s.req.arrival).max(1);
                    (now - s.req.arrival) as f64 / budget as f64
                })
                .fold(0.0f64, f64::max);
            dota_metrics::observe("serve.slo.step_burn_max", burn);
            if dota_trace::enabled() {
                dota_trace::sim_counter(
                    &format!("{}.slo.burn_max_milli", self.label),
                    now,
                    (burn * 1e3).round() as u64,
                );
            }
            max_burn = Some(burn);
        }
        // Publish the live gauges last, so a scrape between steps sees
        // one coherent post-eviction view of this boundary.
        if let Some(g) = &self.gauges {
            let mut lane_retained = vec![0u64; self.cfg.capacity];
            for s in &self.slots {
                if let Some(r) = lane_retained.get_mut(s.lane) {
                    *r = s.attended_last;
                }
            }
            let lane_skew_milli = dota_telemetry::gauges::lane_skew_milli(&lane_retained);
            g.publish(&GaugesSample {
                cell: self.label.clone(),
                cycle: now,
                steps: self.steps,
                queue_depth: depth as u64,
                occupancy: self.slots.len() as u64,
                capacity: self.cfg.capacity as u64,
                admitted: self.admit_seq,
                decoded_tokens: self.tokens,
                slo_hit_rate_milli: self
                    .slo
                    .as_ref()
                    .map(|s| (s.rolling_hit_rate().clamp(0.0, 1.0) * 1000.0).round() as u64),
                slo_burn_milli: max_burn.map(|b| (b.max(0.0) * 1000.0).round() as u64),
                rung: self.control.as_ref().map(|c| c.level() as u64),
                gate_closed: self.control.as_ref().map(Controller::gated),
                quarantined_lanes: self.quarantine.len() as u64,
                lane_retained,
                lane_skew_milli,
            });
        }
    }

    /// Resolves a slot whose attempt an injected fault aborted: quarantine
    /// the lane on a slot failure, then either schedule a retry (attempts
    /// left) or fail the request typed. Partial tokens of the aborted
    /// attempt are always discarded — a retry restarts decode from scratch
    /// at the pinned retention, regenerating the identical stream, so no
    /// token is ever duplicated or lost across attempts.
    fn resolve_fault(&mut self, slot: Slot, now: u64) {
        if slot.fault == Some(SlotFault::Lane) {
            self.quarantine_events += 1;
            dota_faults::record("faults.serve.lanes_quarantined", 1);
            self.quarantine.push(Quarantine {
                lane: slot.lane,
                release_at: now + self.cfg.quarantine_cycles,
                probes: 0,
                from: now,
            });
            self.flight_record(
                now,
                FlightEventKind::Quarantine {
                    lane: slot.lane as u64,
                },
            );
        }
        let discarded = slot.tokens.len() as u64;
        if slot.attempt < self.cfg.retry_cap as u64 {
            self.retries += 1;
            dota_faults::record("faults.serve.retries", 1);
            if let Some(tl) = self.timeline.as_mut() {
                tl.retried(slot.req.id, discarded);
            }
            self.flight_record(
                now,
                FlightEventKind::Retry {
                    id: slot.req.id,
                    attempt: slot.attempt + 1,
                },
            );
            // Exponential cycle backoff, doubling per attempt (shift
            // capped so pathological retry caps cannot overflow).
            let backoff = self.cfg.retry_backoff_cycles << slot.attempt.min(20);
            self.retryq.push_back(RetryEntry {
                req: slot.req,
                deadline: slot.deadline,
                retention: slot.retention,
                level: slot.level,
                attempt: slot.attempt + 1,
                ready_at: now + backoff,
            });
        } else {
            self.failed += 1;
            dota_faults::record("faults.serve.failed", 1);
            if let Some(tl) = self.timeline.as_mut() {
                tl.discarded(slot.req.id, discarded);
            }
            self.completions.push(Completion {
                id: slot.req.id,
                class: slot.req.class,
                reason: FinishReason::Failed,
                retention: slot.retention,
                tokens: Vec::new(),
                arrival: slot.req.arrival,
                admit: Some(slot.admit),
                first_token: None,
                finish: now,
                admit_seq: Some(slot.admit_seq),
                retries: slot.attempt,
            });
            self.observe_terminal(
                slot.req.id,
                FinishReason::Failed,
                slot.req.arrival,
                slot.deadline,
                now,
                0,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dota_transformer::TransformerConfig;

    fn tiny_model(seq: usize) -> (Model, ParamSet) {
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny_causal(seq, 8), &mut params, 17);
        (model, params)
    }

    fn req(id: u64, arrival: u64, prompt: &[usize], max_new: usize) -> Request {
        Request {
            id,
            arrival,
            prompt: prompt.to_vec(),
            max_new,
            eos: None,
            class: DeadlineClass::Interactive,
        }
    }

    fn engine<'m>(model: &'m Model, params: &'m ParamSet, cfg: ServeConfig) -> ServeEngine<'m> {
        ServeEngine::new(model, params, cfg, &AccelConfig::default()).unwrap()
    }

    #[test]
    fn single_request_is_served_with_full_timestamps() {
        let _quiet = crate::quiet_faults();
        let (model, params) = tiny_model(24);
        let cfg = ServeConfig::default();
        let out = engine(&model, &params, cfg).run(vec![req(1, 0, &[1, 2, 3], 4)]);
        assert_eq!(out.completions.len(), 1);
        let c = &out.completions[0];
        assert_eq!(c.reason, FinishReason::Completed);
        assert_eq!(c.tokens.len(), 4);
        assert_eq!(c.admit, Some(0));
        // Prompt takes 3 steps; the first token lands at the end of step 3.
        assert!(c.first_token.unwrap() > 0);
        assert!(c.finish > c.first_token.unwrap());
        assert_eq!(out.steps, 3 + 4 - 1); // one decode per prompt token, last prompt step emits
        assert_eq!(out.tokens, 4);
    }

    #[test]
    fn engine_output_matches_offline_generate() {
        let _quiet = crate::quiet_faults();
        let (model, params) = tiny_model(24);
        let prompt = [1usize, 4, 2, 7];
        let offline = model.generate(&params, &prompt, 5, &dota_transformer::DenseDecode);
        let cfg = ServeConfig {
            shed: ShedPolicy::QueueOnly,
            ..Default::default()
        };
        let out = engine(&model, &params, cfg).run(vec![req(9, 0, &prompt, 5)]);
        assert_eq!(out.completions[0].tokens, offline.tokens);
    }

    #[test]
    fn eos_stops_generation_early() {
        let _quiet = crate::quiet_faults();
        let (model, params) = tiny_model(32);
        let prompt = [1usize, 2, 3];
        // First run to learn what the model emits, then use that token as EOS.
        let cfg = ServeConfig::default();
        let out = engine(&model, &params, cfg.clone()).run(vec![req(1, 0, &prompt, 6)]);
        let first = out.completions[0].tokens[0];
        let mut r = req(1, 0, &prompt, 6);
        r.eos = Some(first);
        let out = engine(&model, &params, cfg).run(vec![r]);
        let c = &out.completions[0];
        assert_eq!(c.reason, FinishReason::Eos);
        assert_eq!(c.tokens, vec![first]);
    }

    #[test]
    fn occupancy_is_bounded_and_queue_rejects_overflow() {
        let _quiet = crate::quiet_faults();
        let (model, params) = tiny_model(24);
        let cfg = ServeConfig {
            capacity: 2,
            queue_capacity: 3,
            shed: ShedPolicy::QueueOnly,
            interactive_deadline_us: 1e6,
            batch_deadline_us: 1e6,
            ..Default::default()
        };
        let requests: Vec<Request> = (0..12).map(|i| req(i, 0, &[1, 2], 3)).collect();
        let out = engine(&model, &params, cfg).run(requests);
        assert_eq!(out.completions.len(), 12);
        assert!(out.max_occupancy <= 2);
        let rejected = out
            .completions
            .iter()
            .filter(|c| c.reason == FinishReason::Rejected)
            .count();
        // The queue is the single entry point, so a simultaneous burst is
        // capped at queue_capacity: 3 accepted, the other 9 bounce.
        assert_eq!(rejected, 9);
        assert_eq!(out.served(), 3);
    }

    #[test]
    fn queued_requests_expire_at_their_deadline() {
        let _quiet = crate::quiet_faults();
        let (model, params) = tiny_model(24);
        let cfg = ServeConfig {
            capacity: 1,
            queue_capacity: 64,
            shed: ShedPolicy::QueueOnly,
            interactive_deadline_us: 0.5, // 500 cycles: far below one service
            batch_deadline_us: 1e6,
            ..Default::default()
        };
        let requests: Vec<Request> = (0..4).map(|i| req(i, 0, &[1, 2, 3], 8)).collect();
        let out = engine(&model, &params, cfg).run(requests);
        let expired = out
            .completions
            .iter()
            .filter(|c| c.reason == FinishReason::QueueExpired)
            .count();
        assert!(expired >= 2, "expected queue expiries, got {out:?}");
        for c in &out.completions {
            if c.reason == FinishReason::QueueExpired {
                assert_eq!(c.e2e(), 500);
                assert!(c.tokens.is_empty());
            }
        }
    }

    #[test]
    fn retention_shed_degrades_under_backlog() {
        let _quiet = crate::quiet_faults();
        let (model, params) = tiny_model(24);
        let cfg = ServeConfig {
            capacity: 2,
            queue_capacity: 64,
            shed: ShedPolicy::Retention,
            ladder: vec![1.0, 0.5, 0.25],
            interactive_deadline_us: 1e6,
            batch_deadline_us: 1e6,
            ..Default::default()
        };
        let requests: Vec<Request> = (0..10).map(|i| req(i, 0, &[1, 2], 4)).collect();
        let out = engine(&model, &params, cfg).run(requests);
        assert!(out.degraded > 0, "backlog should push down the ladder");
        assert!(
            out.completions
                .iter()
                .any(|c| c.retention < 1.0 && c.reason == FinishReason::Completed),
            "degraded requests still complete"
        );
    }

    #[test]
    fn interactive_admits_before_batch() {
        let _quiet = crate::quiet_faults();
        let (model, params) = tiny_model(24);
        let cfg = ServeConfig {
            capacity: 1,
            queue_capacity: 64,
            shed: ShedPolicy::QueueOnly,
            interactive_deadline_us: 1e6,
            batch_deadline_us: 1e6,
            ..Default::default()
        };
        let mut batch = req(0, 0, &[1, 2], 2);
        batch.class = DeadlineClass::Batch;
        let mut batch2 = req(1, 0, &[1, 2], 2);
        batch2.class = DeadlineClass::Batch;
        let inter = req(2, 0, &[1, 2], 2);
        let out = engine(&model, &params, cfg).run(vec![batch, batch2, inter]);
        let seq_of = |id: u64| {
            out.completions
                .iter()
                .find(|c| c.id == id)
                .unwrap()
                .admit_seq
                .unwrap()
        };
        // All three arrive at t=0; the interactive request jumps both
        // queued batch ones, which then admit FIFO.
        assert_eq!(seq_of(2), 0);
        assert_eq!(seq_of(0), 1);
        assert_eq!(seq_of(1), 2);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let (model, params) = tiny_model(24);
        for cfg in [
            ServeConfig {
                capacity: 0,
                ..Default::default()
            },
            ServeConfig {
                ladder: vec![],
                ..Default::default()
            },
            ServeConfig {
                ladder: vec![0.5, 1.0],
                ..Default::default()
            },
            ServeConfig {
                ladder: vec![1.0, 0.0],
                ..Default::default()
            },
            ServeConfig {
                interactive_deadline_us: 0.0,
                ..Default::default()
            },
        ] {
            assert!(ServeEngine::new(&model, &params, cfg, &AccelConfig::default()).is_err());
        }
        // Non-causal models cannot serve.
        let mut p2 = ParamSet::new();
        let enc = Model::init(TransformerConfig::tiny(16, 8, 2), &mut p2, 1);
        assert!(
            ServeEngine::new(&enc, &p2, ServeConfig::default(), &AccelConfig::default()).is_err()
        );
    }
}
