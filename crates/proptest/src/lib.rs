//! Offline stand-in for `proptest`.
//!
//! Provides deterministic randomized property testing with the subset of
//! the proptest API this workspace uses: the [`proptest!`] macro (with an
//! optional `#![proptest_config(..)]` header), range strategies over
//! integers and floats, `collection::vec` / `collection::btree_set`,
//! `prop_map`, and the `prop_assert!` family. There is no shrinking: a
//! failing case panics immediately with the case number so it can be
//! reproduced (generation is seeded and deterministic).

#![deny(missing_docs)]

use rand::{Rng as _, RngCore, SeedableRng};
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// The random source handed to strategies. Deterministic per test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        Self {
            inner: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A value generator. The stand-in for `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
float_range_strategies!(f32, f64);

/// Full-type-range strategy, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a default full-range generator.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spanning a wide magnitude range.
        let mag: f32 = rng.gen_range(-6.0f32..6.0);
        let sign = if rng.next_u64() & 1 == 1 { 1.0 } else { -1.0 };
        sign * 10f32.powf(mag)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::*;

    /// Generates `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `BTreeSet`s with up to `size.end - 1` elements (duplicates
    /// drawn from `element` collapse, as in real proptest).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// Strategy returned by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Executes a property's cases. Used by the [`proptest!`] expansion.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner for `config`.
    pub fn new(config: ProptestConfig) -> Self {
        Self { config }
    }

    /// Runs `body` once per case with a per-case deterministic RNG.
    pub fn run(&mut self, mut body: impl FnMut(&mut TestRng, u32)) {
        for case in 0..self.config.cases {
            // Distinct, deterministic stream per case.
            let mut rng = TestRng::new(0xD07A_0000_0000_0000 ^ u64::from(case));
            body(&mut rng, case);
        }
    }
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($cfg);
            runner.run(|__proptest_rng, __proptest_case| {
                $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                let run = move || $body;
                run();
                let _ = __proptest_case;
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..500 {
            let x = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&x));
            let y = Strategy::generate(&(-2i32..=2), &mut rng);
            assert!((-2..=2).contains(&y));
            let f = Strategy::generate(&(-1.0f32..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn collections_sized_and_mapped() {
        let mut rng = crate::TestRng::new(2);
        let s = crate::collection::vec(0u32..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let sets = crate::collection::btree_set(0u32..4, 0..6)
            .prop_map(|s| s.into_iter().collect::<Vec<u32>>());
        for _ in 0..100 {
            let v = sets.generate(&mut rng);
            assert!(v.len() < 6);
            assert!(v.windows(2).all(|w| w[0] < w[1]), "sorted + distinct");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = crate::collection::vec(0u32..1000, 1..20);
        let a: Vec<Vec<u32>> = {
            let mut rng = crate::TestRng::new(3);
            (0..10).map(|_| s.generate(&mut rng)).collect()
        };
        let b: Vec<Vec<u32>> = {
            let mut rng = crate::TestRng::new(3);
            (0..10).map(|_| s.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_generates_runnable_tests(x in 0usize..100, ys in crate::collection::vec(0i32..5, 0..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.len());
            prop_assert_ne!(x as i64, 100i64);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config_header(v in any::<bool>()) {
            prop_assert!(usize::from(v) <= 1);
        }
    }
}
