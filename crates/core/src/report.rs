//! Cross-run regression diffing (`dota report diff`).
//!
//! Compares two runs — single result files or whole run directories —
//! value-by-value with a relative tolerance, so a reproduction can be
//! validated against committed results and CI can flag perf/accuracy
//! regressions. Three document kinds are understood:
//!
//! * `*.json` result files (figure rows, counter exports, manifests):
//!   recursive structural diff;
//! * `*.jsonl` metrics series (`dota train --metrics-out`): line-by-line
//!   diff of each step row;
//! * run directories: files are paired by name and diffed pairwise;
//!   files present on only one side are findings.
//!
//! Volatile provenance fields (git sha, wall clock, hostname, thread
//! count) are ignored by default so identical-seed runs from different
//! machines or thread budgets diff clean while every *measured* value is
//! still compared.

use serde_json::Value;
use std::path::Path;

/// Configuration of a diff run.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Maximum allowed relative difference `|a−b| / max(|a|,|b|)` between
    /// two numbers before a finding is raised.
    pub tolerance: f64,
    /// Object keys skipped at every depth. Defaults to the manifest's
    /// volatile provenance fields.
    pub ignore_keys: Vec<String>,
    /// Tolerate *additions* — keys or files present only in run B. Off by
    /// default (a schema change should be deliberate); when set, additions
    /// are tallied in [`DiffReport::added`] instead of raised as findings.
    /// Keys or files that *vanished* (present only in run A) are always
    /// findings: a disappeared measurement is a regression, not growth.
    pub allow_added: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-6,
            allow_added: false,
            ignore_keys: [
                "git_sha",
                "wall_clock_secs",
                "hostname",
                "host",
                "threads",
                "physical_cores",
                "cpu_features",
            ]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
        }
    }
}

/// One detected divergence between the two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Where the divergence sits, e.g.
    /// `fig12_speedup.json: rows[3].attention_vs_gpu`.
    pub path: String,
    /// Human-readable description of the divergence.
    pub detail: String,
    /// Run A's value, when the divergence is numeric.
    pub expected: Option<f64>,
    /// Run B's value, when the divergence is numeric.
    pub actual: Option<f64>,
    /// `true` when the divergence is an *addition* (a key or file present
    /// only in run B) rather than a changed or vanished value. Rendered as
    /// `ADDED` instead of `REGRESSION`, and suppressible with
    /// [`DiffOptions::allow_added`].
    pub added: bool,
}

/// Outcome of a diff: what was compared and every divergence found.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Number of file pairs compared.
    pub compared_files: usize,
    /// Number of leaf values compared.
    pub compared_values: usize,
    /// Additions tolerated under [`DiffOptions::allow_added`] (keys or
    /// files present only in run B that were *not* raised as findings).
    pub added: usize,
    /// All divergences, in document order.
    pub findings: Vec<Finding>,
}

impl DiffReport {
    /// `true` when at least one divergence was found.
    pub fn has_regressions(&self) -> bool {
        !self.findings.is_empty()
    }

    /// Multi-line human-readable summary: one `REGRESSION` line per
    /// finding, an aligned key/expected/actual/relative-error table for
    /// the numeric ones, and a closing tally.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let kind = if f.added { "ADDED" } else { "REGRESSION" };
            out.push_str(&format!("{kind} {}: {}\n", f.path, f.detail));
        }
        let numeric: Vec<(&Finding, f64, f64)> = self
            .findings
            .iter()
            .filter_map(|f| Some((f, f.expected?, f.actual?)))
            .collect();
        if !numeric.is_empty() {
            let rows: Vec<[String; 4]> = numeric
                .iter()
                .map(|(f, e, a)| {
                    let rel = relative_difference(*e, *a)
                        .map_or_else(|| "n/a".to_owned(), |r| format!("{r:.3e}"));
                    [f.path.clone(), e.to_string(), a.to_string(), rel]
                })
                .collect();
            let header = ["key", "expected", "actual", "rel error"];
            let mut widths = header.map(str::len);
            for row in &rows {
                for (w, cell) in widths.iter_mut().zip(row) {
                    *w = (*w).max(cell.len());
                }
            }
            out.push('\n');
            out.push_str(&format!(
                "{:<w0$}  {:>w1$}  {:>w2$}  {:>w3$}\n",
                header[0],
                header[1],
                header[2],
                header[3],
                w0 = widths[0],
                w1 = widths[1],
                w2 = widths[2],
                w3 = widths[3],
            ));
            for row in &rows {
                out.push_str(&format!(
                    "{:<w0$}  {:>w1$}  {:>w2$}  {:>w3$}\n",
                    row[0],
                    row[1],
                    row[2],
                    row[3],
                    w0 = widths[0],
                    w1 = widths[1],
                    w2 = widths[2],
                    w3 = widths[3],
                ));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "{} file(s), {} value(s) compared: {}{}\n",
            self.compared_files,
            self.compared_values,
            if self.findings.is_empty() {
                "no regressions".to_owned()
            } else {
                format!("{} regression(s)", self.findings.len())
            },
            if self.added > 0 {
                format!(", {} addition(s) tolerated", self.added)
            } else {
                String::new()
            }
        ));
        out
    }

    fn finding(&mut self, path: &str, detail: String) {
        self.findings.push(Finding {
            path: path.to_owned(),
            detail,
            expected: None,
            actual: None,
            added: false,
        });
    }

    /// Records an addition (key/file present only in run B): a finding by
    /// default, a tolerated tally under `allow_added`.
    fn record_added(&mut self, path: &str, detail: String, opts: &DiffOptions) {
        if opts.allow_added {
            self.added += 1;
        } else {
            self.findings.push(Finding {
                path: path.to_owned(),
                detail,
                expected: None,
                actual: None,
                added: true,
            });
        }
    }

    fn numeric_finding(&mut self, path: &str, expected: f64, actual: f64, detail: String) {
        self.findings.push(Finding {
            path: path.to_owned(),
            detail,
            expected: Some(expected),
            actual: Some(actual),
            added: false,
        });
    }
}

/// Diffs two runs: both paths must be files (compared directly) or both
/// directories (files paired by name).
///
/// # Errors
///
/// Returns a message when a path is missing, unreadable, or the two sides
/// are not the same kind (file vs directory).
pub fn diff_paths(a: &Path, b: &Path, opts: &DiffOptions) -> Result<DiffReport, String> {
    let mut report = DiffReport::default();
    match (a.is_dir(), b.is_dir()) {
        (true, true) => diff_dirs(a, b, opts, &mut report)?,
        (false, false) => diff_files(a, b, opts, &mut report)?,
        _ => {
            return Err(format!(
                "cannot compare a file with a directory: {} vs {}",
                a.display(),
                b.display()
            ))
        }
    }
    Ok(report)
}

/// Pairs the regular files of two directories by file name and diffs each
/// pair. Unpaired files become findings (a vanished output is a
/// regression too).
fn diff_dirs(
    a: &Path,
    b: &Path,
    opts: &DiffOptions,
    report: &mut DiffReport,
) -> Result<(), String> {
    let names_a = dir_file_names(a)?;
    let names_b = dir_file_names(b)?;
    for name in &names_a {
        if names_b.contains(name) {
            diff_files(&a.join(name), &b.join(name), opts, report)?;
        } else {
            report.finding(name, format!("only present in {}", a.display()));
        }
    }
    for name in &names_b {
        if !names_a.contains(name) {
            report.record_added(name, format!("only present in {}", b.display()), opts);
        }
    }
    Ok(())
}

/// Sorted regular-file names of a directory.
fn dir_file_names(dir: &Path) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        if entry.path().is_file() {
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    names.sort();
    Ok(names)
}

/// Diffs two files of the same name; `.jsonl` gets the line-by-line
/// treatment, everything else parses as one JSON document.
fn diff_files(
    a: &Path,
    b: &Path,
    opts: &DiffOptions,
    report: &mut DiffReport,
) -> Result<(), String> {
    let name = a
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| a.display().to_string());
    let text_a = std::fs::read_to_string(a).map_err(|e| format!("reading {}: {e}", a.display()))?;
    let text_b = std::fs::read_to_string(b).map_err(|e| format!("reading {}: {e}", b.display()))?;
    report.compared_files += 1;
    if name.ends_with(".jsonl") {
        diff_jsonl(&name, &text_a, &text_b, opts, report)
    } else {
        let va = serde_json::parse(&text_a).map_err(|e| format!("parsing {}: {e}", a.display()))?;
        let vb = serde_json::parse(&text_b).map_err(|e| format!("parsing {}: {e}", b.display()))?;
        diff_values(&name, &va, &vb, opts, report);
        Ok(())
    }
}

/// Line-by-line diff of two JSONL documents.
fn diff_jsonl(
    name: &str,
    a: &str,
    b: &str,
    opts: &DiffOptions,
    report: &mut DiffReport,
) -> Result<(), String> {
    let lines_a: Vec<&str> = a.lines().filter(|l| !l.trim().is_empty()).collect();
    let lines_b: Vec<&str> = b.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines_a.len() != lines_b.len() {
        report.finding(
            name,
            format!("row count {} vs {}", lines_a.len(), lines_b.len()),
        );
    }
    for (i, (la, lb)) in lines_a.iter().zip(&lines_b).enumerate() {
        let va = serde_json::parse(la).map_err(|e| format!("parsing {name} row {i}: {e}"))?;
        let vb = serde_json::parse(lb).map_err(|e| format!("parsing {name} row {i}: {e}"))?;
        diff_values(&format!("{name}: row {}", i + 1), &va, &vb, opts, report);
    }
    Ok(())
}

/// Recursive structural diff of two JSON values.
fn diff_values(path: &str, a: &Value, b: &Value, opts: &DiffOptions, report: &mut DiffReport) {
    match (a, b) {
        (Value::Object(fa), Value::Object(fb)) => {
            for (k, va) in fa {
                if opts.ignore_keys.iter().any(|ig| ig == k) {
                    continue;
                }
                match b.get(k) {
                    Some(vb) => diff_values(&format!("{path}.{k}"), va, vb, opts, report),
                    None => report.finding(&format!("{path}.{k}"), "missing in run B".to_owned()),
                }
            }
            for (k, _) in fb {
                if opts.ignore_keys.iter().any(|ig| ig == k) {
                    continue;
                }
                if a.get(k).is_none() {
                    report.record_added(
                        &format!("{path}.{k}"),
                        "added in run B (absent from run A)".to_owned(),
                        opts,
                    );
                }
            }
        }
        (Value::Array(xa), Value::Array(xb)) => {
            if xa.len() != xb.len() {
                report.finding(path, format!("array length {} vs {}", xa.len(), xb.len()));
            }
            for (i, (va, vb)) in xa.iter().zip(xb).enumerate() {
                diff_values(&format!("{path}[{i}]"), va, vb, opts, report);
            }
        }
        _ => match (as_number(a), as_number(b)) {
            (Some(na), Some(nb)) => {
                report.compared_values += 1;
                if let Some(rel) = relative_difference(na, nb) {
                    if rel > opts.tolerance {
                        report.numeric_finding(
                            path,
                            na,
                            nb,
                            format!("{na} vs {nb} (relative difference {rel:.3e})"),
                        );
                    }
                }
            }
            _ => {
                report.compared_values += 1;
                if !scalar_eq(a, b) {
                    report.finding(path, format!("{} vs {}", render(a), render(b)));
                }
            }
        },
    }
}

/// Numeric view of a value, unifying `Int`/`UInt`/`Float`.
fn as_number(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Relative difference `|a−b| / max(|a|,|b|)`; `None` when the values
/// compare equal outright (covers 0 vs 0 and NaN vs NaN semantics: two
/// NaNs count as equal for diffing purposes).
fn relative_difference(a: f64, b: f64) -> Option<f64> {
    if a == b || (a.is_nan() && b.is_nan()) {
        return None;
    }
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        return None;
    }
    Some((a - b).abs() / denom)
}

/// Equality of non-numeric scalars.
fn scalar_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        _ => false,
    }
}

/// Short rendering of a scalar for finding messages.
fn render(v: &Value) -> String {
    match v {
        Value::Null => "null".to_owned(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Str(s) => format!("{s:?}"),
        Value::Array(x) => format!("array[{}]", x.len()),
        Value::Object(f) => format!("object{{{} keys}}", f.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diff_strs(a: &str, b: &str, opts: &DiffOptions) -> DiffReport {
        let mut report = DiffReport::default();
        let va = serde_json::parse(a).unwrap();
        let vb = serde_json::parse(b).unwrap();
        diff_values("t", &va, &vb, opts, &mut report);
        report
    }

    #[test]
    fn identical_documents_have_no_findings() {
        let doc = r#"{"rows": [{"x": 1.5, "name": "a"}, {"x": 2, "name": "b"}]}"#;
        let r = diff_strs(doc, doc, &DiffOptions::default());
        assert!(!r.has_regressions(), "{:?}", r.findings);
        assert_eq!(r.compared_values, 4);
    }

    #[test]
    fn within_tolerance_is_clean_beyond_is_flagged() {
        let opts = DiffOptions {
            tolerance: 1e-3,
            ..Default::default()
        };
        let a = r#"{"x": 1000.0}"#;
        assert!(!diff_strs(a, r#"{"x": 1000.5}"#, &opts).has_regressions());
        let r = diff_strs(a, r#"{"x": 1002.0}"#, &opts);
        assert!(r.has_regressions());
        assert!(r.findings[0].path.contains("x"));
    }

    #[test]
    fn int_float_cross_type_compares_numerically() {
        let r = diff_strs(r#"{"x": 2}"#, r#"{"x": 2.0}"#, &DiffOptions::default());
        assert!(!r.has_regressions());
    }

    #[test]
    fn missing_and_extra_keys_are_findings() {
        let r = diff_strs(
            r#"{"a": 1, "b": 2}"#,
            r#"{"a": 1, "c": 3}"#,
            &DiffOptions::default(),
        );
        assert_eq!(r.findings.len(), 2);
        // The vanished key is a regression, the new key an addition —
        // distinct classes with distinct render prefixes.
        let missing = r.findings.iter().find(|f| f.path == "t.b").unwrap();
        let extra = r.findings.iter().find(|f| f.path == "t.c").unwrap();
        assert!(!missing.added);
        assert!(extra.added);
        let text = r.render();
        assert!(text.contains("REGRESSION t.b"), "{text}");
        assert!(text.contains("ADDED t.c"), "{text}");
    }

    #[test]
    fn allow_added_tolerates_new_keys_but_not_vanished_ones() {
        let opts = DiffOptions {
            allow_added: true,
            ..Default::default()
        };
        // A new key in run B is tolerated and tallied...
        let r = diff_strs(r#"{"a": 1}"#, r#"{"a": 1, "c": 3}"#, &opts);
        assert!(!r.has_regressions(), "{:?}", r.findings);
        assert_eq!(r.added, 1);
        assert!(r.render().contains("1 addition(s) tolerated"));
        // ...but a vanished key is still a regression.
        let r = diff_strs(r#"{"a": 1, "b": 2}"#, r#"{"a": 1}"#, &opts);
        assert_eq!(r.findings.len(), 1);
        assert!(!r.findings[0].added);
    }

    #[test]
    fn volatile_manifest_keys_are_ignored() {
        let a = r#"{"git_sha": "abc", "threads": 1, "wall_clock_secs": 1.2, "seed": 5}"#;
        let b = r#"{"git_sha": "def", "threads": 8, "wall_clock_secs": 9.9, "seed": 5}"#;
        assert!(!diff_strs(a, b, &DiffOptions::default()).has_regressions());
        // But a differing seed is flagged.
        let c = r#"{"git_sha": "def", "threads": 8, "wall_clock_secs": 9.9, "seed": 6}"#;
        assert!(diff_strs(a, c, &DiffOptions::default()).has_regressions());
    }

    #[test]
    fn array_length_mismatch_is_flagged() {
        let r = diff_strs(r#"[1, 2, 3]"#, r#"[1, 2]"#, &DiffOptions::default());
        assert!(r.has_regressions());
    }

    #[test]
    fn string_mismatch_is_flagged() {
        let r = diff_strs(
            r#"{"m": "dota"}"#,
            r#"{"m": "elsa"}"#,
            &DiffOptions::default(),
        );
        assert_eq!(r.findings.len(), 1);
        assert!(r.findings[0].detail.contains("dota"));
    }

    #[test]
    fn render_prints_numeric_mismatch_table() {
        let r = diff_strs(
            r#"{"x": 1.0, "m": "a"}"#,
            r#"{"x": 2.0, "m": "b"}"#,
            &DiffOptions::default(),
        );
        let text = r.render();
        // REGRESSION lines for both findings, but the table only covers
        // the numeric one, with all four columns present.
        assert_eq!(text.matches("REGRESSION").count(), 2, "{text}");
        for col in ["key", "expected", "actual", "rel error"] {
            assert!(text.contains(col), "missing column {col}:\n{text}");
        }
        let table_row = text
            .lines()
            .find(|l| l.starts_with("t.x"))
            .unwrap_or_else(|| panic!("no table row for t.x:\n{text}"));
        assert!(
            table_row.contains('1') && table_row.contains('2'),
            "{table_row}"
        );
        assert!(table_row.contains("5.000e-1"), "{table_row}");
    }

    #[test]
    fn jsonl_rows_diff_line_by_line() {
        let mut report = DiffReport::default();
        let a = "{\"step\":1,\"loss\":2.5}\n{\"step\":2,\"loss\":1.5}\n";
        let b = "{\"step\":1,\"loss\":2.5}\n{\"step\":2,\"loss\":1.0}\n";
        diff_jsonl("m.jsonl", a, b, &DiffOptions::default(), &mut report).unwrap();
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].path.contains("row 2"));
    }

    #[test]
    fn dirs_pair_by_name_and_flag_unpaired() {
        let base = std::env::temp_dir().join(format!("dota_report_test_{}", std::process::id()));
        let (da, db) = (base.join("a"), base.join("b"));
        std::fs::create_dir_all(&da).unwrap();
        std::fs::create_dir_all(&db).unwrap();
        std::fs::write(da.join("r.json"), r#"{"x": 1}"#).unwrap();
        std::fs::write(db.join("r.json"), r#"{"x": 2}"#).unwrap();
        std::fs::write(da.join("only_a.json"), r#"{}"#).unwrap();
        let report = diff_paths(&da, &db, &DiffOptions::default()).unwrap();
        assert_eq!(report.compared_files, 1);
        assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
        std::fs::remove_dir_all(&base).unwrap();
    }
}
