//! Parameter checkpointing.
//!
//! Trained model + detector weights serialize to a single JSON document so
//! experiments are resumable and results shippable. The format is
//! deliberately simple (names, shapes, row-major values); loading restores
//! a [`ParamSet`] whose registration order — and therefore every
//! [`ParamId`](dota_autograd::ParamId) handed out by re-initialized models
//! and hooks with the same construction order — matches the saved one.

use dota_autograd::ParamSet;
use dota_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// One serialized parameter.
#[derive(Debug, Serialize, Deserialize)]
struct SavedParam {
    name: String,
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// The on-disk checkpoint document.
#[derive(Debug, Serialize, Deserialize)]
struct Checkpoint {
    format_version: u32,
    params: Vec<SavedParam>,
}

const FORMAT_VERSION: u32 = 1;

/// Errors from loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not a valid checkpoint document.
    Parse(String),
    /// The document's format version is not supported.
    Version(u32),
    /// A parameter's data length disagrees with its shape.
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Parse(e) => write!(f, "invalid checkpoint document: {e}"),
            CheckpointError::Version(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Corrupt(name) => {
                write!(f, "parameter `{name}` has inconsistent shape/data")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serializes every parameter of `params` to JSON at `path`.
///
/// # Errors
///
/// Returns a [`CheckpointError`] on filesystem failure.
pub fn save_params(params: &ParamSet, path: &Path) -> Result<(), CheckpointError> {
    let doc = Checkpoint {
        format_version: FORMAT_VERSION,
        params: params
            .ids()
            .map(|id| {
                let m = params.value(id);
                SavedParam {
                    name: params.name(id).to_owned(),
                    rows: m.rows(),
                    cols: m.cols(),
                    data: m.as_slice().to_vec(),
                }
            })
            .collect(),
    };
    let json = serde_json::to_string(&doc).map_err(|e| CheckpointError::Parse(e.to_string()))?;
    std::fs::write(path, json)?;
    Ok(())
}

/// Loads a checkpoint into a fresh [`ParamSet`], preserving registration
/// order (so ids line up with a model/hook built in the same order).
///
/// # Errors
///
/// Returns a [`CheckpointError`] if the file is missing, malformed, from an
/// unsupported version, or internally inconsistent.
pub fn load_params(path: &Path) -> Result<ParamSet, CheckpointError> {
    let json = std::fs::read_to_string(path)?;
    let doc: Checkpoint =
        serde_json::from_str(&json).map_err(|e| CheckpointError::Parse(e.to_string()))?;
    if doc.format_version != FORMAT_VERSION {
        return Err(CheckpointError::Version(doc.format_version));
    }
    let mut params = ParamSet::new();
    for p in doc.params {
        if p.data.len() != p.rows * p.cols {
            return Err(CheckpointError::Corrupt(p.name));
        }
        let m = Matrix::from_vec(p.rows, p.cols, p.data)
            .map_err(|_| CheckpointError::Corrupt(p.name.clone()))?;
        params.add(&p.name, m);
    }
    Ok(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{self, TrainOptions};
    use dota_transformer::NoHook;
    use dota_workloads::{Benchmark, TaskSpec};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dota_ckpt_{name}_{}.json", std::process::id()));
        p
    }

    #[test]
    fn round_trip_preserves_everything() {
        let spec = TaskSpec::tiny(Benchmark::Text, 20, 1);
        let (_, params) = experiments::build_model(&spec, 1);
        let path = tmp("roundtrip");
        save_params(&params, &path).unwrap();
        let loaded = load_params(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(params.len(), loaded.len());
        for (a, b) in params.ids().zip(loaded.ids()) {
            assert_eq!(params.name(a), loaded.name(b));
            assert_eq!(params.value(a), loaded.value(b));
        }
    }

    #[test]
    fn reloaded_model_gives_identical_predictions() {
        let spec = TaskSpec::tiny(Benchmark::Text, 20, 2);
        let (train, test) = spec.generate_split(60, 20);
        let (model, mut params) = experiments::build_model(&spec, 2);
        experiments::train_dense(
            &model,
            &mut params,
            &train,
            &TrainOptions {
                epochs: 4,
                ..Default::default()
            },
        );
        let path = tmp("predictions");
        save_params(&params, &path).unwrap();
        let loaded = load_params(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for s in test.iter().take(5) {
            let a = model.infer(&params, &s.ids, &NoHook);
            let b = model.infer(&loaded, &s.ids, &NoHook);
            assert_eq!(a.logits, b.logits);
        }
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_params(Path::new("/nonexistent/dota.json")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }

    #[test]
    fn malformed_document_is_parse_error() {
        let path = tmp("malformed");
        std::fs::write(&path, "not json").unwrap();
        let err = load_params(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, CheckpointError::Parse(_)), "{err}");
    }

    #[test]
    fn corrupt_shape_detected() {
        let path = tmp("corrupt");
        std::fs::write(
            &path,
            r#"{"format_version":1,"params":[{"name":"w","rows":2,"cols":2,"data":[1.0]}]}"#,
        )
        .unwrap();
        let err = load_params(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
    }

    #[test]
    fn future_version_rejected() {
        let path = tmp("version");
        std::fs::write(&path, r#"{"format_version":999,"params":[]}"#).unwrap();
        let err = load_params(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, CheckpointError::Version(999)), "{err}");
    }
}
